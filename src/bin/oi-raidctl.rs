//! `oi-raidctl` — explore OI-RAID configurations from the command line.
//!
//! ```text
//! oi-raidctl designs [max_v]                     list constructible outer designs
//! oi-raidctl info <v> <k> <g> [opts]             geometry & properties summary
//! oi-raidctl layout <v> <k> <g> [opts]           per-disk chunk role map
//! oi-raidctl plan <v> <k> <g> --fail A,B [opts]  recovery plan & per-disk loads
//! oi-raidctl simulate <v> <k> <g> --fail A [opts] simulated rebuild time
//!
//! options: --cycles C (default 1)  --inner-parities P (1|2, default 1)
//!          --strategy inner|outer|outer-all|hybrid (default outer)
//!          --capacity-gb N (default 1000)  --naive-skew
//! ```

use std::process::ExitCode;

use disksim::DiskSpec;
use layout::{ChunkAddr, Layout, Role, SparePolicy};
use oi_raid::{analysis::Model, OiRaid, OiRaidConfig, RecoveryStrategy, SkewMode};

struct Opts {
    cycles: usize,
    inner_parities: usize,
    strategy: RecoveryStrategy,
    capacity_gb: u64,
    naive_skew: bool,
    fail: Vec<usize>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        cycles: 1,
        inner_parities: 1,
        strategy: RecoveryStrategy::Outer,
        capacity_gb: 1000,
        naive_skew: false,
        fail: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cycles" => {
                o.cycles = next_num(&mut it, a)?;
            }
            "--inner-parities" => {
                o.inner_parities = next_num(&mut it, a)?;
            }
            "--capacity-gb" => {
                o.capacity_gb = next_num(&mut it, a)? as u64;
            }
            "--naive-skew" => o.naive_skew = true,
            "--strategy" => {
                let v = it.next().ok_or("--strategy needs a value")?;
                o.strategy = match v.as_str() {
                    "inner" => RecoveryStrategy::Inner,
                    "outer" => RecoveryStrategy::Outer,
                    "outer-all" => RecoveryStrategy::OuterAll,
                    "hybrid" => RecoveryStrategy::Hybrid,
                    other => return Err(format!("unknown strategy {other}")),
                };
            }
            "--fail" => {
                let v = it.next().ok_or("--fail needs a comma list")?;
                o.fail = v
                    .split(',')
                    .map(|x| x.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad --fail list: {e}"))?;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

fn next_num(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, String> {
    it.next()
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

fn build(v: usize, k: usize, g: usize, o: &Opts) -> Result<OiRaid, String> {
    let design = bibd::find_design(v, k).ok_or(format!(
        "no ({v}, {k}, 1) design in the catalogue — try `designs`"
    ))?;
    let skew = if o.naive_skew {
        SkewMode::Naive
    } else {
        SkewMode::Rotational
    };
    let cfg = OiRaidConfig::with_skew(design, g, o.cycles, skew)
        .and_then(|c| c.with_inner_parities(o.inner_parities))
        .map_err(|e| e.to_string())?;
    OiRaid::new(cfg).map_err(|e| e.to_string())
}

fn cmd_designs(max_v: usize) {
    println!("{:<5}{:<5}{:<7}{:<5}construction", "v", "k", "b", "r");
    for e in bibd::catalogue(max_v) {
        println!("{:<5}{:<5}{:<7}{:<5}{}", e.v, e.k, e.b, e.r, e.method);
    }
}

fn cmd_info(array: &OiRaid, o: &Opts) {
    let m = Model::of(array);
    println!("array        : {}", array.name());
    println!(
        "disks        : {} ({} groups x {})",
        array.disks(),
        array.groups(),
        array.group_size()
    );
    println!("chunks/disk  : {}", array.chunks_per_disk());
    println!("data chunks  : {}", array.data_chunks());
    println!("tolerance    : any {} failures", array.fault_tolerance());
    println!(
        "efficiency   : {:.1}% (overhead {:.0}%)",
        array.efficiency() * 100.0,
        array.storage_overhead() * 100.0
    );
    println!(
        "update cost  : {} writes per data-chunk write",
        array
            .update_set(array.locate_data(0))
            .map_or(0, |s| s.len())
    );
    if array.config().inner_parities() == 1 {
        println!(
            "rebuild model: bottleneck {:.3} of a disk ({}), {:.1}x vs flat RAID5",
            m.bottleneck_read_fraction(o.strategy),
            o.strategy.label(),
            m.read_speedup_vs_raid5(o.strategy)
        );
    }
}

fn cmd_layout(array: &OiRaid) {
    let n = array.disks();
    let t = array.chunks_per_disk();
    if n * t > 2000 {
        eprintln!("layout map too large to print ({n} disks x {t} chunks); reduce --cycles");
        return;
    }
    println!("rows = chunk offsets; D = data, O = outer parity, i = inner parity\n");
    print!("      ");
    for d in 0..n {
        print!("{:>3}", d % 10);
        if d % array.group_size() == array.group_size() - 1 {
            print!(" ");
        }
    }
    println!();
    for o in 0..t {
        print!("{o:>4}  ");
        for d in 0..n {
            let c = match array.chunk_role(ChunkAddr::new(d, o)) {
                Role::Data => 'D',
                Role::Parity => 'O',
                Role::InnerParity => 'i',
                Role::Spare => '.',
            };
            print!("{c:>3}");
            if d % array.group_size() == array.group_size() - 1 {
                print!(" ");
            }
        }
        println!();
    }
}

fn cmd_plan(array: &OiRaid, o: &Opts) -> Result<(), String> {
    if o.fail.is_empty() {
        return Err("plan needs --fail".into());
    }
    let plan = if let [d] = o.fail[..] {
        array
            .recovery_plan_with_strategy(d, SparePolicy::Distributed, o.strategy)
            .map_err(|e| e.to_string())?
    } else {
        array
            .recovery_plan(&o.fail, SparePolicy::Distributed)
            .map_err(|e| e.to_string())?
    };
    println!("{plan}");
    let load = plan.read_load(array.disks());
    let writes = plan.write_load(array.disks());
    println!("\nper-disk loads (reads/writes in chunks):");
    for d in 0..array.disks() {
        let marker = if o.fail.contains(&d) { " FAILED" } else { "" };
        println!("  disk {d:>3}: {:>5} r {:>4} w{marker}", load[d], writes[d]);
    }
    Ok(())
}

fn cmd_simulate(array: &OiRaid, o: &Opts) -> Result<(), String> {
    if o.fail.is_empty() {
        return Err("simulate needs --fail".into());
    }
    let plan = if let [d] = o.fail[..] {
        array
            .recovery_plan_with_strategy(d, SparePolicy::Distributed, o.strategy)
            .map_err(|e| e.to_string())?
    } else {
        array
            .recovery_plan(&o.fail, SparePolicy::Distributed)
            .map_err(|e| e.to_string())?
    };
    let cap = o.capacity_gb * 1_000_000_000;
    let sim = plan.simulate(
        &DiskSpec::hdd_7200(cap),
        cap / array.chunks_per_disk() as u64,
    );
    println!(
        "rebuild of {:?} on {} GB disks ({}): {}",
        o.fail,
        o.capacity_gb,
        o.strategy.label(),
        sim.rebuild_time
    );
    let busiest = sim
        .result
        .disk_stats()
        .iter()
        .max_by(|a, b| a.busy.cmp(&b.busy))
        .expect("disks exist");
    println!(
        "bottleneck: {} busy {} ({:.0}% utilised)",
        busiest.disk,
        busiest.busy,
        busiest.utilization * 100.0
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(
            "usage: oi-raidctl <designs|info|layout|plan|simulate> ... (see --help)".into(),
        );
    };
    if cmd == "--help" || cmd == "help" {
        println!(
            "oi-raidctl designs [max_v]\n\
             oi-raidctl info <v> <k> <g> [--cycles C] [--inner-parities P] [--naive-skew]\n\
             oi-raidctl layout <v> <k> <g> [opts]\n\
             oi-raidctl plan <v> <k> <g> --fail A,B [--strategy S] [opts]\n\
             oi-raidctl simulate <v> <k> <g> --fail A [--capacity-gb N] [opts]"
        );
        return Ok(());
    }
    if cmd == "designs" {
        let max_v = args
            .get(1)
            .map(|s| s.parse().map_err(|e| format!("max_v: {e}")))
            .transpose()?
            .unwrap_or(60);
        cmd_designs(max_v);
        return Ok(());
    }
    if args.len() < 4 {
        return Err(format!("{cmd} needs <v> <k> <g>"));
    }
    let v: usize = args[1].parse().map_err(|e| format!("v: {e}"))?;
    let k: usize = args[2].parse().map_err(|e| format!("k: {e}"))?;
    let g: usize = args[3].parse().map_err(|e| format!("g: {e}"))?;
    let opts = parse_opts(&args[4..])?;
    let array = build(v, k, g, &opts)?;
    match cmd.as_str() {
        "info" => {
            cmd_info(&array, &opts);
            Ok(())
        }
        "layout" => {
            cmd_layout(&array);
            Ok(())
        }
        "plan" => cmd_plan(&array, &opts),
        "simulate" => cmd_simulate(&array, &opts),
        other => Err(format!("unknown command {other}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
