//! Workspace-level convenience crate for the OI-RAID reproduction.
//!
//! The real functionality lives in the member crates (`oi-raid`, `bibd`,
//! `ecc`, `disksim`, `layout`, `reliability`); this crate hosts the runnable
//! `examples/` and the cross-crate integration tests in `tests/`, and
//! re-exports the pieces those programs use as a single [`prelude`].
//!
//! ```
//! use oi_raid_repro::prelude::*;
//!
//! let array = OiRaid::new(OiRaidConfig::reference()).unwrap();
//! assert_eq!(array.disks(), 21);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One-stop imports for the examples and integration tests.
pub mod prelude {
    pub use bibd::{fano, find_design, Bibd};
    pub use blockdev::{
        BlockDevice, CounterSnapshot, DeviceError, FaultConfig, FaultInjectingDevice, FileDevice,
        FlushPolicy, Journal, MemDevice, RetryPolicy, WriteBackDevice,
    };
    pub use disksim::{ArrivalProcess, DiskSpec, SimTime, Simulation, Workload, WorkloadKind};
    pub use ecc::{ErasureCode, EvenOdd, Lrc, Raid6, Rdp, ReedSolomon, Replication, XorParity};
    pub use layout::{
        ChunkAddr, FlatRaid5, FlatRaid6, Layout, ParityDeclustered, Raid50, RecoveryPlan, Role,
        SparePolicy,
    };
    pub use oi_raid::{
        analysis::Model, CheckpointPolicy, DegradedScenario, FlusherHandle, HealCounters, OiRaid,
        OiRaidConfig, OiRaidStore, QosConfig, QosCounters, ReadPlan, RebuildCheckpoint,
        RebuildMode, RebuildObserver, RebuildOutcome, RebuildReport, RecoveryStrategy, ScrubReport,
        SkewMode, StageSummary, StageTimings, StoreError, StoreTelemetry,
    };
    pub use reliability::markov::array_mttdl;
    pub use reliability::montecarlo::{simulate_lifetime, Lifetime, LifetimeConfig};
    pub use reliability::patterns::{survivable_fraction, survival_profile};
    pub use telemetry::{
        child_coverage, exact_percentile_sorted, lint_prometheus, Event, EventKind, Histogram,
        HistogramSnapshot, Progress, ProgressSnapshot, Registry, ScrapeServer, SpanRecord, Tracer,
    };
    pub use volume::{
        Op, OpResult, SloPolicy, TenantClass, TenantId, VolumeError, VolumeId, VolumeManager, Zipf,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_reaches_every_crate() {
        let d = fano();
        assert_eq!(d.v(), 7);
        let a = OiRaid::new(OiRaidConfig::reference()).unwrap();
        assert_eq!(a.fault_tolerance(), 3);
        assert!(XorParity::new(3).is_ok());
        assert!(FlatRaid5::new(5, 4).is_ok());
        assert_eq!(survivable_fraction(&a, 0, 10, 0), 1.0);
    }
}
