//! Telemetry end to end: a fault-injected rebuild observed live, then the
//! whole run exported as Prometheus text and JSON (both self-linted).
//!
//! Builds a reference-config array on latency-injected devices, fails a
//! disk, and rebuilds it with the DAG scheduler while a second thread
//! polls the [`Progress`] handle. Afterwards it prints the per-stage
//! latency summaries, worker utilization, the scheduler series, and the
//! metric registry in both exposition formats — then closes with a real
//! crash: it re-execs itself against a durable (journaled) file-backed
//! store, kills the child mid-rebuild at a [`blockdev`] crash point, and
//! resumes from the on-disk checkpoint, showing `resumed_chunks` in the
//! progress snapshot.
//!
//! Run with `cargo run --example stats`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use oi_raid_repro::prelude::*;

const CHUNK: usize = 4096;

/// Child mode for the crash demo: open the durable store, fail a disk,
/// and rebuild — the inherited `OI_CRASH_*` environment aborts the
/// process partway through, leaving a checkpoint behind.
fn crash_child(dir: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    let store = OiRaidStore::open_durable(OiRaidConfig::reference(), CHUNK, dir)?;
    store.fail_disk(4)?;
    let obs = RebuildObserver::default();
    store.resume_rebuild(RebuildMode::Serial, RecoveryStrategy::Hybrid, &obs)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if let Some(dir) = std::env::var_os("OI_STATS_CRASH_DIR") {
        return crash_child(std::path::Path::new(&dir));
    }
    telemetry::set_enabled(true);

    // Latency-injected devices make the rebuild slow enough to watch.
    let cfg = OiRaidConfig::reference();
    let probe = OiRaidStore::new(cfg.clone(), CHUNK)?;
    let chunks = probe.devices()[0].chunks();
    let latency = FaultConfig::latency(Duration::from_micros(400), Duration::from_micros(400));
    let devices: Vec<_> = (0..probe.array().disks())
        .map(|_| FaultInjectingDevice::new(MemDevice::new(CHUNK, chunks), latency))
        .collect();
    let store = OiRaidStore::with_devices(cfg, CHUNK, devices)?;
    for idx in 0..store.data_chunks() {
        store.write_data(idx, &vec![(idx % 251) as u8 + 1; CHUNK])?;
    }

    store.fail_disk(4)?;
    println!("failed disks: {:?}\n", store.failed_disks());

    // Rebuild on this thread; poll the shared progress handle from another.
    let obs = RebuildObserver::default();
    let progress = Arc::clone(&obs.progress);
    let stop = AtomicBool::new(false);
    let report = std::thread::scope(|s| {
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                let snap = progress.snapshot();
                if snap.total_chunks > 0 {
                    println!("  {snap}");
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let report = store.rebuild_observed(RebuildMode::Dag, RecoveryStrategy::Hybrid, &obs);
        stop.store(true, Ordering::Relaxed);
        report
    })?;

    println!("\n{report}");
    println!(
        "worker utilization {:.0}%  peak ready depth {}  peak in-flight {}  steals {}",
        report.worker_utilization() * 100.0,
        report.sched.max_ready_depth,
        report.sched.max_inflight,
        report.sched.steals,
    );
    println!("\nper-stage latency:");
    for stage in &report.stages {
        println!("  {stage}");
    }

    // Gather everything the run produced into one registry.
    let reg = Registry::new();
    store.export_metrics(&reg);
    obs.export_metrics(&reg);
    reg.counter("oi_rebuild_chunks_total", "Chunks rebuilt", &[])
        .set(report.chunks_rebuilt);
    reg.counter("oi_rebuild_bytes_total", "Bytes rebuilt", &[])
        .set(report.bytes_rebuilt);

    let text = reg.prometheus();
    lint_prometheus(&text).map_err(|errs| format!("exposition lint failed: {errs:?}"))?;
    for name in [
        "oi_sched_ready_queue_depth",
        "oi_sched_inflight_ops",
        "oi_sched_steals_total",
    ] {
        assert!(
            text.contains(name),
            "scheduler series {name} must be exported"
        );
    }
    // The run is over: the live scheduler gauges must have drained to 0.
    assert!(
        text.contains("oi_sched_inflight_ops 0"),
        "gauges drain after the run"
    );
    println!("\n--- prometheus ({} series, lint-clean) ---", reg.len());
    println!("{text}");

    let json = reg.json();
    println!("--- json ({} bytes) ---", json.len());
    println!("{json}");

    // The whole report as one JSON document — what a harness would archive
    // per run instead of scraping the human-readable display.
    let report_json = report.to_json();
    assert!(report_json.contains("\"outcome\":\"complete\""));
    println!("--- report json ({} bytes) ---", report_json.len());
    println!("{report_json}");

    // Spans: show the rebuild's structure from the trace ring.
    let recs = obs.tracer.records();
    let root = recs.iter().find(|r| r.label == "rebuild").expect("root");
    println!("\n--- trace ({} spans) ---", recs.len());
    for r in recs.iter().filter(|r| r.parent == root.id) {
        println!(
            "  {:<12} {:>9.3} ms (thread {})",
            r.label,
            r.duration_ns as f64 / 1e6,
            r.thread
        );
    }
    let cov = child_coverage(&recs, root.id);
    println!("stage-span coverage of the rebuild: {:.1}%", cov * 100.0);
    assert!(cov >= 0.95, "stage spans must cover the rebuild wall time");

    // --- crash, checkpoint, resume -------------------------------------
    // A durable file-backed store this time: re-exec ourselves as a child
    // that fails a disk and rebuilds, with a crash point armed so the
    // child aborts mid-rebuild. The checkpoint it left behind lets the
    // resumed rebuild skip the chunks the crashed run already restored.
    let dir = std::env::temp_dir().join(format!("oi-raid-stats-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = OiRaidStore::create_durable(OiRaidConfig::reference(), CHUNK, &dir)?;
    for idx in 0..durable.data_chunks() {
        durable.write_data(idx, &vec![(idx % 250) as u8 + 1; CHUNK])?;
    }
    drop(durable);

    let status = std::process::Command::new(std::env::current_exe()?)
        .env("OI_STATS_CRASH_DIR", &dir)
        .env("OI_CRASH_POINT", "rebuild_writeback")
        .env("OI_CRASH_HITS", "6")
        .env("OI_RAID_CKPT_INTERVAL", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()?;
    assert!(!status.success(), "child must abort mid-rebuild");
    println!("\n--- crash demo: child killed mid-rebuild ({status}) ---");

    // The device files survived the process crash intact, so the disk is
    // NOT re-failed here — the checkpoint reopens the rebuild window and
    // keeps the chunks the crashed run already wrote.
    let store = OiRaidStore::open_durable(OiRaidConfig::reference(), CHUNK, &dir)?;
    let obs = RebuildObserver::default();
    let report = store.resume_rebuild(RebuildMode::Serial, RecoveryStrategy::Hybrid, &obs)?;
    let snap = obs.progress.snapshot();
    println!("resumed:  {report}");
    println!(
        "progress: {snap}\n          resumed past {} of {} chunks — the same field a live \
         scrape sees as \"resumed_chunks\" on /progress",
        snap.resumed_chunks, snap.total_chunks
    );
    assert!(report.outcome.is_recovered(), "{report}");
    assert!(
        snap.resumed_chunks > 0,
        "checkpoint must pre-credit restored chunks"
    );
    assert!(store.check_parity().is_empty(), "parity clean after resume");
    std::fs::remove_dir_all(&dir)?;

    Ok(())
}
