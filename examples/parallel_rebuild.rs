//! File-backed store + parallel rebuild engine, end to end.
//!
//! Creates a real on-disk array (one image file per disk), writes data,
//! fails three disks, rebuilds them with one reader thread per surviving
//! disk, and verifies the data survived — the runnable version of the
//! README's storage-backend example.

use oi_raid_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("oi-raid-demo-{}", std::process::id()));
    let store = OiRaidStore::create_in_dir(OiRaidConfig::reference(), 4096, &dir)?;
    println!(
        "created {} disk images under {}",
        store.devices().len(),
        dir.display()
    );

    // Fill every payload slot with a recognizable pattern.
    let slots = store.data_chunks();
    for s in 0..slots {
        store.write_data(s, &vec![(s % 251) as u8 + 1; 4096])?;
    }

    for d in [2, 9, 17] {
        store.fail_disk(d)?;
    }
    println!("failed disks: {:?}", store.failed_disks());

    let report = store.rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)?;
    println!("{report}");

    for s in 0..slots {
        assert_eq!(store.read_data(s)?, vec![(s % 251) as u8 + 1; 4096]);
    }
    println!("all {slots} payload chunks verified after rebuild");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
