//! Self-scraping observability smoke: stand up the full stack — store,
//! volume manager with an SLO-tracked tenant, observed DAG rebuild —
//! behind a live [`ScrapeServer`], then scrape our own endpoint over real
//! HTTP and verify every route answers.
//!
//! Run with `cargo run --example observe`. Environment knobs:
//!
//! * `OI_OBSERVE_PORT` — listen port (default `0`, an ephemeral port).
//! * `OI_OBSERVE_LINGER_SECS` — keep serving this long after the
//!   demo finishes (default `0`), so an external `curl` can scrape too:
//!   `OI_OBSERVE_PORT=9184 OI_OBSERVE_LINGER_SECS=30 cargo run --example observe &`
//!   `curl -s localhost:9184/metrics | head`

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use oi_raid_repro::prelude::*;

const CHUNK: usize = 1024;

fn http_get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    let mut s = TcpStream::connect(addr)?;
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: o\r\nConnection: close\r\n\r\n"
    )?;
    let mut out = String::new();
    s.read_to_string(&mut out)?;
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    telemetry::set_enabled(true);
    telemetry::set_trace_sample(Some(1));

    // The stack: latency-injected devices under a reference-config store,
    // fronted by a volume manager with one SLO-tracked tenant.
    let cfg = OiRaidConfig::reference();
    let probe = OiRaidStore::new(cfg.clone(), CHUNK)?;
    let chunks = probe.devices()[0].chunks();
    let latency = FaultConfig::latency(Duration::from_micros(150), Duration::from_micros(150));
    let devices: Vec<_> = (0..probe.array().disks())
        .map(|_| FaultInjectingDevice::new(MemDevice::new(CHUNK, chunks), latency))
        .collect();
    let store = Arc::new(OiRaidStore::with_devices(cfg, CHUNK, devices)?);
    store.set_qos(QosConfig::throttled(200.0));

    let manager = VolumeManager::new(Arc::clone(&store), 4);
    let tenant = manager.add_tenant(
        "demo",
        TenantClass::default().with_slo(SloPolicy::new(
            Duration::from_millis(20),
            Duration::from_millis(40),
        )),
    );
    let records = 64u64;
    let volume = manager.create_volume(tenant, "demo-v", 128, records)?;
    for r in 0..records {
        manager.write_record(volume, r, &[(r % 251) as u8 + 1; 128])?;
    }

    // Serve the union of every exporter plus live rebuild progress.
    let obs = RebuildObserver::default();
    let reg = Arc::new(Registry::new());
    store.export_metrics(&reg);
    obs.export_metrics(&reg);
    manager.export_metrics(&reg);

    let port: u16 = std::env::var("OI_OBSERVE_PORT")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let mut server = ScrapeServer::start(
        ("127.0.0.1", port),
        Arc::clone(&reg),
        Some(Arc::clone(&obs.progress)),
    )?;
    let addr = server.local_addr();
    println!("serving http://{addr}  (routes: /metrics /metrics.json /traces /events /progress /health)\n");

    // Generate the story the endpoint tells: degraded reads during a live
    // rebuild, traced end to end.
    store.fail_disk(4)?;
    let report = std::thread::scope(|s| {
        let rebuild =
            s.spawn(|| store.rebuild_observed(RebuildMode::Dag, RecoveryStrategy::Hybrid, &obs));
        while obs.progress.snapshot().fraction == 0.0 {
            std::thread::sleep(Duration::from_micros(100));
        }
        for _ in 0..4 {
            let ops: Vec<Op> = (0..records)
                .map(|record| Op::Read { volume, record })
                .collect();
            for res in manager.submit(ops) {
                res.expect("degraded read succeeds");
            }
        }
        rebuild.join().expect("rebuild thread")
    })?;
    println!("rebuild: {report}\n");

    // Scrape ourselves over real HTTP.
    for path in [
        "/metrics",
        "/metrics.json",
        "/traces",
        "/events",
        "/progress",
        "/health",
    ] {
        let resp = http_get(addr, path)?;
        let status = resp.lines().next().unwrap_or("<empty>").to_string();
        let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
        assert!(status.contains("200"), "{path}: {status}");
        let note = if path == "/metrics" {
            lint_prometheus(body).map_err(|e| format!("lint: {e:?}"))?;
            ", lint-clean"
        } else {
            ""
        };
        println!("GET {path:<14} -> {status}  ({} bytes{note})", body.len());
        if path == "/progress" {
            // The live progress document carries the checkpoint-resume
            // state: `resumed_chunks` is how many chunks a restarted
            // rebuild was pre-credited from the on-disk checkpoint
            // (0 here — this rebuild ran start to finish).
            assert!(
                body.contains("\"resumed_chunks\":"),
                "/progress surfaces checkpoint-resume state: {body}"
            );
            println!("    progress body: {}", body.trim());
        }
    }

    // Show a sampled trace tree straight off the ring.
    let events = telemetry::traces().snapshot();
    let roots: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::VolumeRead && e.parent == 0)
        .map(|e| e.trace)
        .take(1)
        .collect();
    if let Some(&root) = roots.first() {
        println!("\ntrace {root} (one sampled volume read):");
        let mut frontier = vec![(root, 1usize)];
        while let Some((id, depth)) = frontier.pop() {
            for e in events.iter().filter(|e| e.parent == id).take(4) {
                println!(
                    "{:indent$}{:?} a={} b={}",
                    "",
                    e.kind,
                    e.a,
                    e.b,
                    indent = depth * 2
                );
                frontier.push((e.trace, depth + 1));
            }
        }
    }

    let linger: u64 = std::env::var("OI_OBSERVE_LINGER_SECS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    if linger > 0 {
        println!("\nlingering {linger}s for external scrapes at http://{addr} ...");
        std::thread::sleep(Duration::from_secs(linger));
    }
    server.stop();
    Ok(())
}
