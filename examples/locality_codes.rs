//! Two roads to cheap repair: code-level locality (Azure's LRC) vs
//! layout-level declustering (OI-RAID). Same goal — don't read the whole
//! stripe to fix one disk — achieved at different layers, with different
//! trade-offs.
//!
//! ```text
//! cargo run --release --example locality_codes
//! ```

use oi_raid_repro::prelude::*;

fn main() {
    // --- Code level: LRC(12, 2, 2), Azure's production parameters. -------
    let lrc = Lrc::new(12, 2, 2).expect("Azure parameters");
    println!("code-level locality: {}", lrc.name());
    println!(
        "  tolerance          : {} arbitrary erasures",
        lrc.fault_tolerance()
    );
    println!("  efficiency         : {:.3}", lrc.efficiency());
    println!(
        "  single-unit repair : {} reads (its local group) vs {} for RS(12,4)",
        lrc.local_group_size(),
        12
    );
    println!("  update cost        : {}", lrc.update_cost());

    // Prove the locality + the full decode on real bytes.
    let data: Vec<Vec<u8>> = (0..12).map(|i| vec![(i * 17 + 3) as u8; 64]).collect();
    let parity = lrc.encode(&data).expect("encode");
    let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
    let mut units: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
    units[3] = None; // single data loss -> local peel
    units[7] = None;
    units[14] = None; // three losses -> global solve
    lrc.reconstruct(&mut units).expect("within tolerance");
    assert!(units
        .iter()
        .zip(&full)
        .all(|(u, f)| u.as_deref() == Some(&f[..])));
    println!("  verified           : triple-erasure decode on real bytes\n");

    // --- Layout level: OI-RAID. ------------------------------------------
    let array = OiRaid::new(OiRaidConfig::reference()).expect("reference");
    let m = Model::of(&array);
    println!("layout-level declustering: {}", array.name());
    println!(
        "  tolerance          : {} arbitrary disk failures",
        array.fault_tolerance()
    );
    println!("  efficiency         : {:.3}", array.efficiency());
    println!(
        "  degraded read      : {} reads (inner row) for a chunk on a failed disk",
        array.group_size() - 1
    );
    println!(
        "  full-disk rebuild  : bottleneck {:.3} of one disk (hybrid strategy)",
        m.bottleneck_read_fraction(RecoveryStrategy::Hybrid)
    );
    let plan = array
        .recovery_plan(&[4], SparePolicy::Distributed)
        .expect("plan");
    println!(
        "  rebuild sources    : {} of {} survivors contribute reads",
        plan.read_load(21).iter().filter(|&&c| c > 0).count(),
        20
    );

    println!(
        "\nthe difference in kind:\n\
         - LRC makes *one lost unit* cheap to repair but a stripe is still a\n\
           stripe: rebuilding a whole disk drives every stripe it touched,\n\
           and tolerance is a property of each 16-unit stripe.\n\
         - OI-RAID makes the *whole-disk rebuild* parallel (every survivor\n\
           helps) and its tolerance is a property of the 21-disk array —\n\
           including the loss of an entire enclosure-like group.\n\
         The two compose: nothing stops an OI-RAID outer layout from using\n\
         locality-aware codes inside each group (see `with_inner_parities`)."
    );

    // Degraded-read cost comparison under one failed disk.
    let idx = 12;
    let addr = array.locate_data(idx);
    match array.read_plan(idx, &[addr.disk]).expect("survivable") {
        ReadPlan::InnerDecode { reads } => {
            println!(
                "\ndegraded read of chunk {idx}: {} chunk reads (OI inner row) vs {} (RS stripe)",
                reads.len(),
                12
            );
        }
        other => println!("\nunexpected plan {other:?}"),
    }
}
