//! Quickstart: build the paper's reference OI-RAID array, store real data,
//! kill three disks, and get every byte back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oi_raid_repro::prelude::*;

fn main() {
    // The paper's running example: a Fano-plane (7,3,1) outer layer over 7
    // groups of 3 disks — 21 disks, RAID5 in both layers.
    let config = OiRaidConfig::reference();
    let array = OiRaid::new(config.clone()).expect("reference config is valid");
    println!("array        : {}", array.name());
    println!(
        "disks        : {} ({} groups x {})",
        array.disks(),
        array.groups(),
        array.group_size()
    );
    println!(
        "tolerance    : any {} disk failures",
        array.fault_tolerance()
    );
    println!(
        "efficiency   : {:.1}% of raw capacity is data",
        array.efficiency() * 100.0
    );
    println!("data chunks  : {}", array.data_chunks());

    // A byte-level store over the same geometry: real XOR parity in both
    // layers, 4 KiB chunks.
    let store = OiRaidStore::new(config, 4096).expect("store constructs");
    println!("\nwriting {} chunks of data...", store.data_chunks());
    let payload: Vec<Vec<u8>> = (0..store.data_chunks())
        .map(|i| {
            (0..4096)
                .map(|j| ((i * 2654435761 + j * 97) % 251) as u8)
                .collect()
        })
        .collect();
    for (i, chunk) in payload.iter().enumerate() {
        store.write_data(i, chunk).expect("write succeeds");
    }
    assert!(
        store.check_parity().is_empty(),
        "both parity layers consistent"
    );
    println!("parity check : OK (inner rows and outer stripes all consistent)");

    // Kill three disks — the worst the architecture guarantees against.
    for d in [2, 9, 17] {
        store.fail_disk(d).expect("valid disk");
    }
    println!("\nfailed disks : {:?}", store.failed_disks());

    // Reads still work (degraded reads reconstruct through the codes)...
    let sample = store.read_data(42).expect("degraded read");
    assert_eq!(sample, payload[42]);
    println!("degraded read: chunk 42 reconstructed correctly");

    // ...and the disks rebuild completely.
    for d in [2, 9, 17] {
        store.rebuild_disk(d).expect("recoverable pattern");
    }
    for (i, chunk) in payload.iter().enumerate() {
        assert_eq!(&store.read_data(i).expect("read"), chunk, "chunk {i}");
    }
    println!("rebuild      : all 3 disks restored, every byte verified");

    // How fast is that rebuild? Plan one failure and simulate 1 TB disks.
    let plan = array
        .recovery_plan(&[2], SparePolicy::Distributed)
        .expect("single failure plan");
    let capacity: u64 = 1_000_000_000_000;
    let sim = plan.simulate(
        &DiskSpec::hdd_7200(capacity),
        capacity / array.chunks_per_disk() as u64,
    );
    println!(
        "\nsimulated single-disk rebuild of a 1 TB disk: {} \
         (flat RAID5 on the same 21 disks: ~11100s)",
        sim.rebuild_time
    );
}
