//! High reliability (the paper's second headline claim): failure-pattern
//! survival, Markov MTTDL and a Monte-Carlo cross-check, OI-RAID vs the
//! classical layouts at the same 21-disk scale.
//!
//! ```text
//! cargo run --release --example reliability_study
//! ```

use oi_raid_repro::prelude::*;

fn main() {
    let array = OiRaid::new(OiRaidConfig::reference()).expect("reference");
    let layouts: Vec<(&str, Box<dyn Layout>)> = vec![
        ("OI-RAID(7,3,g=3)", Box::new(array)),
        ("RAID5(21)", Box::new(FlatRaid5::new(21, 9).expect("raid5"))),
        ("RAID6(21)", Box::new(FlatRaid6::new(21, 9).expect("raid6"))),
        (
            "RAID50(7x3)",
            Box::new(Raid50::new(7, 3, 9).expect("raid50")),
        ),
    ];

    // 1. Combinatorics: which failure patterns survive?
    println!("P(survive | f simultaneous disk failures), 21 disks:\n");
    print!("{:<18}", "layout");
    for f in 1..=6 {
        print!("{:>9}", format!("f={f}"));
    }
    println!();
    for (name, l) in &layouts {
        print!("{name:<18}");
        for f in 1..=6usize {
            let q = survivable_fraction(l.as_ref(), f, 20_000, 0xBEEF + f as u64);
            print!("{:>9.4}", q);
        }
        println!();
    }
    println!(
        "\nOI-RAID survives every 1-, 2- and 3-failure pattern (verified\n\
         exhaustively: C(21,3) = 1330 patterns), plus most larger ones —\n\
         including the loss of an entire 3-disk group."
    );

    // 2. Markov MTTDL with repair speed taken from the rebuild simulations.
    println!("\nMTTDL (hours) at disk MTTF = 600,000 h:");
    // Repair: OI rebuilds ~3x faster than RAID5 at this scale (see
    // fast_recovery example); 1 TB at 100 MB/s.
    let repair_raid5_h = 11_111.0 / 3600.0;
    let repair_oi_h = 3_333.0 / 3600.0;
    for (name, l) in &layouts {
        let q = survival_profile(l.as_ref(), 5, 8_000, 0xCAFE);
        let repair = if name.starts_with("OI") {
            repair_oi_h
        } else {
            repair_raid5_h
        };
        let mttdl = array_mttdl(21, 600_000.0, repair, &q);
        println!("  {name:<18} {mttdl:>12.3e}");
    }

    // 3. Monte-Carlo cross-check under deliberately harsh conditions so
    //    losses actually happen within the trials.
    println!("\nMonte-Carlo cross-check (MTTF 8,000 h, repair 200 h, 300 trials):");
    for (name, l) in &layouts {
        let res = simulate_lifetime(
            l.as_ref(),
            &LifetimeConfig {
                mttf_hours: 8_000.0,
                repair_hours: 200.0,
                mission_hours: 100_000.0,
                trials: 300,
                seed: 0xD15C,
                lifetime: Lifetime::Exponential,
            },
        );
        println!(
            "  {name:<18} P(loss in mission) = {:.3}   MTTDL ~ {:.3e} h",
            res.loss_probability, res.mttdl_estimate_hours
        );
    }
}
