//! Multi-tenant volumes: carve one OI-RAID store into per-tenant volumes,
//! push a batch of operations through the coalescing submission path, and
//! watch the QoS classes keep tenants apart.
//!
//! ```text
//! cargo run --release --example volumes
//! ```

use std::sync::Arc;

use oi_raid_repro::prelude::*;

fn main() {
    // The paper's 21-disk reference array, wrapped by the volume layer:
    // 16 submission shards over the chunk space.
    let store = Arc::new(OiRaidStore::new(OiRaidConfig::reference(), 4096).expect("store"));
    let mgr = VolumeManager::new(store, 16);

    // Two tenants with different QoS classes: `app` gets 4x the drain
    // weight; `batchjob` is capped at 2000 ops/s and paces itself.
    let app = mgr.add_tenant("app", TenantClass::weighted(4));
    let batchjob = mgr.add_tenant("batchjob", TenantClass::capped(2000.0));

    // Volumes are fixed-size record arrays carved from the store's bytes.
    let db = mgr
        .create_volume(app, "db", 512, 256)
        .expect("db volume fits");
    let scratch = mgr
        .create_volume(batchjob, "scratch", 4096, 32)
        .expect("scratch volume fits");
    println!(
        "volumes      : db = 256 x 512 B (tenant app), scratch = 32 x 4 KiB (tenant batchjob)"
    );

    // One submission, many operations: writes to the same chunk coalesce
    // into a single read-modify-write, duplicate hot reads are served by
    // one disk access, and a read behind a write in the same batch is
    // answered from the pending write without touching a disk at all.
    let mut ops = Vec::new();
    for r in 0..64u64 {
        ops.push(Op::Write {
            volume: db,
            record: r,
            data: vec![r as u8; 512],
        });
    }
    ops.push(Op::Read {
        volume: db,
        record: 7,
    }); // absorbed from the write above
    ops.push(Op::Read {
        volume: db,
        record: 7,
    }); // and again — still no I/O
    let results = mgr.submit(ops);
    let reads: Vec<_> = results.iter().flatten().flatten().collect();
    assert_eq!(reads.len(), 2);
    assert!(reads.iter().all(|r| r[0] == 7));
    println!(
        "one submit   : 64 writes + 2 reads -> {} store wave(s), {} ops batched",
        mgr.waves(),
        mgr.batch_ops()
    );

    // The batched path is bit-identical to one-at-a-time submission — the
    // direct calls read back exactly what the batch wrote.
    for r in 0..64u64 {
        assert_eq!(mgr.read_record(db, r).expect("read"), vec![r as u8; 512]);
    }
    println!("readback     : all 64 records bit-identical via the direct path");

    // The capped tenant works the same way, just slower by decree.
    mgr.write_record(scratch, 0, &vec![0xAB; 4096])
        .expect("capped write");
    assert_eq!(
        mgr.read_record(scratch, 0).expect("capped read"),
        vec![0xAB; 4096]
    );

    // Everything is observable: per-tenant request counters, absorbed
    // reads, throttle waits, and latency histograms as oi_volume_* series.
    let reg = Registry::new();
    mgr.export_metrics(&reg);
    let text = reg.prometheus();
    let interesting = [
        "oi_volume_batch_ops_total",
        "oi_volume_absorbed_reads_total",
        "oi_volume_requests_total",
    ];
    println!("\nmetrics:");
    for line in text.lines() {
        if interesting.iter().any(|m| line.starts_with(m)) {
            println!("  {line}");
        }
    }

    // Volumes survive array failures like everything else in the store:
    // two disks die, records still read back through reconstruction.
    mgr.store().fail_disk(3).expect("valid disk");
    mgr.store().fail_disk(11).expect("valid disk");
    assert_eq!(mgr.read_record(db, 42).expect("degraded"), vec![42u8; 512]);
    println!("\ndegraded     : disks {{3, 11}} down, records reconstruct fine");
    let report = mgr
        .store()
        .rebuild(RebuildMode::Dag, RecoveryStrategy::Hybrid)
        .expect("rebuild");
    println!(
        "rebuild      : {:?} in {:.1} ms",
        report.outcome,
        report.wall.as_secs_f64() * 1e3
    );
    assert!(mgr.store().check_parity().is_empty());
    println!("parity check : OK");
}
