//! OI-RAID vs classical parity declustering (Holland & Gibson): the
//! trade-off the paper stakes out. PD spreads rebuild reads thinnest but
//! tolerates a single failure; OI-RAID pays more storage for 3-failure
//! tolerance while keeping all-disk rebuild parallelism.
//!
//! ```text
//! cargo run --release --example declustering_compare
//! ```

use oi_raid_repro::prelude::*;

fn show_load(name: &str, plan: &RecoveryPlan, disks: usize) {
    let load = plan.read_load(disks);
    let survivors: Vec<u64> = (0..disks)
        .filter(|d| !plan.failed().contains(d))
        .map(|d| load[d])
        .collect();
    let max = *survivors.iter().max().expect("survivors");
    let mean = survivors.iter().sum::<u64>() as f64 / survivors.len() as f64;
    let busy = survivors.iter().filter(|&&c| c > 0).count();
    println!(
        "  {name:<22} reads: total={:<5} busy disks={busy:<3} max/disk={max:<4} balance={:.2}",
        plan.total_reads(),
        max as f64 / mean
    );
}

fn main() {
    // Both systems built from block designs over 21 "units":
    // - PD: a (21,5,1) design over 21 disks directly.
    // - OI-RAID: the Fano (7,3,1) design over 7 groups x 3 disks.
    let pd_design = find_design(21, 5).expect("(21,5,1) exists");
    let pd = ParityDeclustered::new(pd_design, 6).expect("pd layout");
    let oi = OiRaid::new(OiRaidConfig::new(fano(), 3, 2).expect("config")).expect("oi array");

    println!("single-disk rebuild read distribution (disk 0 fails):\n");
    show_load(
        "PD(21,5,1)",
        &pd.recovery_plan(&[0], SparePolicy::Distributed)
            .expect("plan"),
        21,
    );
    show_load(
        "OI-RAID outer",
        &oi.recovery_plan_with_strategy(0, SparePolicy::Distributed, RecoveryStrategy::Outer)
            .expect("plan"),
        21,
    );
    show_load(
        "OI-RAID hybrid",
        &oi.recovery_plan_with_strategy(0, SparePolicy::Distributed, RecoveryStrategy::Hybrid)
            .expect("plan"),
        21,
    );

    println!("\nwhat each scheme gives up:\n");
    println!(
        "  {:<14}{:>10}{:>12}{:>22}",
        "scheme", "tolerance", "efficiency", "declustering ratio"
    );
    println!(
        "  {:<14}{:>10}{:>12.3}{:>22.3}",
        "PD(21,5,1)",
        pd.fault_tolerance(),
        pd.efficiency(),
        pd.declustering_ratio()
    );
    let m = Model::of(&oi);
    println!(
        "  {:<14}{:>10}{:>12.3}{:>22.3}",
        "OI-RAID",
        oi.fault_tolerance(),
        oi.efficiency(),
        m.bottleneck_read_fraction(RecoveryStrategy::Hybrid)
    );

    println!("\nfailure-pattern survival (20k samples per point):\n");
    print!("  {:<14}", "scheme");
    for f in 1..=4 {
        print!("{:>9}", format!("f={f}"));
    }
    println!();
    for (name, l) in [
        ("PD(21,5,1)", &pd as &dyn Layout),
        ("OI-RAID", &oi as &dyn Layout),
    ] {
        print!("  {name:<14}");
        for f in 1..=4usize {
            print!(
                "{:>9.3}",
                survivable_fraction(l, f, 20_000, 0xDC + f as u64)
            );
        }
        println!();
    }
    println!(
        "\nPD rebuilds fastest but *any* second failure during the rebuild\n\
         window loses data; OI-RAID keeps nearly the same rebuild parallelism\n\
         while surviving every triple failure."
    );
}
