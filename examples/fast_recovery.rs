//! Fast recovery (the paper's headline claim): compare single-disk rebuild
//! times across OI-RAID's recovery strategies and the classical baselines,
//! on simulated 1 TB disks.
//!
//! ```text
//! cargo run --release --example fast_recovery
//! ```

use oi_raid_repro::prelude::*;

const CAPACITY: u64 = 1_000_000_000_000; // 1 TB

fn simulate(plan: &RecoveryPlan, chunks_per_disk: usize) -> f64 {
    let chunk = CAPACITY / chunks_per_disk as u64;
    plan.simulate(&DiskSpec::hdd_7200(CAPACITY), chunk)
        .rebuild_time
        .as_secs_f64()
}

fn main() {
    println!("single-disk rebuild, 21 disks, 1 TB each, 100 MB/s\n");
    println!("{:<34}{:>12}{:>10}", "scheme", "time (s)", "speedup");
    println!("{}", "-".repeat(56));

    let array = OiRaid::new(OiRaidConfig::reference()).expect("reference");
    let t = array.chunks_per_disk();

    // Baselines.
    let raid5 = FlatRaid5::new(21, t).expect("raid5");
    let raid5_time = simulate(
        &raid5
            .recovery_plan(&[0], SparePolicy::Dedicated)
            .expect("plan"),
        t,
    );
    println!(
        "{:<34}{:>12.0}{:>10.2}",
        "RAID5(21), dedicated spare", raid5_time, 1.0
    );

    let raid50 = Raid50::new(7, 3, t).expect("raid50");
    let raid50_time = simulate(
        &raid50
            .recovery_plan(&[0], SparePolicy::Dedicated)
            .expect("plan"),
        t,
    );
    println!(
        "{:<34}{:>12.0}{:>10.2}",
        "RAID50(7x3), dedicated spare",
        raid50_time,
        raid5_time / raid50_time
    );

    // OI-RAID under each recovery strategy (distributed spare space).
    for strategy in RecoveryStrategy::ALL {
        let plan = array
            .recovery_plan_with_strategy(0, SparePolicy::Distributed, strategy)
            .expect("plan");
        let time = simulate(&plan, t);
        println!(
            "{:<34}{:>12.0}{:>10.2}",
            format!("OI-RAID, {} strategy", strategy.label()),
            time,
            raid5_time / time
        );
    }

    // The analytical model behind the numbers.
    let m = Model::of(&array);
    println!("\nanalytical bottleneck fractions (fraction of one disk read):");
    for strategy in RecoveryStrategy::ALL {
        println!(
            "  {:<10} {:.4}  (read-bound speedup vs RAID5: {:.1}x)",
            strategy.label(),
            m.bottleneck_read_fraction(strategy),
            m.read_speedup_vs_raid5(strategy)
        );
    }

    // And the scaling story: bigger arrays recover faster.
    println!("\nscaling (hybrid strategy, simulated):");
    for (v, k, g) in [(7usize, 3usize, 3usize), (13, 4, 5), (21, 5, 5), (31, 6, 7)] {
        let design = find_design(v, k).expect("catalogued design");
        let a = OiRaid::new(OiRaidConfig::new(design, g, 1).expect("config")).expect("array");
        let tt = a.chunks_per_disk();
        let plan = a
            .recovery_plan_with_strategy(0, SparePolicy::Distributed, RecoveryStrategy::Hybrid)
            .expect("plan");
        let time = simulate(&plan, tt);
        println!(
            "  n={:<4} (v={v}, k={k}, g={g}): {:>7.0} s  ({:.1}x vs flat RAID5 at same n)",
            a.disks(),
            time,
            simulate(
                &FlatRaid5::new(a.disks(), tt)
                    .expect("raid5")
                    .recovery_plan(&[0], SparePolicy::Dedicated)
                    .expect("plan"),
                tt
            ) / time
        );
    }
}
