//! Update complexity (claim C6): trace exactly which chunks a single data
//! write touches in OI-RAID and compare the write amplification against the
//! other 3-failure-tolerant schemes.
//!
//! ```text
//! cargo run --release --example update_cost
//! ```

use oi_raid_repro::prelude::*;

fn main() {
    let array = OiRaid::new(OiRaidConfig::reference()).expect("reference");

    // Trace one update through the geometry.
    let idx = 17;
    let addr = array.locate_data(idx);
    let set = array.update_set(addr).expect("data chunk");
    println!("updating logical data chunk {idx} (at {addr}):");
    let labels = [
        "data chunk itself",
        "inner parity of its row (same group)",
        "outer parity of its stripe (other group)",
        "inner parity of the outer parity's row",
    ];
    for (a, label) in set.iter().zip(labels) {
        println!(
            "  write {a}  in group {:<2} - {label}",
            array.group_of(a.disk)
        );
    }
    println!(
        "\n=> {} writes on {} distinct disks; the minimum for any code\n\
         tolerating 3 erasures is 1 data + 3 parity writes, so OI-RAID is\n\
         update-optimal.",
        set.len(),
        set.iter()
            .map(|a| a.disk)
            .collect::<std::collections::HashSet<_>>()
            .len()
    );

    // Verify it holds for *every* data chunk, not just one.
    let all_optimal = (0..array.data_chunks()).all(|i| {
        array
            .update_set(array.locate_data(i))
            .is_ok_and(|s| s.len() == 4)
    });
    println!(
        "verified over all {} data chunks: {all_optimal}",
        array.data_chunks()
    );

    // Comparison table.
    println!("\nwrites per user write across schemes:");
    let schemes: Vec<(String, usize, usize)> = vec![
        ("OI-RAID (RAID5 x RAID5)".into(), 3, 4),
        {
            let c = XorParity::new(6).expect("raid5");
            (
                c.name(),
                c.fault_tolerance(),
                c.update_cost().total_writes(),
            )
        },
        {
            let c = Raid6::new(6).expect("raid6");
            (
                c.name(),
                c.fault_tolerance(),
                c.update_cost().total_writes(),
            )
        },
        {
            let c = ReedSolomon::new(6, 3).expect("rs");
            (
                c.name(),
                c.fault_tolerance(),
                c.update_cost().total_writes(),
            )
        },
        {
            let c = Replication::new(4).expect("rep");
            (
                c.name(),
                c.fault_tolerance(),
                c.update_cost().total_writes(),
            )
        },
    ];
    println!(
        "  {:<26}{:>10}{:>9}{:>10}",
        "scheme", "tolerance", "writes", "optimal"
    );
    for (name, tol, writes) in schemes {
        println!(
            "  {name:<26}{tol:>10}{writes:>9}{:>10}",
            if writes == tol + 1 { "yes" } else { "no" }
        );
    }

    // And the real thing: count bytes actually touched by the byte store.
    let store = OiRaidStore::new(OiRaidConfig::reference(), 1024).expect("store");
    store.write_data(idx, &[0x5A; 1024]).expect("write");
    assert!(store.check_parity().is_empty());
    println!("\nbyte-level store: the incremental update left both parity layers consistent.");
}
