//! Offline stand-in for the `rand` crate.
//!
//! The CI sandboxes this workspace builds in have no access to crates.io,
//! so the workspace vendors the small API subset it actually uses:
//! [`rngs::StdRng`] (seedable, deterministic), the [`Rng`] /
//! [`SeedableRng`] traits, [`seq::index::sample`], and
//! [`distributions::Uniform`]. The generator is xoshiro256** seeded via
//! SplitMix64 — statistically solid for simulation work, *not*
//! cryptographic, and its streams differ from upstream `rand`'s `StdRng`
//! (every consumer in this repo only relies on determinism per seed, never
//! on specific values).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Types that can construct themselves from entropy seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface: everything callers draw from a generator.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, &range)
    }

    /// A uniform value of `T` over its full domain (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

/// Uniform f64 in `[0, 1)` from 64 random bits (53-bit mantissa method).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Draws one sample from `range` using `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u128;
                // Modulo bias is < 2^-64 for the spans this repo uses.
                range.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = range.end.wrapping_sub(range.start) as $u as u128;
                range.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + unit_f64(rng.next_u64()) * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        f64::sample_range(rng, &((range.start as f64)..(range.end as f64))) as f32
    }
}

/// Types with a canonical "whole domain" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (the workspace's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution objects (`Uniform::new(a, b).sample(rng)`).
pub mod distributions {
    use super::{Rng, SampleUniform};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open range.
    #[derive(Debug, Clone)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform + Copy + PartialOrd> Uniform<T> {
        /// Uniform over `[low, high)`.
        ///
        /// # Panics
        ///
        /// Panics if `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Self { low, high }
        }
    }

    impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(rng, &(self.low..self.high))
        }
    }
}

/// Sequence sampling helpers.
pub mod seq {
    /// Index-set sampling (`seq::index::sample`).
    pub mod index {
        use crate::Rng;

        /// A sampled set of indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly
        /// (partial Fisher–Yates).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() as usize % (length - i));
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

/// `rand::prelude`-style convenience imports.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = super::seq::index::sample(&mut rng, 20, 7).into_vec();
        assert_eq!(v.len(), 7);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
        assert!(v.iter().all(|&i| i < 20));
    }

    #[test]
    fn uniform_distribution_object() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new(10.0f64, 20.0);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!((10.0..20.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }
}
