//! Offline stand-in for the `proptest` crate.
//!
//! The sandboxes this workspace builds in cannot reach crates.io, so this
//! crate vendors the subset its property tests rely on: the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]`), range and
//! [`any`]-based strategies, tuple strategies, [`Strategy::prop_map`], and
//! the `prop_assert*` macros. Failing cases report the drawn inputs and the
//! deterministic per-test seed; there is **no shrinking** — rerun with the
//! printed seed to reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test-function configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property check (carries the `prop_assert*` message).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Value generators. Strategies are immutable; each case calls
/// [`Strategy::generate`] with the test runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (resampling; gives up after 1000
    /// rejections per case).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a full-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen_range(-1.0e9f64..1.0e9)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy for vectors with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace alias used by `proptest::prelude`.
pub mod prop {
    pub use crate::collection;
}

/// Derives the deterministic base seed for a test function. Override with
/// `PROPTEST_SEED=<u64>` to reproduce a reported failure.
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `body` for `cases` deterministic cases, panicking with seed and
/// case diagnostics on the first failure. Used by [`proptest!`].
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let seed = base_seed(test_name);
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(case as u64));
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest {test_name}: case {case}/{} failed (PROPTEST_SEED={seed}): {e}",
                config.cases
            );
        }
    }
}

/// Defines property tests. Supports the upstream surface this workspace
/// uses: an optional leading `#![proptest_config(...)]`, multiple `#[test]`
/// functions, and `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) so the runner can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_inside_bounds(a in 3usize..10, b in 0u32..7) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 7);
        }

        #[test]
        fn tuples_and_map(pair in (0usize..5, 10usize..20).prop_map(|(x, y)| x + y)) {
            prop_assert!((10..25).contains(&pair));
        }
    }

    proptest! {
        #[test]
        fn default_config_and_any(x in any::<u64>(), flag in any::<bool>()) {
            // Exercise both generators; trivially true property.
            prop_assert_eq!(x, x);
            prop_assert_ne!(flag as u64 + 2, 1);
        }
    }

    #[test]
    fn failure_reports_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases("always_fails", &ProptestConfig::with_cases(3), |_| {
                Err(crate::TestCaseError("boom".into()))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("PROPTEST_SEED="), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn vec_strategy_lengths() {
        use rand::{rngs::StdRng, SeedableRng};
        let s = prop::collection::vec(0u8..255, 2..6);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
