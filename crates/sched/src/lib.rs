//! Work-stealing DAG executor for device-bound pipelines.
//!
//! An [`OpGraph`] holds a set of opaque operations plus their dependency
//! edges; [`run`] executes it on a pool of worker threads. Readiness is
//! tracked with one atomic indegree per op: when an op finishes, it
//! decrements each dependent's indegree, and the decrement that reaches
//! zero — and only that one, by the atomicity of `fetch_sub` — pushes the
//! dependent onto a ready queue. There are no phase barriers anywhere:
//! every op runs the instant its inputs exist and a worker is free, so
//! thousands of ops stay in flight across all devices at once.
//!
//! Ops may carry a *device affinity*. Each device gets its own ready
//! queue; a worker prefers its home queue and **steals** from the others
//! when it runs dry, which keeps every device's queue deep (the property
//! declustered RAID layouts exist to exploit) while still draining hot
//! spots with idle workers.
//!
//! Failure is a first-class edge of the graph, not an exception: an op
//! whose callback returns [`OpStatus::Failed`] *poisons* its dependents,
//! which are then finalized as cancelled (transitively) without running.
//! The caller gets the cancelled set back and can re-root those subgraphs
//! — re-plan just the affected items — instead of re-running everything.
//!
//! Scheduler observability is built in: [`SchedMetrics`] carries live
//! [`Gauge`]/[`Counter`] handles (ready-queue depth, in-flight ops,
//! steals) that can be attached to a [`telemetry::Registry`], and every
//! run returns a [`SchedStats`] snapshot with the peaks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use telemetry::{Counter, Gauge, Registry};

/// Identifies one op inside an [`OpGraph`] (dense, starting at 0).
pub type OpId = usize;

/// What an op's callback reports back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    /// The op succeeded; dependents may run.
    Done,
    /// The op failed; dependents (transitively) are cancelled and returned
    /// in [`ExecReport::cancelled`] for the caller to re-plan.
    Failed,
}

/// A dependency graph of opaque operations, built up-front and executed
/// once by [`run`]. `T` is the caller's per-op payload (an instruction the
/// execution callback interprets).
#[derive(Debug)]
pub struct OpGraph<T> {
    payloads: Vec<T>,
    device: Vec<Option<usize>>,
    dependents: Vec<Vec<OpId>>,
    indeg: Vec<u32>,
    trace: Vec<u64>,
}

impl<T> Default for OpGraph<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OpGraph<T> {
    /// An empty graph.
    pub fn new() -> Self {
        Self {
            payloads: Vec::new(),
            device: Vec::new(),
            dependents: Vec::new(),
            indeg: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Adds an op with no edges yet. `device` is the ready-queue affinity
    /// (ops bound to a device land on its queue; `None` = shared queue).
    ///
    /// The builder thread's ambient trace id is captured into the node, so
    /// when a worker later executes it (on a different thread) the op runs
    /// under the trace of the request that planned it.
    pub fn add_node(&mut self, payload: T, device: Option<usize>) -> OpId {
        self.payloads.push(payload);
        self.device.push(device);
        self.dependents.push(Vec::new());
        self.indeg.push(0);
        self.trace.push(telemetry::current_trace());
        self.payloads.len() - 1
    }

    /// Adds the edge `dep → dependent`: `dependent` cannot start until
    /// `dep` finished. Parallel edges are allowed (each counts one
    /// indegree and one decrement, so the arithmetic stays balanced).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or a self-edge (the caller is building
    /// the graph from a plan it controls; a bad edge is a logic error).
    pub fn add_edge(&mut self, dep: OpId, dependent: OpId) {
        assert!(dep < self.payloads.len() && dependent < self.payloads.len());
        assert_ne!(dep, dependent, "self-edge would deadlock");
        self.dependents[dep].push(dependent);
        self.indeg[dependent] += 1;
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// Whether the graph has no ops.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// The payload of `op`.
    pub fn payload(&self, op: OpId) -> &T {
        &self.payloads[op]
    }
}

/// Live scheduler gauges, updated while a [`run`] is in flight. Clone the
/// struct to keep handles; attach them to a registry with
/// [`SchedMetrics::export`]. The gauges read 0 when no run is active.
#[derive(Debug, Clone, Default)]
pub struct SchedMetrics {
    /// Ops currently sitting in ready queues (pushed, not yet popped).
    pub ready_queue_depth: Gauge,
    /// Ops currently executing their callback.
    pub inflight_ops: Gauge,
    /// Ready-queue pops served from a queue other than the worker's home
    /// queue.
    pub steals: Counter,
}

impl SchedMetrics {
    /// Registers the three scheduler series with a metric registry (live
    /// handles — exports track later runs too).
    pub fn export(&self, reg: &Registry) {
        reg.register_gauge(
            "oi_sched_ready_queue_depth",
            "Ops sitting in scheduler ready queues right now",
            &[],
            self.ready_queue_depth.clone(),
        );
        reg.register_gauge(
            "oi_sched_inflight_ops",
            "Ops currently executing on scheduler workers",
            &[],
            self.inflight_ops.clone(),
        );
        reg.register_counter(
            "oi_sched_steals_total",
            "Ready-queue pops served from a non-home queue",
            &[],
            self.steals.clone(),
        );
    }
}

/// Aggregate statistics of one [`run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Ops whose callback ran (whether it returned `Done` or `Failed`).
    pub executed: u64,
    /// Ops finalized as cancelled without running (poisoned by a failed
    /// ancestor).
    pub cancelled: u64,
    /// Pops served from a non-home queue.
    pub steals: u64,
    /// Peak number of ops sitting in ready queues at once.
    pub max_ready_depth: u64,
    /// Peak number of callbacks executing concurrently.
    pub max_inflight: u64,
}

impl SchedStats {
    /// Folds another run's stats into this one: counters add, peaks take
    /// the max. For summing stats across successive [`run`] calls.
    pub fn absorb(&mut self, other: &SchedStats) {
        self.executed += other.executed;
        self.cancelled += other.cancelled;
        self.steals += other.steals;
        self.max_ready_depth = self.max_ready_depth.max(other.max_ready_depth);
        self.max_inflight = self.max_inflight.max(other.max_inflight);
    }
}

/// What one [`run`] did.
#[derive(Debug)]
pub struct ExecReport {
    /// Aggregate counters and peaks.
    pub stats: SchedStats,
    /// Time each worker spent inside op callbacks, in worker order.
    pub worker_busy: Vec<Duration>,
    /// Ops that never ran because an ancestor failed, in finalization
    /// order. Empty for a fault-free run.
    pub cancelled: Vec<OpId>,
}

struct Shared<'g, T> {
    graph: &'g OpGraph<T>,
    indeg: Vec<AtomicU32>,
    poisoned: Vec<AtomicBool>,
    /// One ready queue per device plus a trailing shared queue for
    /// device-less ops.
    queues: Vec<Mutex<VecDeque<OpId>>>,
    /// Ops not yet finalized (executed or cancelled). The run is over when
    /// this reaches zero.
    remaining: AtomicUsize,
    idle: Mutex<()>,
    wake: Condvar,
    metrics: SchedMetrics,
    depth: AtomicI64,
    max_depth: AtomicI64,
    max_inflight: AtomicI64,
    inflight: AtomicI64,
    executed: AtomicU64,
    cancelled_count: AtomicU64,
    steals: AtomicU64,
    cancelled: Mutex<Vec<OpId>>,
}

impl<'g, T> Shared<'g, T> {
    fn queue_of(&self, op: OpId) -> usize {
        match self.graph.device[op] {
            Some(d) => d % (self.queues.len() - 1).max(1),
            None => self.queues.len() - 1,
        }
    }

    fn push(&self, op: OpId) {
        self.queues[self.queue_of(op)]
            .lock()
            .expect("queue lock")
            .push_back(op);
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_depth.fetch_max(d, Ordering::Relaxed);
        self.metrics.ready_queue_depth.add(1);
        self.wake.notify_one();
    }

    /// Pops from the home queue, else steals round-robin from the others.
    fn pop(&self, home: usize) -> Option<OpId> {
        let nq = self.queues.len();
        for i in 0..nq {
            let q = (home + i) % nq;
            if let Some(op) = self.queues[q].lock().expect("queue lock").pop_front() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                self.metrics.ready_queue_depth.add(-1);
                if i != 0 {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    self.metrics.steals.inc();
                }
                return Some(op);
            }
        }
        None
    }

    /// Decrements every dependent's indegree; the decrement that lands on
    /// zero — exactly one, by `fetch_sub` atomicity — enqueues it. A
    /// failed/cancelled op poisons the dependent first, so the poison is
    /// visible before the dependent can possibly run.
    fn finish(&self, op: OpId, ok: bool) {
        for &dep in &self.graph.dependents[op] {
            if !ok {
                self.poisoned[dep].store(true, Ordering::Release);
            }
            if self.indeg[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.push(dep);
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last op: wake everyone so idle workers can exit.
            let _g = self.idle.lock().expect("idle lock");
            self.wake.notify_all();
        }
    }
}

/// Executes `graph` on `workers` threads over `devices` per-device ready
/// queues, calling `f(worker, op, payload)` for each runnable op. Returns
/// once every op is executed or cancelled.
///
/// The callback decides success: [`OpStatus::Failed`] cancels the op's
/// transitive dependents (they are reported, not run). `metrics` gauges
/// tick live while the run is in flight.
pub fn run<T, F>(
    workers: usize,
    devices: usize,
    metrics: &SchedMetrics,
    graph: &OpGraph<T>,
    f: F,
) -> ExecReport
where
    T: Sync,
    F: Fn(usize, OpId, &T) -> OpStatus + Sync,
{
    let workers = workers.max(1);
    if graph.is_empty() {
        return ExecReport {
            stats: SchedStats::default(),
            worker_busy: vec![Duration::ZERO; workers],
            cancelled: Vec::new(),
        };
    }
    let shared = Shared {
        indeg: graph.indeg.iter().map(|&d| AtomicU32::new(d)).collect(),
        poisoned: (0..graph.len()).map(|_| AtomicBool::new(false)).collect(),
        queues: (0..devices + 1)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect(),
        remaining: AtomicUsize::new(graph.len()),
        idle: Mutex::new(()),
        wake: Condvar::new(),
        metrics: metrics.clone(),
        depth: AtomicI64::new(0),
        max_depth: AtomicI64::new(0),
        max_inflight: AtomicI64::new(0),
        inflight: AtomicI64::new(0),
        executed: AtomicU64::new(0),
        cancelled_count: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        cancelled: Mutex::new(Vec::new()),
        graph,
    };
    for op in 0..graph.len() {
        if graph.indeg[op] == 0 {
            shared.push(op);
        }
    }
    let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let shared = &shared;
    let busy_ref = &busy;
    let f = &f;
    std::thread::scope(|s| {
        for (w, busy) in busy_ref.iter().enumerate() {
            s.spawn(move || {
                let home = w % shared.queues.len();
                loop {
                    let Some(op) = shared.pop(home) else {
                        if shared.remaining.load(Ordering::Acquire) == 0 {
                            return;
                        }
                        // Nothing ready yet: park until a push or the final
                        // finalization wakes us (timeout guards the race
                        // between the emptiness check and the wait).
                        let g = shared.idle.lock().expect("idle lock");
                        let _ = shared
                            .wake
                            .wait_timeout(g, Duration::from_millis(1))
                            .expect("idle wait");
                        continue;
                    };
                    if shared.poisoned[op].load(Ordering::Acquire) {
                        shared.cancelled_count.fetch_add(1, Ordering::Relaxed);
                        shared.cancelled.lock().expect("cancel lock").push(op);
                        shared.finish(op, false);
                        continue;
                    }
                    let d = shared.inflight.fetch_add(1, Ordering::Relaxed) + 1;
                    shared.max_inflight.fetch_max(d, Ordering::Relaxed);
                    shared.metrics.inflight_ops.add(1);
                    // Re-enter the planning request's trace on this worker
                    // thread, with a SchedOp node so device I/O inside the
                    // callback hangs under this specific DAG node.
                    let parent = shared.graph.trace[op];
                    let _trace_guard = if parent != 0 {
                        let node = telemetry::alloc_trace_id();
                        telemetry::trace_event(
                            telemetry::EventKind::SchedOp,
                            node,
                            parent,
                            op as u64,
                            shared.graph.device[op].map_or(u64::MAX, |d| d as u64),
                        );
                        Some(telemetry::enter_trace(node))
                    } else {
                        None
                    };
                    let began = Instant::now();
                    let status = f(w, op, shared.graph.payload(op));
                    drop(_trace_guard);
                    busy.fetch_add(
                        began.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                        Ordering::Relaxed,
                    );
                    shared.metrics.inflight_ops.add(-1);
                    shared.inflight.fetch_sub(1, Ordering::Relaxed);
                    shared.executed.fetch_add(1, Ordering::Relaxed);
                    shared.finish(op, status == OpStatus::Done);
                }
            });
        }
    });
    debug_assert_eq!(shared.depth.load(Ordering::Relaxed), 0, "queues drained");
    let cancelled = std::mem::take(&mut *shared.cancelled.lock().expect("cancel lock"));
    ExecReport {
        stats: SchedStats {
            executed: shared.executed.load(Ordering::Relaxed),
            cancelled: shared.cancelled_count.load(Ordering::Relaxed),
            steals: shared.steals.load(Ordering::Relaxed),
            max_ready_depth: shared.max_depth.load(Ordering::Relaxed).max(0) as u64,
            max_inflight: shared.max_inflight.load(Ordering::Relaxed).max(0) as u64,
        },
        worker_busy: busy
            .iter()
            .map(|b| Duration::from_nanos(b.load(Ordering::Relaxed)))
            .collect(),
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32 as Count;

    fn statuses(n: usize) -> Vec<AtomicBool> {
        (0..n).map(|_| AtomicBool::new(false)).collect()
    }

    #[test]
    fn empty_graph_is_a_no_op() {
        let g: OpGraph<()> = OpGraph::new();
        let r = run(4, 2, &SchedMetrics::default(), &g, |_, _, _| OpStatus::Done);
        assert_eq!(r.stats, SchedStats::default());
        assert!(r.cancelled.is_empty());
    }

    #[test]
    fn chain_respects_dependency_order() {
        let mut g = OpGraph::new();
        let n = 64;
        for i in 0..n {
            g.add_node(i, Some(i % 3));
            if i > 0 {
                g.add_edge(i - 1, i);
            }
        }
        let done = statuses(n);
        let r = run(8, 3, &SchedMetrics::default(), &g, |_, op, _| {
            if op > 0 {
                assert!(done[op - 1].load(Ordering::Acquire), "dep ran first");
            }
            done[op].store(true, Ordering::Release);
            OpStatus::Done
        });
        assert_eq!(r.stats.executed, n as u64);
        assert_eq!(r.stats.cancelled, 0);
        // A strict chain can never have two ops in flight.
        assert_eq!(r.stats.max_inflight, 1);
    }

    #[test]
    fn failure_cancels_transitive_dependents_only() {
        // a -> b -> c, plus independent d. a fails: b and c cancelled.
        let mut g = OpGraph::new();
        let a = g.add_node("a", None);
        let b = g.add_node("b", None);
        let c = g.add_node("c", None);
        let d = g.add_node("d", None);
        g.add_edge(a, b);
        g.add_edge(b, c);
        let ran = statuses(4);
        let r = run(4, 0, &SchedMetrics::default(), &g, |_, op, _| {
            ran[op].store(true, Ordering::Release);
            if op == a {
                OpStatus::Failed
            } else {
                OpStatus::Done
            }
        });
        assert_eq!(r.stats.executed, 2, "a and d ran");
        assert_eq!(r.stats.cancelled, 2);
        let mut cancelled = r.cancelled.clone();
        cancelled.sort_unstable();
        assert_eq!(cancelled, vec![b, c]);
        assert!(ran[d].load(Ordering::Acquire));
        assert!(!ran[b].load(Ordering::Acquire) && !ran[c].load(Ordering::Acquire));
    }

    #[test]
    fn metrics_tick_live_and_export_cleanly() {
        telemetry::set_enabled(true);
        let m = SchedMetrics::default();
        let reg = Registry::new();
        m.export(&reg);
        let mut g = OpGraph::new();
        for i in 0..40 {
            g.add_node(i, Some(i % 4));
        }
        let r = run(4, 4, &m, &g, |_, _, _| OpStatus::Done);
        assert_eq!(r.stats.executed, 40);
        assert!(r.stats.max_ready_depth > 0);
        // Idle again after the run.
        assert_eq!(m.ready_queue_depth.get(), 0);
        assert_eq!(m.inflight_ops.get(), 0);
        let text = reg.prometheus();
        for name in [
            "oi_sched_ready_queue_depth",
            "oi_sched_steals_total",
            "oi_sched_inflight_ops",
        ] {
            assert!(text.contains(name), "{name} exported");
        }
        telemetry::lint_prometheus(&text).expect("clean exposition");
    }

    /// The single-fire invariant under heavy contention: a layered random
    /// DAG, an oversubscribed pool, and a counter per op. If an indegree
    /// decrement ever double-fired, some op would execute twice (or a
    /// queue would see a duplicate push) and a count would exceed 1.
    #[test]
    fn stress_indegree_decrement_never_double_fires() {
        let iters: usize = if std::env::var("OI_SCHED_STRESS").is_ok() {
            200
        } else {
            40
        };
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for iter in 0..iters {
            let layers = 4 + (next() % 4) as usize;
            let width = 8 + (next() % 24) as usize;
            let mut g = OpGraph::new();
            let mut prev: Vec<OpId> = Vec::new();
            for l in 0..layers {
                let mut cur = Vec::new();
                for i in 0..width {
                    let dev = (l * width + i) % 7;
                    let op = g.add_node((l, i), Some(dev));
                    // Each op depends on 0..=3 random ops of the previous
                    // layer (duplicates allowed: parallel edges must stay
                    // balanced too).
                    if !prev.is_empty() {
                        for _ in 0..(next() % 4) {
                            g.add_edge(prev[(next() as usize) % prev.len()], op);
                        }
                    }
                    cur.push(op);
                }
                prev = cur;
            }
            let fired: Vec<Count> = (0..g.len()).map(|_| Count::new(0)).collect();
            let done = statuses(g.len());
            let deps: Vec<Vec<OpId>> = {
                let mut deps = vec![Vec::new(); g.len()];
                for (op, outs) in g.dependents.iter().enumerate() {
                    for &d in outs {
                        deps[d].push(op);
                    }
                }
                deps
            };
            let r = run(32, 7, &SchedMetrics::default(), &g, |_, op, _| {
                for &d in &deps[op] {
                    assert!(done[d].load(Ordering::Acquire), "iter {iter}: dep order");
                }
                done[op].store(true, Ordering::Release);
                fired[op].fetch_add(1, Ordering::AcqRel);
                OpStatus::Done
            });
            assert_eq!(r.stats.executed, g.len() as u64, "iter {iter}");
            assert_eq!(r.stats.cancelled, 0, "iter {iter}");
            for (op, c) in fired.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::Acquire),
                    1,
                    "iter {iter}: op {op} fired more than once"
                );
            }
        }
    }

    /// Same stress shape but with random failures: executed + cancelled
    /// must account for every op exactly once, and no cancelled op may
    /// have run.
    #[test]
    fn stress_failures_partition_the_graph() {
        let mut seed = 0xA24BAED4963EE407u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for iter in 0..30 {
            let mut g = OpGraph::new();
            let mut prev: Vec<OpId> = Vec::new();
            for l in 0..5 {
                let mut cur = Vec::new();
                for i in 0..16 {
                    let op = g.add_node((l, i), Some(i % 5));
                    if !prev.is_empty() {
                        for _ in 0..(1 + next() % 2) {
                            g.add_edge(prev[(next() as usize) % prev.len()], op);
                        }
                    }
                    cur.push(op);
                }
                prev = cur;
            }
            let fail_mask: Vec<bool> = (0..g.len()).map(|_| next() % 8 == 0).collect();
            let fired: Vec<Count> = (0..g.len()).map(|_| Count::new(0)).collect();
            let r = run(16, 5, &SchedMetrics::default(), &g, |_, op, _| {
                fired[op].fetch_add(1, Ordering::AcqRel);
                if fail_mask[op] {
                    OpStatus::Failed
                } else {
                    OpStatus::Done
                }
            });
            assert_eq!(
                r.stats.executed + r.stats.cancelled,
                g.len() as u64,
                "iter {iter}: every op finalized exactly once"
            );
            for &op in &r.cancelled {
                assert_eq!(fired[op].load(Ordering::Acquire), 0, "iter {iter}");
            }
        }
    }
}
