//! Prime fields GF(p).

use crate::field::Field;

/// Deterministic primality test by trial division — fine for the design-table
/// sized inputs this crate deals with.
///
/// ```
/// assert!(gf::is_prime(7));
/// assert!(!gf::is_prime(1));
/// assert!(!gf::is_prime(91));
/// ```
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The prime field GF(p): integers modulo a prime `p`.
///
/// Used by the `bibd` crate for difference-family constructions (which need
/// primitive roots mod p) and as the base field of [`crate::ExtField`].
///
/// # Example
///
/// ```
/// use gf::{Field, PrimeField};
///
/// let f = PrimeField::new(13).unwrap();
/// assert_eq!(f.sub(3, 7), 9);
/// assert_eq!(f.div(1, 5), f.inv(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimeField {
    p: usize,
}

impl PrimeField {
    /// Creates GF(p). Returns `None` if `p` is not prime.
    pub fn new(p: usize) -> Option<Self> {
        if is_prime(p) {
            Some(Self { p })
        } else {
            None
        }
    }

    /// The prime modulus.
    pub fn modulus(&self) -> usize {
        self.p
    }
}

impl Field for PrimeField {
    fn order(&self) -> usize {
        self.p
    }

    fn add(&self, a: usize, b: usize) -> usize {
        assert!(a < self.p && b < self.p);
        let s = a + b;
        if s >= self.p {
            s - self.p
        } else {
            s
        }
    }

    fn neg(&self, a: usize) -> usize {
        assert!(a < self.p);
        if a == 0 {
            0
        } else {
            self.p - a
        }
    }

    fn mul(&self, a: usize, b: usize) -> usize {
        assert!(a < self.p && b < self.p);
        // usize is 64-bit on all supported targets; p stays far below 2^32
        // in practice, but use u128 to be safe for large primes.
        ((a as u128 * b as u128) % self.p as u128) as usize
    }

    fn inv(&self, a: usize) -> Option<usize> {
        assert!(a < self.p);
        if a == 0 {
            return None;
        }
        // Fermat: a^(p-2) mod p.
        Some(self.pow(a, (self.p - 2) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::check_axioms_exhaustive;

    #[test]
    fn rejects_composites() {
        for n in [0, 1, 4, 6, 9, 15, 21] {
            assert!(PrimeField::new(n).is_none(), "n={n}");
        }
    }

    #[test]
    fn small_prime_fields_satisfy_axioms() {
        for p in [2, 3, 5, 7, 11, 13] {
            check_axioms_exhaustive(&PrimeField::new(p).unwrap());
        }
    }

    #[test]
    fn inverse_via_fermat() {
        let f = PrimeField::new(101).unwrap();
        for a in 1..101 {
            assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
        }
    }

    #[test]
    fn primitive_element_generates_group() {
        for p in [3usize, 5, 7, 11, 13, 17, 19, 23] {
            let f = PrimeField::new(p).unwrap();
            let g = f.primitive_element();
            let mut seen = vec![false; p];
            let mut x = 1;
            for _ in 0..p - 1 {
                assert!(!seen[x], "p={p}, g={g}: repeated {x}");
                seen[x] = true;
                x = f.mul(x, g);
            }
            assert_eq!(x, 1, "g^(p-1) must be 1");
        }
    }

    #[test]
    fn characteristic_equals_p() {
        for p in [2, 3, 5, 7, 11] {
            assert_eq!(PrimeField::new(p).unwrap().characteristic(), p);
        }
    }
}
