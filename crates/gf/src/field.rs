//! The [`Field`] trait: a uniform, object-safe interface over all finite
//! fields in this crate.

use std::fmt::Debug;

/// A finite field whose elements are represented as `usize` indices in
/// `0..order()`.
///
/// `0` is always the additive identity and `1` the multiplicative identity.
/// Implementations must satisfy the field axioms; the test suites of the
/// concrete fields check them exhaustively for small orders and by property
/// testing for larger ones.
///
/// The trait is object-safe so that code like the design constructions in
/// `bibd` can hold a `&dyn Field`.
///
/// # Example
///
/// ```
/// use gf::{Field, PrimeField};
///
/// let f = PrimeField::new(7).unwrap();
/// assert_eq!(f.add(5, 4), 2);
/// assert_eq!(f.mul(3, 5), 1);
/// assert_eq!(f.inv(3), Some(5));
/// ```
pub trait Field: Debug {
    /// Number of elements in the field.
    fn order(&self) -> usize;

    /// Field addition.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is `>= order()`.
    fn add(&self, a: usize, b: usize) -> usize;

    /// Additive inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a >= order()`.
    fn neg(&self, a: usize) -> usize;

    /// Field multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is `>= order()`.
    fn mul(&self, a: usize, b: usize) -> usize;

    /// Multiplicative inverse; `None` for the zero element.
    ///
    /// # Panics
    ///
    /// Panics if `a >= order()`.
    fn inv(&self, a: usize) -> Option<usize>;

    /// Field subtraction, derived from [`Field::add`] and [`Field::neg`].
    fn sub(&self, a: usize, b: usize) -> usize {
        self.add(a, self.neg(b))
    }

    /// Field division; `None` when dividing by zero.
    fn div(&self, a: usize, b: usize) -> Option<usize> {
        self.inv(b).map(|bi| self.mul(a, bi))
    }

    /// Exponentiation by squaring. `pow(0, 0) == 1` by convention.
    fn pow(&self, a: usize, mut e: u64) -> usize {
        let mut base = a;
        let mut acc = 1;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// The characteristic of the field (smallest `c > 0` with `c * 1 == 0`).
    fn characteristic(&self) -> usize {
        let mut acc = 1usize; // 1, then 1+1, ...
        let mut c = 1usize;
        while acc != 0 {
            acc = self.add(acc, 1);
            c += 1;
            debug_assert!(c <= self.order());
        }
        c
    }

    /// Returns a generator (primitive element) of the multiplicative group,
    /// found by brute force. Intended for small fields / test support.
    fn primitive_element(&self) -> usize {
        let n = (self.order() - 1) as u64;
        'cand: for g in 2..self.order() {
            // g is primitive iff its order is exactly n: check g^(n/p) != 1
            // for every prime divisor p of n.
            let mut m = n;
            let mut d = 2;
            while d * d <= m {
                if m.is_multiple_of(d) {
                    if self.pow(g, n / d) == 1 {
                        continue 'cand;
                    }
                    while m.is_multiple_of(d) {
                        m /= d;
                    }
                }
                d += 1;
            }
            if m > 1 && self.pow(g, n / m) == 1 {
                continue 'cand;
            }
            return g;
        }
        // Order 2: the only unit is 1.
        1
    }
}

/// Checks the field axioms exhaustively. Test helper shared by the concrete
/// field implementations; cubic in the field order, so only call it for
/// small fields.
#[cfg(test)]
pub(crate) fn check_axioms_exhaustive(f: &dyn Field) {
    let n = f.order();
    for a in 0..n {
        assert_eq!(f.add(a, 0), a, "additive identity");
        assert_eq!(f.mul(a, 1), a, "multiplicative identity");
        assert_eq!(f.add(a, f.neg(a)), 0, "additive inverse");
        assert_eq!(f.mul(a, 0), 0, "multiplication by zero");
        if a != 0 {
            let ai = f.inv(a).expect("nonzero element has inverse");
            assert_eq!(f.mul(a, ai), 1, "multiplicative inverse");
        } else {
            assert_eq!(f.inv(a), None, "zero has no inverse");
        }
        for b in 0..n {
            assert_eq!(f.add(a, b), f.add(b, a), "commutative +");
            assert_eq!(f.mul(a, b), f.mul(b, a), "commutative *");
            for c in 0..n {
                assert_eq!(
                    f.add(f.add(a, b), c),
                    f.add(a, f.add(b, c)),
                    "associative +"
                );
                assert_eq!(
                    f.mul(f.mul(a, b), c),
                    f.mul(a, f.mul(b, c)),
                    "associative *"
                );
                assert_eq!(
                    f.mul(a, f.add(b, c)),
                    f.add(f.mul(a, b), f.mul(a, c)),
                    "distributivity"
                );
            }
        }
    }
}
