//! Branch-free byte-slice kernels for the erasure-coding hot paths.
//!
//! Every byte an OI-RAID rebuild moves goes through one of two inner loops:
//! a pure-XOR accumulate (RAID5 parity, EVENODD/RDP symbol XORs, the outer
//! declustered stripes) or a GF(2^8) multiply-accumulate (Reed–Solomon,
//! RAID6 Q, LRC globals). This module provides both as standalone kernels
//! with three implementations each, selected once at runtime:
//!
//! * **Scalar** — the retained reference implementations ([`scalar`]): the
//!   log/exp-table multiply with its data-dependent `if s != 0` branch and a
//!   strict byte-at-a-time XOR. Kept as the equivalence-test oracle and the
//!   benchmark baseline; never picked by auto-detection.
//! * **Wide** — portable wide-word code: XOR in `u128` lanes via
//!   `chunks_exact` with a scalar tail, and the split-nibble-table multiply
//!   (two 16-entry tables per coefficient — `c·s = lo[s & 15] ^ hi[s >> 4]`,
//!   the ISA-L trick), which handles zero bytes with no branch at all.
//! * **Simd** — `x86_64` only: the same nibble tables live in vector
//!   registers and 16/32 bytes are multiplied per `pshufb`/`vpshufb` pair
//!   (SSSE3/AVX2, detected at runtime). Falls back to **Wide** on other
//!   architectures or older CPUs.
//!
//! The per-coefficient tables are a [`MulTable`]; [`crate::Gf256`] caches
//! all 256 of them at construction, so slice multiplies never touch the
//! log/exp tables. Dispatch is a single relaxed atomic load per slice call
//! and can be pinned with [`force_path`] (or the `OI_RAID_KERNEL`
//! environment variable: `scalar`, `wide`, or `simd`) for benchmarks and
//! differential tests.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel implementation services the slice calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Byte-at-a-time reference implementations (log/exp multiply).
    Scalar,
    /// Portable wide-word XOR + split-nibble-table multiply.
    Wide,
    /// Vectorized nibble-table multiply (SSSE3/AVX2 on `x86_64`).
    Simd,
}

impl KernelPath {
    /// Stable lowercase name (matches the `OI_RAID_KERNEL` values).
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Wide => "wide",
            Self::Simd => "simd",
        }
    }
}

/// 0 = no override, else KernelPath discriminant + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);
static DETECTED: OnceLock<KernelPath> = OnceLock::new();

/// Whether the vectorized path is usable on this machine.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("ssse3")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn detect() -> KernelPath {
    if let Ok(v) = std::env::var("OI_RAID_KERNEL") {
        match v.as_str() {
            "scalar" => return KernelPath::Scalar,
            "wide" => return KernelPath::Wide,
            "simd" if simd_available() => return KernelPath::Simd,
            _ => {}
        }
    }
    if simd_available() {
        KernelPath::Simd
    } else {
        KernelPath::Wide
    }
}

/// The path slice kernels currently dispatch to.
pub fn active_path() -> KernelPath {
    match FORCED.load(Ordering::Relaxed) {
        1 => KernelPath::Scalar,
        2 => KernelPath::Wide,
        3 if simd_available() => KernelPath::Simd,
        3 => KernelPath::Wide,
        _ => *DETECTED.get_or_init(detect),
    }
}

/// Pins dispatch to `path` (`None` restores auto-detection). Forcing
/// [`KernelPath::Simd`] on a machine without SIMD support degrades to the
/// wide path. Intended for benchmarks and differential tests; affects the
/// whole process.
pub fn force_path(path: Option<KernelPath>) {
    let v = match path {
        None => 0,
        Some(KernelPath::Scalar) => 1,
        Some(KernelPath::Wide) => 2,
        Some(KernelPath::Simd) => 3,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// Carry-less "Russian peasant" multiply in GF(2^8) mod 0x11d. Table-free,
/// so table construction cannot recurse into the shared field instance.
const fn gf_mul(a: u8, b: u8) -> u8 {
    let mut a = a as u16;
    let mut b = b as u16;
    let mut p = 0u16;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= 0x11d;
        }
        b >>= 1;
    }
    p as u8
}

/// Retained scalar reference implementations.
///
/// These are the pre-kernel inner loops, kept verbatim in shape: the
/// equivalence proptests assert every optimized path is bit-identical to
/// them, and the criterion benches use them as the baseline. The XOR loop
/// routes every byte through [`std::hint::black_box`] so the *baseline*
/// stays genuinely byte-at-a-time under `-O` (the optimized kernels are
/// what is allowed to go wide).
pub mod scalar {
    use super::gf_mul;

    /// `dst[i] ^= src[i]`, one byte at a time.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_acc(dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len());
        for (d, s) in dst.iter_mut().zip(src) {
            *d = std::hint::black_box(*d ^ *s);
        }
    }

    /// `out[i] = c * src[i]` via log/exp lookups with the historical
    /// `if s == 0` branch.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn mul_slice(c: u8, src: &[u8], out: &mut [u8]) {
        assert_eq!(src.len(), out.len());
        let (log, exp) = log_exp();
        match c {
            0 => out.fill(0),
            1 => out.copy_from_slice(src),
            _ => {
                let lc = log[c as usize] as usize;
                for (s, o) in src.iter().zip(out.iter_mut()) {
                    *o = if *s == 0 {
                        0
                    } else {
                        exp[lc + log[*s as usize] as usize] as u8
                    };
                }
            }
        }
    }

    /// `out[i] ^= c * src[i]` via log/exp lookups with the historical
    /// `if s != 0` branch.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn mul_acc_slice(c: u8, src: &[u8], out: &mut [u8]) {
        assert_eq!(src.len(), out.len());
        let (log, exp) = log_exp();
        match c {
            0 => {}
            1 => {
                for (s, o) in src.iter().zip(out.iter_mut()) {
                    *o = std::hint::black_box(*o ^ *s);
                }
            }
            _ => {
                let lc = log[c as usize] as usize;
                for (s, o) in src.iter().zip(out.iter_mut()) {
                    if *s != 0 {
                        *o ^= exp[lc + log[*s as usize] as usize] as u8;
                    }
                }
            }
        }
    }

    /// Process-wide log/exp tables (same construction as [`crate::Gf2`],
    /// but private to the reference path so it stays self-contained).
    fn log_exp() -> (&'static [u16; 256], &'static [u16; 512]) {
        static TABLES: std::sync::OnceLock<([u16; 256], [u16; 512])> = std::sync::OnceLock::new();
        let (log, exp) = TABLES.get_or_init(|| {
            let mut log = [0u16; 256];
            let mut exp = [0u16; 512];
            let mut x = 1u8;
            for i in 0..255 {
                exp[i] = x as u16;
                exp[i + 255] = x as u16;
                log[x as usize] = i as u16;
                x = gf_mul(x, 2);
            }
            (log, exp)
        });
        (log, exp)
    }
}

/// `dst[i] ^= src[i]` — wide-word XOR accumulate.
///
/// Dispatches on [`active_path`]; the non-scalar implementation processes
/// `u128` lanes via `chunks_exact` with a scalar tail (on `x86_64` LLVM
/// lowers the lane loop to full-width vector XORs, so a separate
/// intrinsics path would buy nothing).
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn xor_acc(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len());
    if active_path() == KernelPath::Scalar {
        scalar::xor_acc(dst, src);
    } else {
        xor_acc_wide(dst, src);
    }
}

/// `dst[i] ^= a[i] ^ b[i]` — the single-pass read-modify-write parity
/// patch (`parity ^= old ^ new`).
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn xor_acc2(dst: &mut [u8], a: &[u8], b: &[u8]) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    if active_path() == KernelPath::Scalar {
        for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
            *d = std::hint::black_box(*d ^ *x ^ *y);
        }
        return;
    }
    const LANE: usize = 16;
    let mut d = dst.chunks_exact_mut(LANE);
    let mut sa = a.chunks_exact(LANE);
    let mut sb = b.chunks_exact(LANE);
    for ((dc, ac), bc) in (&mut d).zip(&mut sa).zip(&mut sb) {
        let x = u128::from_le_bytes((&*dc).try_into().expect("lane"))
            ^ u128::from_le_bytes(ac.try_into().expect("lane"))
            ^ u128::from_le_bytes(bc.try_into().expect("lane"));
        dc.copy_from_slice(&x.to_le_bytes());
    }
    for ((dr, ar), br) in d
        .into_remainder()
        .iter_mut()
        .zip(sa.remainder())
        .zip(sb.remainder())
    {
        *dr ^= *ar ^ *br;
    }
}

/// The portable wide-word XOR accumulate (always available; public so the
/// benches and equivalence tests can target it regardless of dispatch).
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn xor_acc_wide(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len());
    const LANE: usize = 16;
    let mut d = dst.chunks_exact_mut(LANE);
    let mut s = src.chunks_exact(LANE);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let x = u128::from_le_bytes((&*dc).try_into().expect("lane"))
            ^ u128::from_le_bytes(sc.try_into().expect("lane"));
        dc.copy_from_slice(&x.to_le_bytes());
    }
    for (dr, sr) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dr ^= *sr;
    }
}

/// Split-nibble multiplication tables for one GF(2^8) coefficient: because
/// multiplication distributes over XOR and `s = (s & 0x0f) ^ (s & 0xf0)`,
/// `c·s = lo[s & 0x0f] ^ hi[s >> 4]` with two 16-entry tables. Zero bytes
/// need no special case — `lo[0] ^ hi[0] == 0` — which is what makes the
/// loop branch-free, and 16-entry tables are exactly what `pshufb` indexes
/// in one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulTable {
    /// Products of the coefficient with 0x00..=0x0f.
    lo: [u8; 16],
    /// Products of the coefficient with 0x00, 0x10, ..., 0xf0.
    hi: [u8; 16],
}

impl MulTable {
    /// Builds the lo/hi tables for coefficient `c`.
    pub const fn new(c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        let mut i = 0;
        while i < 16 {
            lo[i] = gf_mul(c, i as u8);
            hi[i] = gf_mul(c, (i as u8) << 4);
            i += 1;
        }
        Self { lo, hi }
    }

    /// The coefficient's product with a single byte.
    #[inline]
    pub fn mul(&self, s: u8) -> u8 {
        self.lo[(s & 0x0f) as usize] ^ self.hi[(s >> 4) as usize]
    }

    /// `out[i] = c * src[i]`, dispatched on [`active_path`].
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn mul_slice(&self, src: &[u8], out: &mut [u8]) {
        assert_eq!(src.len(), out.len());
        match active_path() {
            KernelPath::Scalar => scalar::mul_slice(self.coefficient(), src, out),
            KernelPath::Wide => self.mul_slice_wide(src, out),
            KernelPath::Simd => {
                if !self.mul_slice_simd(src, out) {
                    self.mul_slice_wide(src, out);
                }
            }
        }
    }

    /// `out[i] ^= c * src[i]`, dispatched on [`active_path`].
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn mul_acc_slice(&self, src: &[u8], out: &mut [u8]) {
        assert_eq!(src.len(), out.len());
        match active_path() {
            KernelPath::Scalar => scalar::mul_acc_slice(self.coefficient(), src, out),
            KernelPath::Wide => self.mul_acc_slice_wide(src, out),
            KernelPath::Simd => {
                if !self.mul_acc_slice_simd(src, out) {
                    self.mul_acc_slice_wide(src, out);
                }
            }
        }
    }

    /// Recovers the coefficient (`c·1`).
    #[inline]
    pub fn coefficient(&self) -> u8 {
        self.lo[1]
    }

    /// Portable branch-free `out[i] = c * src[i]` via the nibble tables.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn mul_slice_wide(&self, src: &[u8], out: &mut [u8]) {
        assert_eq!(src.len(), out.len());
        for (s, o) in src.iter().zip(out.iter_mut()) {
            *o = self.lo[(s & 0x0f) as usize] ^ self.hi[(s >> 4) as usize];
        }
    }

    /// Portable branch-free `out[i] ^= c * src[i]` via the nibble tables.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn mul_acc_slice_wide(&self, src: &[u8], out: &mut [u8]) {
        assert_eq!(src.len(), out.len());
        for (s, o) in src.iter().zip(out.iter_mut()) {
            *o ^= self.lo[(s & 0x0f) as usize] ^ self.hi[(s >> 4) as usize];
        }
    }

    /// Vectorized `out[i] = c * src[i]`. Returns `false` (without touching
    /// `out`) when no SIMD path exists on this machine.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[cfg_attr(target_arch = "x86_64", allow(unsafe_code))]
    pub fn mul_slice_simd(&self, src: &[u8], out: &mut [u8]) -> bool {
        assert_eq!(src.len(), out.len());
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                unsafe { x86::mul_avx2::<false>(&self.lo, &self.hi, src, out) };
                return true;
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                // SAFETY: SSSE3 support was just verified at runtime.
                unsafe { x86::mul_ssse3::<false>(&self.lo, &self.hi, src, out) };
                return true;
            }
        }
        false
    }

    /// Vectorized `out[i] ^= c * src[i]`. Returns `false` (without touching
    /// `out`) when no SIMD path exists on this machine.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[cfg_attr(target_arch = "x86_64", allow(unsafe_code))]
    pub fn mul_acc_slice_simd(&self, src: &[u8], out: &mut [u8]) -> bool {
        assert_eq!(src.len(), out.len());
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                unsafe { x86::mul_avx2::<true>(&self.lo, &self.hi, src, out) };
                return true;
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                // SAFETY: SSSE3 support was just verified at runtime.
                unsafe { x86::mul_ssse3::<true>(&self.lo, &self.hi, src, out) };
                return true;
            }
        }
        false
    }
}

/// `pshufb`-based GF(2^8) multiply kernels. Each 16-byte (SSSE3) or
/// 32-byte (AVX2) block is split into nibbles and both table lookups happen
/// as one shuffle each — the ISA-L technique. Unaligned loads/stores
/// (`loadu`/`storeu`) make alignment a non-issue; the sub-register tail is
/// finished by the portable nibble loop.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use std::arch::x86_64::*;

    /// SSSE3 16-byte-lane multiply; `ACC` selects `^=` over `=`.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports SSSE3. `src` and `out` must be
    /// equal-length (checked by the safe wrappers).
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_ssse3<const ACC: bool>(
        lo: &[u8; 16],
        hi: &[u8; 16],
        src: &[u8],
        out: &mut [u8],
    ) {
        let lo_t = _mm_loadu_si128(lo.as_ptr().cast());
        let hi_t = _mm_loadu_si128(hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0f);
        let mut s = src.chunks_exact(16);
        let mut d = out.chunks_exact_mut(16);
        for (sc, dc) in (&mut s).zip(&mut d) {
            let v = _mm_loadu_si128(sc.as_ptr().cast());
            let lo_n = _mm_and_si128(v, mask);
            let hi_n = _mm_and_si128(_mm_srli_epi64::<4>(v), mask);
            let mut prod =
                _mm_xor_si128(_mm_shuffle_epi8(lo_t, lo_n), _mm_shuffle_epi8(hi_t, hi_n));
            if ACC {
                prod = _mm_xor_si128(prod, _mm_loadu_si128(dc.as_ptr().cast()));
            }
            _mm_storeu_si128(dc.as_mut_ptr().cast(), prod);
        }
        tail::<ACC>(lo, hi, s.remainder(), d.into_remainder());
    }

    /// AVX2 32-byte-lane multiply; `ACC` selects `^=` over `=`.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2. `src` and `out` must be
    /// equal-length (checked by the safe wrappers).
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_avx2<const ACC: bool>(
        lo: &[u8; 16],
        hi: &[u8; 16],
        src: &[u8],
        out: &mut [u8],
    ) {
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0f);
        let mut s = src.chunks_exact(32);
        let mut d = out.chunks_exact_mut(32);
        for (sc, dc) in (&mut s).zip(&mut d) {
            let v = _mm256_loadu_si256(sc.as_ptr().cast());
            let lo_n = _mm256_and_si256(v, mask);
            let hi_n = _mm256_and_si256(_mm256_srli_epi64::<4>(v), mask);
            let mut prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_t, lo_n),
                _mm256_shuffle_epi8(hi_t, hi_n),
            );
            if ACC {
                prod = _mm256_xor_si256(prod, _mm256_loadu_si256(dc.as_ptr().cast()));
            }
            _mm256_storeu_si256(dc.as_mut_ptr().cast(), prod);
        }
        tail::<ACC>(lo, hi, s.remainder(), d.into_remainder());
    }

    /// Portable nibble-table finish for the sub-lane remainder.
    fn tail<const ACC: bool>(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], out: &mut [u8]) {
        for (s, o) in src.iter().zip(out.iter_mut()) {
            let p = lo[(s & 0x0f) as usize] ^ hi[(s >> 4) as usize];
            if ACC {
                *o ^= p;
            } else {
                *o = p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect()
    }

    #[test]
    fn peasant_mul_matches_field() {
        let f = crate::Gf256::get();
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 3, 0x1d, 0x80, 0xff] {
                assert_eq!(gf_mul(a, b), f.mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn nibble_table_mul_matches_field() {
        let f = crate::Gf256::get();
        for c in 0..=255u8 {
            let t = MulTable::new(c);
            assert_eq!(t.coefficient(), c);
            for s in 0..=255u8 {
                assert_eq!(t.mul(s), f.mul(c, s), "c={c} s={s}");
            }
        }
    }

    #[test]
    fn xor_paths_agree_including_tails() {
        for len in [0usize, 1, 7, 15, 16, 17, 63, 64, 65, 257] {
            let src = sample(len, 0xA5);
            let mut a = sample(len, 0x5A);
            let mut b = a.clone();
            scalar::xor_acc(&mut a, &src);
            xor_acc_wide(&mut b, &src);
            assert_eq!(a, b, "len={len}");
        }
    }

    #[test]
    fn xor_acc2_is_two_xor_accs() {
        let x = sample(100, 1);
        let y = sample(100, 2);
        let mut a = sample(100, 3);
        let mut b = a.clone();
        xor_acc2(&mut a, &x, &y);
        xor_acc_wide(&mut b, &x);
        xor_acc_wide(&mut b, &y);
        assert_eq!(a, b);
    }

    #[test]
    fn forced_paths_round_trip() {
        assert!(matches!(active_path(), KernelPath::Wide | KernelPath::Simd));
        force_path(Some(KernelPath::Scalar));
        assert_eq!(active_path(), KernelPath::Scalar);
        force_path(None);
        assert_ne!(active_path(), KernelPath::Scalar);
        assert_eq!(KernelPath::Simd.name(), "simd");
    }
}
