//! Dense matrices over a [`Field`], with the operations MDS code
//! construction needs: multiplication, Gauss–Jordan inversion, rank, and
//! Vandermonde generation.

use crate::field::Field;

/// A dense row-major matrix whose entries are elements of some field (the
/// field is passed to each operation, matching [`crate::Poly`]'s style).
///
/// # Example
///
/// ```
/// use gf::{Field, Gf2, Matrix};
///
/// let f = Gf2::new(8);
/// let m = Matrix::vandermonde(3, 3, &f);
/// let inv = m.invert(&f).expect("Vandermonde with distinct points is invertible");
/// assert!(m.mul(&inv, &f).is_identity());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<usize>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<usize>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self { rows, cols, data }
    }

    /// A `rows x cols` Vandermonde matrix with evaluation points
    /// `0, 1, ..., rows-1` interpreted as field elements: entry `(i, j)` is
    /// `i^j` (with `0^0 = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `rows` exceeds the field order (points must be distinct).
    pub fn vandermonde(rows: usize, cols: usize, f: &dyn Field) -> Self {
        assert!(
            rows <= f.order(),
            "need {rows} distinct points in a field of order {}",
            f.order()
        );
        let mut m = Self::zero(rows, cols);
        for i in 0..rows {
            let mut acc = 1;
            for j in 0..cols {
                m.set(i, j, acc);
                acc = f.mul(acc, i);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: usize) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Returns a copy with row `r` removed.
    pub fn without_row(&self, r: usize) -> Self {
        assert!(r < self.rows);
        let mut data = Vec::with_capacity((self.rows - 1) * self.cols);
        for i in 0..self.rows {
            if i != r {
                data.extend_from_slice(&self.data[i * self.cols..(i + 1) * self.cols]);
            }
        }
        Self {
            rows: self.rows - 1,
            cols: self.cols,
            data,
        }
    }

    /// Returns the submatrix keeping only `rows` (in the given order).
    pub fn select_rows(&self, rows: &[usize]) -> Self {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            assert!(r < self.rows);
            data.extend_from_slice(&self.data[r * self.cols..(r + 1) * self.cols]);
        }
        Self {
            rows: rows.len(),
            cols: self.cols,
            data,
        }
    }

    /// Matrix product over `f`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not agree.
    pub fn mul(&self, rhs: &Matrix, f: &dyn Field) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = f.add(out.get(i, j), f.mul(a, rhs.get(k, j)));
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Matrix–vector product over `f`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[usize], f: &dyn Field) -> Vec<usize> {
        assert_eq!(v.len(), self.cols);
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let mut acc = 0;
            for (j, &vj) in v.iter().enumerate() {
                acc = f.add(acc, f.mul(self.get(i, j), vj));
            }
            out.push(acc);
        }
        out
    }

    /// Inverts a square matrix by Gauss–Jordan elimination. Returns `None`
    /// if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn invert(&self, f: &dyn Field) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let pinv = f.inv(a.get(col, col)).expect("pivot is nonzero");
            a.scale_row(col, pinv, f);
            inv.scale_row(col, pinv, f);
            for r in 0..n {
                if r != col {
                    let factor = a.get(r, col);
                    if factor != 0 {
                        a.axpy_row(r, col, factor, f);
                        inv.axpy_row(r, col, factor, f);
                    }
                }
            }
        }
        Some(inv)
    }

    /// Rank over `f`, by Gaussian elimination on a copy.
    pub fn rank(&self, f: &dyn Field) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        for col in 0..self.cols {
            if rank == self.rows {
                break;
            }
            let Some(pivot) = (rank..self.rows).find(|&r| a.get(r, col) != 0) else {
                continue;
            };
            a.swap_rows(pivot, rank);
            let pinv = f.inv(a.get(rank, col)).expect("pivot nonzero");
            a.scale_row(rank, pinv, f);
            for r in 0..self.rows {
                if r != rank {
                    let factor = a.get(r, col);
                    if factor != 0 {
                        a.axpy_row(r, rank, factor, f);
                    }
                }
            }
            rank += 1;
        }
        rank
    }

    /// Whether the matrix is the identity.
    pub fn is_identity(&self) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|i| (0..self.cols).all(|j| self.get(i, j) == usize::from(i == j)))
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    fn scale_row(&mut self, r: usize, c: usize, f: &dyn Field) {
        for j in 0..self.cols {
            let v = f.mul(self.get(r, j), c);
            self.set(r, j, v);
        }
    }

    /// `row[dst] -= factor * row[src]`.
    fn axpy_row(&mut self, dst: usize, src: usize, factor: usize, f: &dyn Field) {
        for j in 0..self.cols {
            let v = f.sub(self.get(dst, j), f.mul(factor, self.get(src, j)));
            self.set(dst, j, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf2::Gf2;
    use crate::prime::PrimeField;
    use proptest::prelude::*;

    #[test]
    fn identity_is_identity() {
        assert!(Matrix::identity(4).is_identity());
        assert!(!Matrix::zero(3, 3).is_identity());
    }

    #[test]
    fn invert_roundtrip_gf256() {
        let f = Gf2::new(8);
        let m = Matrix::from_rows(3, 3, vec![1, 2, 3, 4, 5, 6, 7, 8, 10]);
        let inv = m.invert(&f).expect("invertible");
        assert!(m.mul(&inv, &f).is_identity());
        assert!(inv.mul(&m, &f).is_identity());
    }

    #[test]
    fn singular_matrix_rejected() {
        let f = PrimeField::new(5).unwrap();
        // Rows 0 and 1 identical.
        let m = Matrix::from_rows(2, 2, vec![1, 2, 1, 2]);
        assert!(m.invert(&f).is_none());
        assert_eq!(m.rank(&f), 1);
    }

    #[test]
    fn vandermonde_square_submatrices_invertible() {
        // The MDS property RS relies on: any k rows of a (k+m) x k
        // Vandermonde with distinct points form an invertible matrix.
        let f = Gf2::new(8);
        let k = 4;
        let v = Matrix::vandermonde(k + 3, k, &f);
        // Check a sample of row subsets.
        let subsets: [&[usize]; 5] = [
            &[0, 1, 2, 3],
            &[3, 4, 5, 6],
            &[0, 2, 4, 6],
            &[1, 3, 5, 6],
            &[0, 1, 5, 6],
        ];
        for rows in subsets {
            let sub = v.select_rows(rows);
            assert!(sub.invert(&f).is_some(), "rows {rows:?} must be invertible");
        }
    }

    #[test]
    fn mul_vec_matches_mul() {
        let f = PrimeField::new(7).unwrap();
        let m = Matrix::from_rows(2, 3, vec![1, 2, 3, 4, 5, 6]);
        let v = vec![1, 0, 2];
        let mv = m.mul_vec(&v, &f);
        assert_eq!(mv, vec![(1 + 6) % 7, (4 + 12) % 7]);
    }

    #[test]
    fn without_row_and_select_rows() {
        let m = Matrix::from_rows(3, 2, vec![0, 1, 2, 3, 4, 5]);
        let w = m.without_row(1);
        assert_eq!(w.rows(), 2);
        assert_eq!(w.get(1, 0), 4);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.get(0, 1), 5);
        assert_eq!(s.get(1, 1), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_matrix_inverse_roundtrips(
            n in 1usize..6,
            seed in any::<u64>(),
        ) {
            let f = Gf2::new(8);
            let mut s = seed | 1;
            let data: Vec<usize> = (0..n * n)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) % 256) as usize
                })
                .collect();
            let m = Matrix::from_rows(n, n, data);
            match m.invert(&f) {
                Some(inv) => {
                    prop_assert!(m.mul(&inv, &f).is_identity());
                    prop_assert!(inv.mul(&m, &f).is_identity());
                    prop_assert_eq!(m.rank(&f), n);
                }
                None => prop_assert!(m.rank(&f) < n),
            }
        }
    }

    #[test]
    fn rank_full_for_vandermonde() {
        let f = Gf2::new(8);
        let v = Matrix::vandermonde(6, 4, &f);
        assert_eq!(v.rank(&f), 4);
    }
}
