//! Extension fields GF(p^m) built as GF(p)[x] modulo an irreducible
//! polynomial. These are what make projective/affine planes of prime-power
//! order (4, 8, 9, ...) constructible in the `bibd` crate.

use crate::field::Field;
use crate::poly::Poly;
use crate::prime::PrimeField;

/// The extension field GF(p^m).
///
/// Elements are encoded as base-`p` digit strings packed into a `usize`:
/// element `e` represents the polynomial `sum_i digit_i(e) * x^i` where
/// `digit_i(e) = (e / p^i) % p`. Under this encoding `0` and `1` are the
/// additive and multiplicative identities, as the [`Field`] trait requires.
///
/// Multiplication tables are precomputed at construction (`O(q^2)` space), so
/// keep `q = p^m` modest — design constructions use `q <= 128` or so.
///
/// # Example
///
/// ```
/// use gf::{ExtField, Field};
///
/// let f = ExtField::new(3, 2).unwrap(); // GF(9)
/// assert_eq!(f.order(), 9);
/// let a = 5; // digits (2, 1): 2 + x
/// assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ExtField {
    p: usize,
    m: usize,
    order: usize,
    modulus: Poly,
    mul_table: Vec<usize>,
    inv_table: Vec<Option<usize>>,
}

impl ExtField {
    /// Creates GF(p^m), searching for an irreducible modulus automatically.
    /// Returns `None` if `p` is not prime or `m == 0`.
    pub fn new(p: usize, m: usize) -> Option<Self> {
        let base = PrimeField::new(p)?;
        if m == 0 {
            return None;
        }
        let modulus = Poly::find_irreducible(m, &base);
        Some(Self::with_modulus(base, m, modulus))
    }

    /// Creates GF(q) for a prime power `q`, returning `None` otherwise.
    ///
    /// ```
    /// use gf::{ExtField, Field};
    /// assert_eq!(ExtField::of_order(8).unwrap().order(), 8);
    /// assert!(ExtField::of_order(6).is_none());
    /// ```
    pub fn of_order(q: usize) -> Option<Self> {
        let (p, m) = crate::prime_power(q)?;
        Self::new(p, m)
    }

    fn with_modulus(base: PrimeField, m: usize, modulus: Poly) -> Self {
        let p = base.modulus();
        let order = p.pow(m as u32);
        let mut mul_table = vec![0usize; order * order];
        for a in 0..order {
            let pa = Self::decode(a, p, m);
            for b in a..order {
                let pb = Self::decode(b, p, m);
                let prod = pa.mul(&pb, &base).rem(&modulus, &base);
                let enc = Self::encode(&prod, p);
                mul_table[a * order + b] = enc;
                mul_table[b * order + a] = enc;
            }
        }
        let mut inv_table = vec![None; order];
        for a in 1..order {
            // The group is finite: scan for the inverse (tables make this
            // O(q^2) total, done once).
            for b in 1..order {
                if mul_table[a * order + b] == 1 {
                    inv_table[a] = Some(b);
                    break;
                }
            }
            debug_assert!(inv_table[a].is_some(), "nonzero element lacks inverse");
        }
        Self {
            p,
            m,
            order,
            modulus,
            mul_table,
            inv_table,
        }
    }

    fn decode(e: usize, p: usize, m: usize) -> Poly {
        let mut coeffs = vec![0usize; m];
        let mut rest = e;
        for c in coeffs.iter_mut() {
            *c = rest % p;
            rest /= p;
        }
        Poly::new(coeffs)
    }

    fn encode(poly: &Poly, p: usize) -> usize {
        let mut acc = 0;
        for &c in poly.coeffs().iter().rev() {
            acc = acc * p + c;
        }
        acc
    }

    /// The characteristic `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The extension degree `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The irreducible modulus polynomial over GF(p).
    pub fn modulus(&self) -> &Poly {
        &self.modulus
    }
}

impl Field for ExtField {
    fn order(&self) -> usize {
        self.order
    }

    fn add(&self, a: usize, b: usize) -> usize {
        assert!(a < self.order && b < self.order);
        // Digit-wise addition mod p.
        let (mut acc, mut pw) = (0usize, 1usize);
        let (mut x, mut y) = (a, b);
        for _ in 0..self.m {
            let s = (x % self.p + y % self.p) % self.p;
            acc += s * pw;
            pw *= self.p;
            x /= self.p;
            y /= self.p;
        }
        acc
    }

    fn neg(&self, a: usize) -> usize {
        assert!(a < self.order);
        let (mut acc, mut pw) = (0usize, 1usize);
        let mut x = a;
        for _ in 0..self.m {
            let d = x % self.p;
            acc += if d == 0 { 0 } else { self.p - d } * pw;
            pw *= self.p;
            x /= self.p;
        }
        acc
    }

    fn mul(&self, a: usize, b: usize) -> usize {
        assert!(a < self.order && b < self.order);
        self.mul_table[a * self.order + b]
    }

    fn inv(&self, a: usize) -> Option<usize> {
        assert!(a < self.order);
        self.inv_table[a]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::check_axioms_exhaustive;

    #[test]
    fn gf4_gf8_gf9_axioms() {
        check_axioms_exhaustive(&ExtField::new(2, 2).unwrap());
        check_axioms_exhaustive(&ExtField::new(2, 3).unwrap());
        check_axioms_exhaustive(&ExtField::new(3, 2).unwrap());
    }

    #[test]
    fn of_order_accepts_prime_powers_only() {
        for q in [2usize, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27] {
            assert_eq!(ExtField::of_order(q).unwrap().order(), q, "q={q}");
        }
        for q in [1usize, 6, 10, 12, 14, 15, 18] {
            assert!(ExtField::of_order(q).is_none(), "q={q}");
        }
    }

    #[test]
    fn characteristic_is_p() {
        let f = ExtField::new(3, 2).unwrap();
        assert_eq!(f.characteristic(), 3);
        let f = ExtField::new(2, 4).unwrap();
        assert_eq!(f.characteristic(), 2);
    }

    #[test]
    fn multiplicative_group_is_cyclic() {
        let f = ExtField::new(2, 4).unwrap(); // GF(16)
        let g = f.primitive_element();
        let mut seen = [false; 16];
        let mut x = 1usize;
        for _ in 0..15 {
            assert!(!seen[x]);
            seen[x] = true;
            x = f.mul(x, g);
        }
        assert_eq!(x, 1);
    }

    #[test]
    fn frobenius_is_additive() {
        // In characteristic p, (a+b)^p = a^p + b^p.
        let f = ExtField::new(3, 2).unwrap();
        for a in 0..9 {
            for b in 0..9 {
                let lhs = f.pow(f.add(a, b), 3);
                let rhs = f.add(f.pow(a, 3), f.pow(b, 3));
                assert_eq!(lhs, rhs);
            }
        }
    }
}
