//! Dense univariate polynomials over a [`Field`], used to construct
//! extension fields GF(p^m).

use crate::field::Field;

/// A polynomial with coefficients in some field, stored little-endian
/// (`coeffs[i]` is the coefficient of `x^i`). The zero polynomial is the
/// empty coefficient vector. All operations take the field explicitly, so
/// `Poly` itself is plain data.
///
/// # Example
///
/// ```
/// use gf::{Poly, PrimeField};
///
/// let f = PrimeField::new(3).unwrap();
/// let p = Poly::new(vec![1, 0, 1]); // 1 + x^2
/// let q = Poly::new(vec![1, 1]);    // 1 + x
/// let r = p.mul(&q, &f);
/// assert_eq!(r.coeffs(), &[1, 1, 1, 1]); // (1+x^2)(1+x) = 1+x+x^2+x^3
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Poly {
    coeffs: Vec<usize>,
}

impl Poly {
    /// Creates a polynomial from little-endian coefficients, trimming
    /// trailing zeros.
    pub fn new(mut coeffs: Vec<usize>) -> Self {
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Self { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Self { coeffs: vec![1] }
    }

    /// The monomial `x`.
    pub fn x() -> Self {
        Self { coeffs: vec![0, 1] }
    }

    /// Little-endian coefficients (no trailing zeros).
    pub fn coeffs(&self) -> &[usize] {
        &self.coeffs
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Polynomial addition over `f`.
    pub fn add(&self, other: &Poly, f: &dyn Field) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(0);
            let b = other.coeffs.get(i).copied().unwrap_or(0);
            *o = f.add(a, b);
        }
        Poly::new(out)
    }

    /// Polynomial subtraction over `f`.
    pub fn sub(&self, other: &Poly, f: &dyn Field) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(0);
            let b = other.coeffs.get(i).copied().unwrap_or(0);
            *o = f.sub(a, b);
        }
        Poly::new(out)
    }

    /// Polynomial multiplication over `f` (schoolbook).
    pub fn mul(&self, other: &Poly, f: &dyn Field) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] = f.add(out[i + j], f.mul(a, b));
            }
        }
        Poly::new(out)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q * divisor + r` and `deg r < deg divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Poly, f: &dyn Field) -> (Poly, Poly) {
        let dd = divisor.degree().expect("division by zero polynomial");
        let lead_inv = f
            .inv(divisor.coeffs[dd])
            .expect("leading coefficient is a unit");
        let mut rem = self.coeffs.clone();
        if rem.len() <= dd {
            return (Poly::zero(), self.clone());
        }
        let mut quot = vec![0; rem.len() - dd];
        for i in (dd..rem.len()).rev() {
            let c = rem[i];
            if c == 0 {
                continue;
            }
            let q = f.mul(c, lead_inv);
            quot[i - dd] = q;
            for (j, &dc) in divisor.coeffs.iter().enumerate() {
                rem[i - dd + j] = f.sub(rem[i - dd + j], f.mul(q, dc));
            }
        }
        (Poly::new(quot), Poly::new(rem))
    }

    /// Remainder of Euclidean division.
    pub fn rem(&self, divisor: &Poly, f: &dyn Field) -> Poly {
        self.div_rem(divisor, f).1
    }

    /// Evaluates the polynomial at `x` (Horner).
    pub fn eval(&self, x: usize, f: &dyn Field) -> usize {
        let mut acc = 0;
        for &c in self.coeffs.iter().rev() {
            acc = f.add(f.mul(acc, x), c);
        }
        acc
    }

    /// Whether the polynomial is irreducible over `f`, by trial division by
    /// every monic polynomial of degree `1..=deg/2`. Exponential in the
    /// degree, so intended for the small degrees used to build GF(p^m).
    pub fn is_irreducible(&self, f: &dyn Field) -> bool {
        let deg = match self.degree() {
            None | Some(0) => return false,
            Some(1) => return true,
            Some(d) => d,
        };
        for d in 1..=deg / 2 {
            let mut divisor_coeffs = vec![0usize; d + 1];
            divisor_coeffs[d] = 1; // monic
            if Self::any_divisor(self, &mut divisor_coeffs, 0, d, f) {
                return false;
            }
        }
        true
    }

    /// Recursively enumerates all monic degree-`d` polynomials and checks
    /// divisibility.
    fn any_divisor(
        target: &Poly,
        coeffs: &mut Vec<usize>,
        pos: usize,
        d: usize,
        f: &dyn Field,
    ) -> bool {
        if pos == d {
            let divisor = Poly::new(coeffs.clone());
            return target.rem(&divisor, f).is_zero();
        }
        for c in 0..f.order() {
            coeffs[pos] = c;
            if Self::any_divisor(target, coeffs, pos + 1, d, f) {
                return true;
            }
        }
        coeffs[pos] = 0;
        false
    }

    /// Finds a monic irreducible polynomial of degree `m` over `f` by
    /// lexicographic search.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`. (An irreducible polynomial of every degree `m >= 1`
    /// exists over any finite field, so the search always succeeds.)
    pub fn find_irreducible(m: usize, f: &dyn Field) -> Poly {
        assert!(m >= 1, "degree must be at least 1");
        let q = f.order();
        let total = q.pow(m as u32);
        for code in 0..total {
            let mut coeffs = vec![0usize; m + 1];
            let mut rest = code;
            for c in coeffs.iter_mut().take(m) {
                *c = rest % q;
                rest /= q;
            }
            coeffs[m] = 1;
            let cand = Poly::new(coeffs);
            if cand.is_irreducible(f) {
                return cand;
            }
        }
        unreachable!("an irreducible polynomial of degree {m} exists over GF({q})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::PrimeField;

    fn f3() -> PrimeField {
        PrimeField::new(3).unwrap()
    }

    #[test]
    fn construction_trims_zeros() {
        let p = Poly::new(vec![1, 2, 0, 0]);
        assert_eq!(p.coeffs(), &[1, 2]);
        assert_eq!(p.degree(), Some(1));
        assert!(Poly::new(vec![0, 0]).is_zero());
    }

    #[test]
    fn add_sub_roundtrip() {
        let f = f3();
        let a = Poly::new(vec![1, 2, 1]);
        let b = Poly::new(vec![2, 2]);
        let s = a.add(&b, &f);
        assert_eq!(s.sub(&b, &f), a);
    }

    #[test]
    fn mul_matches_known_product() {
        let f = f3();
        // (1 + x)(1 + 2x) = 1 + 3x + 2x^2 = 1 + 0x + 2x^2 over GF(3)
        let a = Poly::new(vec![1, 1]);
        let b = Poly::new(vec![1, 2]);
        assert_eq!(a.mul(&b, &f).coeffs(), &[1, 0, 2]);
    }

    #[test]
    fn div_rem_reconstructs() {
        let f = PrimeField::new(5).unwrap();
        let a = Poly::new(vec![3, 1, 4, 1, 2]);
        let b = Poly::new(vec![1, 0, 1]);
        let (q, r) = a.div_rem(&b, &f);
        let back = q.mul(&b, &f).add(&r, &f);
        assert_eq!(back, a);
        assert!(r.degree().is_none_or(|d| d < 2));
    }

    #[test]
    fn eval_horner() {
        let f = PrimeField::new(7).unwrap();
        let p = Poly::new(vec![2, 0, 1]); // 2 + x^2
        assert_eq!(p.eval(0, &f), 2);
        assert_eq!(p.eval(3, &f), (2 + 9) % 7);
    }

    #[test]
    fn irreducibility_gf2() {
        let f = PrimeField::new(2).unwrap();
        // x^2 + x + 1 irreducible; x^2 + 1 = (x+1)^2 reducible over GF(2).
        assert!(Poly::new(vec![1, 1, 1]).is_irreducible(&f));
        assert!(!Poly::new(vec![1, 0, 1]).is_irreducible(&f));
        // x^8 + x^4 + x^3 + x^2 + 1 (0x11d) is irreducible.
        assert!(Poly::new(vec![1, 0, 1, 1, 1, 0, 0, 0, 1]).is_irreducible(&f));
    }

    #[test]
    fn find_irreducible_has_no_roots() {
        for p in [2usize, 3, 5] {
            let f = PrimeField::new(p).unwrap();
            for m in 2..=3 {
                let poly = Poly::find_irreducible(m, &f);
                assert_eq!(poly.degree(), Some(m));
                for x in 0..p {
                    assert_ne!(poly.eval(x, &f), 0, "irreducible must have no roots");
                }
            }
        }
    }
}
