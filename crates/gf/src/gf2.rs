//! Binary extension fields GF(2^w) via log/exp tables, plus a shared
//! GF(2^8) instance with byte-slice kernels for erasure coding.

use std::sync::OnceLock;

use crate::field::Field;
use crate::kernels::MulTable;

/// Default irreducible polynomials (without the leading x^w term folded in;
/// the full polynomial is `x^w + poly[w]`). Standard choices: for w = 8 this
/// is `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the polynomial used by most
/// storage Reed–Solomon deployments.
const DEFAULT_POLY: [u32; 17] = [
    0, 0x3, 0x7, 0xb, 0x13, 0x25, 0x43, 0x89, 0x11d, 0x211, 0x409, 0x805, 0x1053, 0x201b, 0x4443,
    0x8003, 0x1100b,
];

/// A binary extension field GF(2^w), `1 <= w <= 16`.
///
/// Elements are bit patterns in `0..2^w`; addition is XOR and multiplication
/// uses log/exp tables over a generator of the multiplicative group.
///
/// # Example
///
/// ```
/// use gf::{Field, Gf2};
///
/// let f = Gf2::new(4);
/// assert_eq!(f.order(), 16);
/// assert_eq!(f.add(0b1010, 0b0110), 0b1100); // addition is XOR
/// let a = 7;
/// assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Gf2 {
    w: u32,
    mask: usize,
    log: Vec<u16>,
    exp: Vec<u16>,
}

impl Gf2 {
    /// Creates GF(2^w) with a standard irreducible polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `w` is 0 or greater than 16.
    pub fn new(w: u32) -> Self {
        assert!((1..=16).contains(&w), "Gf2 supports 1 <= w <= 16, got {w}");
        Self::with_poly(w, DEFAULT_POLY[w as usize])
    }

    /// Creates GF(2^w) reducing by `x^w + low_terms` where `low_terms` is the
    /// bit pattern of the polynomial's lower-degree terms (including the
    /// constant). The polynomial must be primitive for the tables to be
    /// well-formed; this is validated at construction.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or the polynomial is not primitive
    /// (i.e. `x` does not generate the multiplicative group).
    pub fn with_poly(w: u32, low_terms: u32) -> Self {
        assert!((1..=16).contains(&w));
        let order = 1usize << w;
        let mask = order - 1;
        // Accept either convention: with or without the leading x^w bit.
        let poly = low_terms as usize & mask;
        let mut log = vec![0u16; order];
        let mut exp = vec![0u16; 2 * order];
        let mut x = 1usize;
        #[allow(clippy::needless_range_loop)] // `i` is the discrete log, stored into both tables
        for i in 0..order - 1 {
            assert!(
                i == 0 || x != 1,
                "polynomial {low_terms:#x} is not primitive for w={w}"
            );
            exp[i] = x as u16;
            log[x] = i as u16;
            // multiply by the generator `x` (i.e. shift) and reduce by
            // x^w + low_terms: the overflow bit x^w is replaced by the
            // polynomial's lower-degree terms.
            x <<= 1;
            if x & order != 0 {
                x = (x & mask) ^ poly;
            }
        }
        // Duplicate exp so exp[log a + log b] needs no modulo.
        for i in 0..order - 1 {
            exp[order - 1 + i] = exp[i];
        }
        Self { w, mask, log, exp }
    }

    /// Field width `w` in bits.
    pub fn width(&self) -> u32 {
        self.w
    }

    #[inline]
    fn mul_raw(&self, a: usize, b: usize) -> usize {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a] as usize + self.log[b] as usize] as usize
        }
    }
}

impl Field for Gf2 {
    fn order(&self) -> usize {
        self.mask + 1
    }

    fn add(&self, a: usize, b: usize) -> usize {
        assert!(a <= self.mask && b <= self.mask);
        a ^ b
    }

    fn neg(&self, a: usize) -> usize {
        assert!(a <= self.mask);
        a
    }

    fn mul(&self, a: usize, b: usize) -> usize {
        assert!(a <= self.mask && b <= self.mask);
        self.mul_raw(a, b)
    }

    fn inv(&self, a: usize) -> Option<usize> {
        assert!(a <= self.mask);
        if a == 0 {
            None
        } else {
            let n = self.mask; // group order 2^w - 1
            Some(self.exp[(n - self.log[a] as usize) % n] as usize)
        }
    }
}

/// Shared GF(2^8) field with byte-slice kernels used on erasure-coding hot
/// paths.
///
/// The log/exp tables are built once per process, along with one
/// split-nibble [`MulTable`] per coefficient (8 KiB total), so
/// [`Gf256::mul_slice`] and [`Gf256::mul_acc_slice`] never touch log/exp in
/// their inner loops — they dispatch straight into the branch-free kernels
/// of [`crate::kernels`]. This is what the `ecc` crate's Reed–Solomon and
/// RAID6 implementations use.
///
/// # Example
///
/// ```
/// use gf::Gf256;
///
/// let f = Gf256::get();
/// let mut out = vec![0u8; 4];
/// f.mul_acc_slice(0x02, &[1, 2, 3, 4], &mut out);
/// assert_eq!(out, vec![2, 4, 6, 8]);
/// ```
#[derive(Debug)]
pub struct Gf256 {
    inner: Gf2,
    /// One split-nibble table pair per coefficient, indexed by coefficient.
    tables: Vec<MulTable>,
}

static GF256: OnceLock<Gf256> = OnceLock::new();

impl Gf256 {
    /// Returns the process-wide GF(2^8) instance (polynomial 0x11d).
    pub fn get() -> &'static Gf256 {
        GF256.get_or_init(|| Gf256 {
            inner: Gf2::new(8),
            tables: (0..=255u8).map(MulTable::new).collect(),
        })
    }

    /// The cached split-nibble multiplication tables for coefficient `c`.
    #[inline]
    pub fn mul_table(&self, c: u8) -> &MulTable {
        &self.tables[c as usize]
    }

    /// Multiplies two field elements.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        self.inner.mul_raw(a as usize, b as usize) as u8
    }

    /// Adds two field elements (XOR).
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Multiplicative inverse; `None` for zero.
    pub fn inv(&self, a: u8) -> Option<u8> {
        self.inner.inv(a as usize).map(|x| x as u8)
    }

    /// Division; `None` when `b == 0`.
    pub fn div(&self, a: u8, b: u8) -> Option<u8> {
        self.inner.div(a as usize, b as usize).map(|x| x as u8)
    }

    /// Exponentiation.
    pub fn pow(&self, a: u8, e: u64) -> u8 {
        self.inner.pow(a as usize, e) as u8
    }

    /// `out[i] = c * src[i]` for all `i`.
    ///
    /// `c == 0` and `c == 1` short-circuit to `fill`/`copy` (a
    /// per-*coefficient* branch); the general case is the branch-free
    /// split-nibble kernel — zero *data* bytes need no special case because
    /// the tables map them to zero naturally.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != out.len()`.
    pub fn mul_slice(&self, c: u8, src: &[u8], out: &mut [u8]) {
        assert_eq!(src.len(), out.len());
        match c {
            0 => out.fill(0),
            1 => out.copy_from_slice(src),
            _ => self.tables[c as usize].mul_slice(src, out),
        }
    }

    /// `out[i] ^= c * src[i]` for all `i` — the GF(2^8) multiply-accumulate
    /// used by Reed–Solomon encoding. `c == 1` degenerates to the wide-word
    /// XOR kernel; the general case is the branch-free split-nibble kernel.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != out.len()`.
    pub fn mul_acc_slice(&self, c: u8, src: &[u8], out: &mut [u8]) {
        assert_eq!(src.len(), out.len());
        match c {
            0 => {}
            1 => crate::kernels::xor_acc(out, src),
            _ => self.tables[c as usize].mul_acc_slice(src, out),
        }
    }

    /// Access the underlying generic field (element indices are byte values).
    pub fn as_field(&self) -> &Gf2 {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::check_axioms_exhaustive;
    use proptest::prelude::*;

    /// Bit-by-bit reference ("Russian peasant") multiplication in GF(2^8)
    /// with polynomial 0x11d, independent of the table code.
    fn ref_mul(mut a: u16, mut b: u16) -> u8 {
        let mut p = 0u16;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= 0x11d;
            }
            b >>= 1;
        }
        p as u8
    }

    #[test]
    fn gf16_axioms_exhaustive() {
        check_axioms_exhaustive(&Gf2::new(4));
    }

    #[test]
    fn gf4_and_gf2_axioms_exhaustive() {
        check_axioms_exhaustive(&Gf2::new(1));
        check_axioms_exhaustive(&Gf2::new(2));
    }

    #[test]
    fn gf256_matches_reference_mul() {
        let f = Gf256::get();
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                assert_eq!(f.mul(a as u8, b as u8), ref_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn gf256_inverses() {
        let f = Gf256::get();
        assert_eq!(f.inv(0), None);
        for a in 1..=255u8 {
            let ai = f.inv(a).unwrap();
            assert_eq!(f.mul(a, ai), 1);
        }
    }

    #[test]
    fn gf2_large_widths_roundtrip() {
        for w in [9, 12, 16] {
            let f = Gf2::new(w);
            // Spot-check a pseudo-random sample of inverses.
            let step = f.order() / 257 + 1;
            let mut a = 1;
            while a < f.order() {
                let ai = f.inv(a).unwrap();
                assert_eq!(f.mul(a, ai), 1, "w={w} a={a}");
                a += step;
            }
        }
    }

    #[test]
    fn exp_table_has_full_period() {
        for w in 1..=12 {
            let f = Gf2::new(w);
            // x must generate all 2^w - 1 units: the log table is a bijection.
            let mut seen = vec![false; f.order()];
            for a in 1..f.order() {
                let l = f.log[a] as usize;
                assert!(!seen[l], "w={w}: log value {l} repeated");
                seen[l] = true;
            }
        }
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let f = Gf256::get();
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x1d, 0xff] {
            let mut out = vec![0u8; 256];
            f.mul_slice(c, &src, &mut out);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(out[i], f.mul(c, s));
            }
            let mut acc = out.clone();
            f.mul_acc_slice(c, &src, &mut acc);
            for i in 0..256 {
                assert_eq!(acc[i], out[i] ^ f.mul(c, src[i]));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn gf2_16_field_axioms_random(a in 0usize..65536, b in 0usize..65536, c in 0usize..65536) {
            // Exhaustive checks cover small widths; GF(2^16) gets random
            // triples: associativity, commutativity, distributivity,
            // inverses.
            let f = Gf2::new(16);
            prop_assert_eq!(f.mul(a, b), f.mul(b, a));
            prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
            prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
            if a != 0 {
                let ai = f.inv(a).unwrap();
                prop_assert_eq!(f.mul(a, ai), 1);
            }
            prop_assert_eq!(f.pow(a, 65535), if a == 0 { 0 } else { 1 }); // Fermat
        }
    }

    #[test]
    #[should_panic(expected = "not primitive")]
    fn non_primitive_poly_rejected() {
        // x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive over GF(2):
        // x has order 5, not 15.
        let _ = Gf2::with_poly(4, 0b1111);
    }
}
