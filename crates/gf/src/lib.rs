//! Finite-field arithmetic and small linear-algebra substrate.
//!
//! This crate provides the algebraic machinery that the rest of the OI-RAID
//! reproduction is built on:
//!
//! * [`Gf2`] — binary extension fields GF(2^w) for `1 <= w <= 16`, backed by
//!   log/exp tables, used by the Reed–Solomon and RAID6 codes in `ecc`.
//! * [`Gf256`] — a process-wide shared GF(2^8) instance with byte-slice
//!   kernels (`mul_slice`, `mul_acc_slice`) on the hot encode/decode paths.
//! * [`kernels`] — the branch-free slice kernels underneath: wide-word XOR
//!   accumulate and split-nibble-table GF(2^8) multiply, with a
//!   runtime-dispatched SIMD path on `x86_64` and portable fallbacks.
//! * [`PrimeField`] — GF(p) for prime `p`, used by the combinatorial design
//!   constructions in `bibd` (difference families, planes).
//! * [`ExtField`] — GF(p^m) extension fields built from an irreducible
//!   polynomial, enabling projective/affine planes of prime-power order.
//! * [`Matrix`] — dense matrices over any [`Field`], with Gauss–Jordan
//!   inversion and Vandermonde construction for MDS code generation.
//!
//! All fields represent elements as `usize` indices in `0..order`, with `0`
//! the additive identity and `1` the multiplicative identity. This uniform
//! representation keeps the [`Field`] trait object-safe and lets `bibd` and
//! `ecc` stay generic over the concrete field.
//!
//! # Example
//!
//! ```
//! use gf::{Field, Gf2};
//!
//! let f = Gf2::new(8);
//! let a = 0x57;
//! let b = 0x83;
//! let p = f.mul(a, b);
//! assert_eq!(f.div(p, b), Some(a));
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// runtime-dispatched SIMD kernels in `kernels::x86`, which carry their own
// `allow(unsafe_code)` plus per-call-site SAFETY comments. Everything else
// stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod ext;
mod field;
mod gf2;
pub mod kernels;
mod matrix;
mod poly;
mod prime;

pub use ext::ExtField;
pub use field::Field;
pub use gf2::{Gf2, Gf256};
pub use matrix::Matrix;
pub use poly::Poly;
pub use prime::{is_prime, PrimeField};

/// Returns `Some((p, m))` if `q == p^m` for a prime `p` and `m >= 1`.
///
/// Used to decide whether a finite field (and hence a projective plane of
/// order `q`) exists.
///
/// ```
/// assert_eq!(gf::prime_power(9), Some((3, 2)));
/// assert_eq!(gf::prime_power(12), None);
/// ```
pub fn prime_power(q: usize) -> Option<(usize, usize)> {
    if q < 2 {
        return None;
    }
    // Find the smallest prime factor and check q is a pure power of it.
    let mut p = 0;
    let mut d = 2;
    while d * d <= q {
        if q.is_multiple_of(d) {
            p = d;
            break;
        }
        d += 1;
    }
    if p == 0 {
        return Some((q, 1)); // q itself is prime
    }
    let mut rest = q;
    let mut m = 0;
    while rest.is_multiple_of(p) {
        rest /= p;
        m += 1;
    }
    if rest == 1 {
        Some((p, m))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_power_detects_primes() {
        assert_eq!(prime_power(2), Some((2, 1)));
        assert_eq!(prime_power(7), Some((7, 1)));
        assert_eq!(prime_power(97), Some((97, 1)));
    }

    #[test]
    fn prime_power_detects_powers() {
        assert_eq!(prime_power(4), Some((2, 2)));
        assert_eq!(prime_power(8), Some((2, 3)));
        assert_eq!(prime_power(9), Some((3, 2)));
        assert_eq!(prime_power(27), Some((3, 3)));
        assert_eq!(prime_power(49), Some((7, 2)));
    }

    #[test]
    fn prime_power_rejects_composites() {
        for q in [0, 1, 6, 10, 12, 15, 18, 20, 24, 36, 100] {
            assert_eq!(prime_power(q), None, "q={q}");
        }
    }
}
