//! Differential tests: every optimized kernel path must be bit-identical to
//! the retained scalar references in `gf::kernels::scalar`, across all 256
//! coefficients and lengths 0..=257 (covering empty slices and every odd
//! tail around the 16/32-byte lane widths).
//!
//! These tests deliberately avoid `force_path` (process-global) and instead
//! call each implementation directly, so they stay safe under the parallel
//! test runner. CI runs them under both debug and `--release` profiles —
//! wide-word code paths optimize differently.

use gf::kernels::{scalar, simd_available, xor_acc, xor_acc2, xor_acc_wide, MulTable};
use gf::Gf256;
use proptest::prelude::*;

/// Deterministic pseudo-random bytes (xorshift) so the exhaustive sweeps
/// need no RNG dependency.
fn sample(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect()
}

const LENGTHS: [usize; 14] = [0, 1, 2, 7, 15, 16, 17, 31, 32, 33, 63, 64, 65, 257];

#[test]
fn mul_slice_all_coefficients_all_paths() {
    for c in 0..=255u8 {
        let t = MulTable::new(c);
        for len in LENGTHS {
            let src = sample(len, 0x1000 + c as u64);
            let mut reference = vec![0u8; len];
            scalar::mul_slice(c, &src, &mut reference);

            let mut wide = vec![0u8; len];
            t.mul_slice_wide(&src, &mut wide);
            assert_eq!(reference, wide, "wide c={c} len={len}");

            let mut simd = vec![0u8; len];
            if t.mul_slice_simd(&src, &mut simd) {
                assert_eq!(reference, simd, "simd c={c} len={len}");
            }

            let mut dispatched = vec![0u8; len];
            t.mul_slice(&src, &mut dispatched);
            assert_eq!(reference, dispatched, "dispatched c={c} len={len}");
        }
    }
}

#[test]
fn mul_acc_slice_all_coefficients_all_paths() {
    for c in 0..=255u8 {
        let t = MulTable::new(c);
        for len in LENGTHS {
            let src = sample(len, 0x2000 + c as u64);
            let acc0 = sample(len, 0x3000 + c as u64);

            let mut reference = acc0.clone();
            scalar::mul_acc_slice(c, &src, &mut reference);

            let mut wide = acc0.clone();
            t.mul_acc_slice_wide(&src, &mut wide);
            assert_eq!(reference, wide, "wide c={c} len={len}");

            let mut simd = acc0.clone();
            if t.mul_acc_slice_simd(&src, &mut simd) {
                assert_eq!(reference, simd, "simd c={c} len={len}");
            }

            let mut dispatched = acc0.clone();
            t.mul_acc_slice(&src, &mut dispatched);
            assert_eq!(reference, dispatched, "dispatched c={c} len={len}");
        }
    }
}

#[test]
fn gf256_slice_entry_points_match_scalar() {
    let f = Gf256::get();
    for c in 0..=255u8 {
        for len in [0usize, 1, 17, 65, 257] {
            let src = sample(len, 0x4000 + c as u64);
            let acc0 = sample(len, 0x5000 + c as u64);

            let mut reference = vec![0u8; len];
            scalar::mul_slice(c, &src, &mut reference);
            let mut out = vec![0u8; len];
            f.mul_slice(c, &src, &mut out);
            assert_eq!(reference, out, "mul_slice c={c} len={len}");

            let mut reference = acc0.clone();
            scalar::mul_acc_slice(c, &src, &mut reference);
            let mut out = acc0.clone();
            f.mul_acc_slice(c, &src, &mut out);
            assert_eq!(reference, out, "mul_acc_slice c={c} len={len}");
        }
    }
}

#[test]
fn simd_is_available_on_x86_64_ci() {
    // Informational guard: on x86_64 the SIMD path must exist, otherwise
    // the suite above silently skips it.
    if cfg!(target_arch = "x86_64") {
        assert!(simd_available(), "x86_64 without SSSE3 is unexpected");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn xor_acc_matches_scalar(len in 0usize..258, s1 in any::<u64>(), s2 in any::<u64>()) {
        let src = sample(len, s1);
        let mut reference = sample(len, s2);
        let mut wide = reference.clone();
        let mut dispatched = reference.clone();
        scalar::xor_acc(&mut reference, &src);
        xor_acc_wide(&mut wide, &src);
        xor_acc(&mut dispatched, &src);
        prop_assert_eq!(&reference, &wide);
        prop_assert_eq!(&reference, &dispatched);
    }

    #[test]
    fn xor_acc2_matches_sequential_xors(len in 0usize..258, s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
        let a = sample(len, s1);
        let b = sample(len, s2);
        let mut fused = sample(len, s3);
        let mut reference = fused.clone();
        scalar::xor_acc(&mut reference, &a);
        scalar::xor_acc(&mut reference, &b);
        xor_acc2(&mut fused, &a, &b);
        prop_assert_eq!(reference, fused);
    }

    #[test]
    fn mul_paths_agree_on_random_buffers(c in any::<u8>(), len in 0usize..258, s1 in any::<u64>(), s2 in any::<u64>()) {
        let t = MulTable::new(c);
        let src = sample(len, s1);
        let acc0 = sample(len, s2);

        let mut reference = vec![0u8; len];
        scalar::mul_slice(c, &src, &mut reference);
        let mut wide = vec![0u8; len];
        t.mul_slice_wide(&src, &mut wide);
        prop_assert_eq!(&reference, &wide);
        let mut simd = vec![0u8; len];
        if t.mul_slice_simd(&src, &mut simd) {
            prop_assert_eq!(&reference, &simd);
        }

        let mut reference = acc0.clone();
        scalar::mul_acc_slice(c, &src, &mut reference);
        let mut wide = acc0.clone();
        t.mul_acc_slice_wide(&src, &mut wide);
        prop_assert_eq!(&reference, &wide);
        let mut simd = acc0;
        if t.mul_acc_slice_simd(&src, &mut simd) {
            prop_assert_eq!(&reference, &simd);
        }
    }
}
