//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `throughput`, `bench_function`, and [`black_box`] — as a
//! small wall-clock runner: a warm-up pass sizes the batch, then
//! `sample_size` timed batches are summarized as mean ± spread (and
//! throughput when declared). No statistics beyond that, no HTML reports,
//! no baselines; it exists so `cargo bench` runs without crates.io access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level bench driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        run_bench(&id, 100, None, f);
    }
}

/// A group of benchmarks sharing sample size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2) as u64;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API parity; no finalization needed).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` back to back.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: find an iteration count filling ~5 ms per sample.
    let mut iters = 1u64;
    loop {
        let t = time_batch(&mut f, iters);
        if t >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| time_batch(&mut f, iters).as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!("  {}/s", human_bytes(n as f64 / mean)),
        Some(Throughput::Elements(n)) => format!("  {:.0} elem/s", n as f64 / mean),
        None => String::new(),
    };
    println!(
        "{id:<50} time: [{} {} {}]{rate}",
        human_time(min),
        human_time(mean),
        human_time(max)
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human_bytes(rate: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut r = rate;
    let mut u = 0;
    while r >= 1024.0 && u < UNITS.len() - 1 {
        r /= 1024.0;
        u += 1;
    }
    format!("{r:.2} {}", UNITS[u])
}

/// Declares a bench group: a runner function invoking each target with a
/// shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u64;
        group.bench_function("xor", |b| {
            b.iter(|| {
                runs += 1;
                black_box(3u64 ^ 5)
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn humanized_units() {
        assert!(human_time(2.5e-9).ends_with("ns"));
        assert!(human_time(2.5e-5).contains("µs"));
        assert!(human_time(2.5e-2).ends_with("ms"));
        assert!(human_time(2.5).ends_with('s'));
        assert_eq!(human_bytes(2048.0), "2.00 KiB");
    }
}
