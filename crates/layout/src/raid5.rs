//! Flat RAID5 and RAID50 — the classical baselines OI-RAID is measured
//! against for rebuild speed.

use crate::plan::{assign_writes, ChunkRecovery, RecoveryPlan, SparePolicy, WriteTarget};
use crate::traits::{validate_failures, ChunkAddr, Layout, LayoutError, Role};

/// One RAID5 stripe across all `n` disks with left-symmetric rotating
/// parity: row `o`'s parity lives on disk `o mod n`.
///
/// Rebuilding a failed disk reads **every** chunk of **every** survivor —
/// the `n−1`-fold read amplification that motivates declustering.
///
/// # Example
///
/// ```
/// use layout::{FlatRaid5, Layout};
///
/// let l = FlatRaid5::new(5, 10).unwrap();
/// assert_eq!(l.fault_tolerance(), 1);
/// assert!((l.efficiency() - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRaid5 {
    disks: usize,
    chunks_per_disk: usize,
}

impl FlatRaid5 {
    /// Creates an `n`-disk flat RAID5 covering `chunks_per_disk` rows.
    ///
    /// # Errors
    ///
    /// [`LayoutError::InvalidGeometry`] if `disks < 3` or
    /// `chunks_per_disk == 0`.
    pub fn new(disks: usize, chunks_per_disk: usize) -> Result<Self, LayoutError> {
        if disks < 3 {
            return Err(LayoutError::InvalidGeometry(format!(
                "RAID5 needs at least 3 disks, got {disks}"
            )));
        }
        if chunks_per_disk == 0 {
            return Err(LayoutError::InvalidGeometry(
                "chunks_per_disk must be positive".into(),
            ));
        }
        Ok(Self {
            disks,
            chunks_per_disk,
        })
    }
}

impl Layout for FlatRaid5 {
    fn name(&self) -> String {
        format!("RAID5({})", self.disks)
    }

    fn disks(&self) -> usize {
        self.disks
    }

    fn chunks_per_disk(&self) -> usize {
        self.chunks_per_disk
    }

    fn fault_tolerance(&self) -> usize {
        1
    }

    fn chunk_role(&self, addr: ChunkAddr) -> Role {
        assert!(addr.disk < self.disks && addr.offset < self.chunks_per_disk);
        if addr.offset % self.disks == addr.disk {
            Role::Parity
        } else {
            Role::Data
        }
    }

    fn survives(&self, failed: &[usize]) -> bool {
        failed.len() <= 1
    }

    fn recovery_plan(
        &self,
        failed: &[usize],
        policy: SparePolicy,
    ) -> Result<RecoveryPlan, LayoutError> {
        let failed = validate_failures(failed, self.disks)?;
        if !self.survives(&failed) {
            return Err(LayoutError::DataLoss { failed });
        }
        let mut items = Vec::new();
        if let [d] = failed[..] {
            for o in 0..self.chunks_per_disk {
                let reads = (0..self.disks)
                    .filter(|&i| i != d)
                    .map(|i| ChunkAddr::new(i, o))
                    .collect();
                items.push(ChunkRecovery {
                    lost: ChunkAddr::new(d, o),
                    reads,
                    depends: Vec::new(),
                    write: WriteTarget::Spare(0),
                });
            }
        }
        assign_writes(policy, self.disks, &failed, &mut items);
        Ok(RecoveryPlan::new(self.disks, failed, items))
    }
}

/// RAID50: independent `width`-disk RAID5 groups striped together. Disk
/// `g·width + i` is member `i` of group `g`.
///
/// Rebuild traffic stays inside the afflicted group — fewer disks share the
/// work than flat RAID5, but the array survives one failure *per group*.
///
/// # Example
///
/// ```
/// use layout::{Layout, Raid50, SparePolicy};
///
/// let l = Raid50::new(3, 5, 10).unwrap(); // 3 groups x 5 disks
/// assert_eq!(l.disks(), 15);
/// assert!(l.survives(&[0, 5, 10])); // one per group
/// assert!(!l.survives(&[0, 1]));    // two in group 0
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Raid50 {
    groups: usize,
    width: usize,
    chunks_per_disk: usize,
}

impl Raid50 {
    /// Creates `groups` independent RAID5 groups of `width` disks each.
    ///
    /// # Errors
    ///
    /// [`LayoutError::InvalidGeometry`] if `groups == 0`, `width < 3`, or
    /// `chunks_per_disk == 0`.
    pub fn new(groups: usize, width: usize, chunks_per_disk: usize) -> Result<Self, LayoutError> {
        if groups == 0 || width < 3 {
            return Err(LayoutError::InvalidGeometry(format!(
                "RAID50 needs >= 1 group of >= 3 disks, got {groups}x{width}"
            )));
        }
        if chunks_per_disk == 0 {
            return Err(LayoutError::InvalidGeometry(
                "chunks_per_disk must be positive".into(),
            ));
        }
        Ok(Self {
            groups,
            width,
            chunks_per_disk,
        })
    }

    /// The group a disk belongs to.
    pub fn group_of(&self, disk: usize) -> usize {
        disk / self.width
    }

    /// Group count.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Disks per group.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Layout for Raid50 {
    fn name(&self) -> String {
        format!("RAID50({}x{})", self.groups, self.width)
    }

    fn disks(&self) -> usize {
        self.groups * self.width
    }

    fn chunks_per_disk(&self) -> usize {
        self.chunks_per_disk
    }

    fn fault_tolerance(&self) -> usize {
        1
    }

    fn chunk_role(&self, addr: ChunkAddr) -> Role {
        assert!(addr.disk < self.disks() && addr.offset < self.chunks_per_disk);
        let member = addr.disk % self.width;
        if addr.offset % self.width == member {
            Role::Parity
        } else {
            Role::Data
        }
    }

    fn survives(&self, failed: &[usize]) -> bool {
        let mut per_group = vec![0usize; self.groups];
        for &d in failed {
            if d >= self.disks() {
                return false;
            }
            per_group[self.group_of(d)] += 1;
        }
        per_group.iter().all(|&c| c <= 1)
    }

    fn recovery_plan(
        &self,
        failed: &[usize],
        policy: SparePolicy,
    ) -> Result<RecoveryPlan, LayoutError> {
        let failed = validate_failures(failed, self.disks())?;
        if !self.survives(&failed) {
            return Err(LayoutError::DataLoss { failed });
        }
        let mut items = Vec::new();
        for &d in &failed {
            let g = self.group_of(d);
            let members: Vec<usize> = (g * self.width..(g + 1) * self.width).collect();
            for o in 0..self.chunks_per_disk {
                let reads = members
                    .iter()
                    .filter(|&&i| i != d)
                    .map(|&i| ChunkAddr::new(i, o))
                    .collect();
                items.push(ChunkRecovery {
                    lost: ChunkAddr::new(d, o),
                    reads,
                    depends: Vec::new(),
                    write: WriteTarget::Spare(0),
                });
            }
        }
        assign_writes(policy, self.disks(), &failed, &mut items);
        Ok(RecoveryPlan::new(self.disks(), failed, items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raid5_geometry_validation() {
        assert!(FlatRaid5::new(2, 10).is_err());
        assert!(FlatRaid5::new(3, 0).is_err());
        assert!(FlatRaid5::new(3, 1).is_ok());
    }

    #[test]
    fn raid5_parity_rotates() {
        let l = FlatRaid5::new(4, 8).unwrap();
        let mut parities_on_disk = vec![0usize; 4];
        for o in 0..8 {
            for (d, count) in parities_on_disk.iter_mut().enumerate() {
                if l.chunk_role(ChunkAddr::new(d, o)) == Role::Parity {
                    *count += 1;
                }
            }
        }
        assert_eq!(parities_on_disk, vec![2, 2, 2, 2]);
    }

    #[test]
    fn raid5_recovery_reads_everything() {
        let l = FlatRaid5::new(5, 20).unwrap();
        let plan = l.recovery_plan(&[2], SparePolicy::Dedicated).unwrap();
        let load = plan.read_load(5);
        assert_eq!(load, vec![20, 20, 0, 20, 20]);
        assert_eq!(plan.total_writes(), 20);
    }

    #[test]
    fn raid5_rejects_double_failure() {
        let l = FlatRaid5::new(5, 4).unwrap();
        assert!(matches!(
            l.recovery_plan(&[0, 1], SparePolicy::Dedicated),
            Err(LayoutError::DataLoss { .. })
        ));
    }

    #[test]
    fn raid50_roles_balanced_per_group() {
        let l = Raid50::new(2, 4, 8).unwrap();
        let mut parity = 0;
        for d in 0..8 {
            for o in 0..8 {
                if l.chunk_role(ChunkAddr::new(d, o)) == Role::Parity {
                    parity += 1;
                }
            }
        }
        // 1 parity chunk per group-row: 2 groups * 8 rows = 16.
        assert_eq!(parity, 16);
        assert!((l.efficiency() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn raid50_recovery_stays_in_group() {
        let l = Raid50::new(3, 4, 10).unwrap();
        let plan = l.recovery_plan(&[5], SparePolicy::Dedicated).unwrap();
        let load = plan.read_load(12);
        for (d, &ld) in load.iter().enumerate() {
            let expect = if (4..8).contains(&d) && d != 5 { 10 } else { 0 };
            assert_eq!(ld, expect, "disk {d}");
        }
    }

    #[test]
    fn raid50_multi_group_failures() {
        let l = Raid50::new(3, 4, 6).unwrap();
        let plan = l.recovery_plan(&[0, 7], SparePolicy::Dedicated).unwrap();
        assert_eq!(plan.total_writes(), 12); // two disks x 6 chunks
        assert!(l.recovery_plan(&[0, 1], SparePolicy::Dedicated).is_err());
    }

    #[test]
    fn distributed_writes_balance() {
        let l = FlatRaid5::new(5, 20).unwrap();
        let plan = l.recovery_plan(&[2], SparePolicy::Distributed).unwrap();
        let wl = plan.write_load(5);
        assert_eq!(wl[2], 0);
        assert_eq!(wl.iter().sum::<u64>(), 20);
        assert!(wl.iter().filter(|&&w| w > 0).all(|&w| w == 5));
    }
}
