//! Flat RAID6 — the dual-parity baseline for the reliability comparison.

use crate::plan::{assign_writes, ChunkRecovery, RecoveryPlan, SparePolicy, WriteTarget};
use crate::traits::{validate_failures, ChunkAddr, Layout, LayoutError, Role};

/// One RAID6 stripe across all `n` disks with rotating P and Q parity:
/// row `o` places P on disk `o mod n` and Q on disk `(o + 1) mod n`.
///
/// # Example
///
/// ```
/// use layout::{FlatRaid6, Layout};
///
/// let l = FlatRaid6::new(6, 12).unwrap();
/// assert_eq!(l.fault_tolerance(), 2);
/// assert!((l.efficiency() - 4.0 / 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRaid6 {
    disks: usize,
    chunks_per_disk: usize,
}

impl FlatRaid6 {
    /// Creates an `n`-disk flat RAID6 covering `chunks_per_disk` rows.
    ///
    /// # Errors
    ///
    /// [`LayoutError::InvalidGeometry`] if `disks < 4` or
    /// `chunks_per_disk == 0`.
    pub fn new(disks: usize, chunks_per_disk: usize) -> Result<Self, LayoutError> {
        if disks < 4 {
            return Err(LayoutError::InvalidGeometry(format!(
                "RAID6 needs at least 4 disks, got {disks}"
            )));
        }
        if chunks_per_disk == 0 {
            return Err(LayoutError::InvalidGeometry(
                "chunks_per_disk must be positive".into(),
            ));
        }
        Ok(Self {
            disks,
            chunks_per_disk,
        })
    }
}

impl Layout for FlatRaid6 {
    fn name(&self) -> String {
        format!("RAID6({})", self.disks)
    }

    fn disks(&self) -> usize {
        self.disks
    }

    fn chunks_per_disk(&self) -> usize {
        self.chunks_per_disk
    }

    fn fault_tolerance(&self) -> usize {
        2
    }

    fn chunk_role(&self, addr: ChunkAddr) -> Role {
        assert!(addr.disk < self.disks && addr.offset < self.chunks_per_disk);
        let p = addr.offset % self.disks;
        let q = (addr.offset + 1) % self.disks;
        if addr.disk == p || addr.disk == q {
            Role::Parity
        } else {
            Role::Data
        }
    }

    fn survives(&self, failed: &[usize]) -> bool {
        failed.len() <= 2
    }

    fn recovery_plan(
        &self,
        failed: &[usize],
        policy: SparePolicy,
    ) -> Result<RecoveryPlan, LayoutError> {
        let failed = validate_failures(failed, self.disks)?;
        if !self.survives(&failed) {
            return Err(LayoutError::DataLoss { failed });
        }
        let mut items = Vec::new();
        for o in 0..self.chunks_per_disk {
            // All survivors of the row are read once; the first lost chunk of
            // the row carries the reads, later ones share them.
            let reads: Vec<ChunkAddr> = (0..self.disks)
                .filter(|i| !failed.contains(i))
                .map(|i| ChunkAddr::new(i, o))
                .collect();
            for (j, &d) in failed.iter().enumerate() {
                items.push(ChunkRecovery {
                    lost: ChunkAddr::new(d, o),
                    reads: if j == 0 { reads.clone() } else { Vec::new() },
                    depends: Vec::new(),
                    write: WriteTarget::Spare(0),
                });
            }
        }
        assign_writes(policy, self.disks, &failed, &mut items);
        Ok(RecoveryPlan::new(self.disks, failed, items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        assert!(FlatRaid6::new(3, 10).is_err());
        assert!(FlatRaid6::new(4, 0).is_err());
        assert!(FlatRaid6::new(4, 2).is_ok());
    }

    #[test]
    fn two_parity_chunks_per_row() {
        let l = FlatRaid6::new(5, 10).unwrap();
        for o in 0..10 {
            let parity = (0..5)
                .filter(|&d| l.chunk_role(ChunkAddr::new(d, o)) == Role::Parity)
                .count();
            assert_eq!(parity, 2, "row {o}");
        }
    }

    #[test]
    fn survives_up_to_two() {
        let l = FlatRaid6::new(6, 4).unwrap();
        assert!(l.survives(&[1]));
        assert!(l.survives(&[1, 4]));
        assert!(!l.survives(&[1, 2, 3]));
    }

    #[test]
    fn single_failure_plan_reads_survivors() {
        let l = FlatRaid6::new(5, 8).unwrap();
        let plan = l.recovery_plan(&[0], SparePolicy::Dedicated).unwrap();
        assert_eq!(plan.read_load(5), vec![0, 8, 8, 8, 8]);
    }

    #[test]
    fn double_failure_shares_row_reads() {
        let l = FlatRaid6::new(6, 4).unwrap();
        let plan = l.recovery_plan(&[1, 3], SparePolicy::Dedicated).unwrap();
        // 4 rows x 4 survivors read once each.
        assert_eq!(plan.total_reads(), 16);
        // 4 rows x 2 lost chunks rebuilt.
        assert_eq!(plan.total_writes(), 8);
    }
}
