//! The [`Layout`] trait and its basic types.

use std::fmt;

use crate::plan::{RecoveryPlan, SparePolicy};

/// Physical address of one chunk: a disk index and a chunk offset on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkAddr {
    /// Disk index in `0..layout.disks()`.
    pub disk: usize,
    /// Chunk offset on the disk, in `0..layout.chunks_per_disk()`.
    pub offset: usize,
}

impl ChunkAddr {
    /// Convenience constructor.
    pub fn new(disk: usize, offset: usize) -> Self {
        Self { disk, offset }
    }
}

impl fmt::Display for ChunkAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}:{}", self.disk, self.offset)
    }
}

/// What a chunk holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// User data.
    Data,
    /// Redundancy belonging to the (single or outer) code layer.
    Parity,
    /// Redundancy belonging to OI-RAID's inner (in-group) layer.
    InnerParity,
    /// Reserved distributed-spare space.
    Spare,
}

impl Role {
    /// Whether the chunk holds redundancy rather than data or spare space.
    pub fn is_parity(self) -> bool {
        matches!(self, Role::Parity | Role::InnerParity)
    }
}

/// Errors from layout queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// Construction parameters are invalid for the layout family.
    InvalidGeometry(String),
    /// A failed-disk index is out of range.
    DiskOutOfRange {
        /// The offending disk index.
        disk: usize,
        /// Number of disks in the layout.
        disks: usize,
    },
    /// The same disk listed twice in a failure set.
    DuplicateFailure {
        /// The duplicated disk index.
        disk: usize,
    },
    /// The failure pattern is not survivable by this layout.
    DataLoss {
        /// The failure pattern that loses data.
        failed: Vec<usize>,
    },
    /// An operation that requires a data chunk was handed a parity or
    /// spare address.
    NotDataChunk {
        /// Disk index of the offending address.
        disk: usize,
        /// Chunk offset of the offending address.
        offset: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidGeometry(msg) => write!(f, "invalid layout geometry: {msg}"),
            Self::DiskOutOfRange { disk, disks } => {
                write!(f, "disk {disk} out of range (array has {disks})")
            }
            Self::DuplicateFailure { disk } => write!(f, "disk {disk} listed twice"),
            Self::DataLoss { failed } => {
                write!(f, "failure pattern {failed:?} is not survivable")
            }
            Self::NotDataChunk { disk, offset } => {
                write!(f, "chunk d{disk}:{offset} does not hold data")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A disk-array data layout: the mapping from redundancy structure to
/// physical chunks, plus failure analysis and recovery planning.
///
/// Implementations must be deterministic: the same geometry yields the same
/// mapping, so plans and statistics are reproducible.
pub trait Layout: fmt::Debug {
    /// Human-readable name (used in experiment tables), e.g. `RAID5(8)`.
    fn name(&self) -> String;

    /// Number of disks in the array (excluding dedicated hot spares).
    fn disks(&self) -> usize;

    /// Chunks per disk covered by the layout pattern.
    fn chunks_per_disk(&self) -> usize;

    /// Number of arbitrary disk failures always survivable.
    fn fault_tolerance(&self) -> usize;

    /// The role of the chunk at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the array geometry.
    fn chunk_role(&self, addr: ChunkAddr) -> Role;

    /// Whether the failure pattern `failed` is survivable (no data loss).
    /// Must accept patterns larger than [`Layout::fault_tolerance`] — many
    /// are still survivable, and experiment E5 measures exactly that.
    fn survives(&self, failed: &[usize]) -> bool;

    /// Builds the recovery plan for the failure pattern `failed`.
    ///
    /// # Errors
    ///
    /// [`LayoutError::DiskOutOfRange`] / [`LayoutError::DuplicateFailure`]
    /// for malformed patterns and [`LayoutError::DataLoss`] when the pattern
    /// is not survivable.
    fn recovery_plan(
        &self,
        failed: &[usize],
        policy: SparePolicy,
    ) -> Result<RecoveryPlan, LayoutError>;

    /// Fraction of raw capacity holding user data.
    fn efficiency(&self) -> f64 {
        let mut data = 0usize;
        let mut total = 0usize;
        for d in 0..self.disks() {
            for o in 0..self.chunks_per_disk() {
                total += 1;
                if self.chunk_role(ChunkAddr::new(d, o)) == Role::Data {
                    data += 1;
                }
            }
        }
        data as f64 / total as f64
    }

    /// Storage overhead: redundancy bytes per data byte (e.g. `0.25` for a
    /// 4+1 RAID5, `2.0` for 3-replication).
    fn storage_overhead(&self) -> f64 {
        let e = self.efficiency();
        (1.0 - e) / e
    }
}

/// Validates a failure pattern against an array size: in-range, no
/// duplicates. Returns a sorted copy.
pub(crate) fn validate_failures(failed: &[usize], disks: usize) -> Result<Vec<usize>, LayoutError> {
    let mut sorted = failed.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(LayoutError::DuplicateFailure { disk: w[0] });
        }
    }
    if let Some(&d) = sorted.last() {
        if d >= disks {
            return Err(LayoutError::DiskOutOfRange { disk: d, disks });
        }
    }
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_addr_display() {
        assert_eq!(ChunkAddr::new(3, 17).to_string(), "d3:17");
    }

    #[test]
    fn role_parity_classification() {
        assert!(Role::Parity.is_parity());
        assert!(Role::InnerParity.is_parity());
        assert!(!Role::Data.is_parity());
        assert!(!Role::Spare.is_parity());
    }

    #[test]
    fn validate_failures_checks() {
        assert_eq!(validate_failures(&[2, 0], 4).unwrap(), vec![0, 2]);
        assert!(matches!(
            validate_failures(&[1, 1], 4),
            Err(LayoutError::DuplicateFailure { disk: 1 })
        ));
        assert!(matches!(
            validate_failures(&[5], 4),
            Err(LayoutError::DiskOutOfRange { disk: 5, disks: 4 })
        ));
        assert!(validate_failures(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn error_messages() {
        let e = LayoutError::DataLoss { failed: vec![1, 2] };
        assert!(e.to_string().contains("not survivable"));
        let e = LayoutError::NotDataChunk { disk: 3, offset: 7 };
        assert!(e.to_string().contains("d3:7"), "{e}");
    }
}
