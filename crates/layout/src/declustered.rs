//! Parity declustering (Holland & Gibson, 1992) driven by a block design —
//! the strongest single-failure baseline in the OI-RAID comparison and the
//! closest prior art to its outer layer.
//!
//! Logical RAID5 stripes of width `k` are spread over `n = v` disks by
//! iterating the blocks of a `(v, k, 1)`-BIBD: stripe `s` occupies one chunk
//! on each disk of block `s mod b`, with parity rotating within the stripe.
//! Rebuilding a disk reads only `(k−1)/(n−1)` of each survivor — the
//! *declustering ratio* — but the array still tolerates just one failure.

use bibd::Bibd;

use crate::plan::{assign_writes, ChunkRecovery, RecoveryPlan, SparePolicy, WriteTarget};
use crate::traits::{validate_failures, ChunkAddr, Layout, LayoutError, Role};

/// A parity-declustered layout over the points of a `(v, k, 1)`-BIBD.
///
/// # Example
///
/// ```
/// use layout::{Layout, ParityDeclustered, SparePolicy};
///
/// let design = bibd::fano();
/// let l = ParityDeclustered::new(design, 4).unwrap(); // 4 design cycles
/// assert_eq!(l.disks(), 7);
/// let plan = l.recovery_plan(&[0], SparePolicy::Distributed).unwrap();
/// // Every survivor contributes reads (all-disk parallelism):
/// assert!(plan.read_load(7).iter().enumerate().all(|(d, &c)| (c > 0) == (d != 0)));
/// ```
#[derive(Debug, Clone)]
pub struct ParityDeclustered {
    design: Bibd,
    cycles: usize,
    /// `chunk_map[disk][offset] = (stripe, position_in_block)`.
    chunk_map: Vec<Vec<(usize, usize)>>,
    /// `stripe_map[stripe][position] = ChunkAddr`.
    stripe_map: Vec<Vec<ChunkAddr>>,
}

impl ParityDeclustered {
    /// Lays `cycles` full passes of the design over its `v` points/disks.
    /// Each disk receives `r` chunks per cycle.
    ///
    /// # Errors
    ///
    /// [`LayoutError::InvalidGeometry`] if `cycles == 0` or the design does
    /// not have `λ = 1`.
    pub fn new(design: Bibd, cycles: usize) -> Result<Self, LayoutError> {
        if cycles == 0 {
            return Err(LayoutError::InvalidGeometry(
                "cycles must be positive".into(),
            ));
        }
        if !design.is_steiner() {
            return Err(LayoutError::InvalidGeometry(format!(
                "parity declustering requires lambda = 1, got {}",
                design.lambda()
            )));
        }
        let v = design.v();
        let b = design.b();
        let k = design.k();
        let mut chunk_map: Vec<Vec<(usize, usize)>> = vec![Vec::new(); v];
        let mut stripe_map = Vec::with_capacity(b * cycles);
        for s in 0..b * cycles {
            let block = &design.blocks()[s % b];
            let mut stripe = Vec::with_capacity(k);
            for (pos, &p) in block.iter().enumerate() {
                let offset = chunk_map[p].len();
                chunk_map[p].push((s, pos));
                stripe.push(ChunkAddr::new(p, offset));
            }
            stripe_map.push(stripe);
        }
        Ok(Self {
            design,
            cycles,
            chunk_map,
            stripe_map,
        })
    }

    /// The underlying block design.
    pub fn design(&self) -> &Bibd {
        &self.design
    }

    /// Number of design cycles laid out.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// The declustering ratio `α = (k−1)/(n−1)`: the fraction of each
    /// survivor read during a rebuild.
    pub fn declustering_ratio(&self) -> f64 {
        (self.design.k() - 1) as f64 / (self.design.v() - 1) as f64
    }

    /// Which position within stripe `s` holds parity (rotates per stripe).
    fn parity_position(&self, stripe: usize) -> usize {
        stripe % self.design.k()
    }
}

impl Layout for ParityDeclustered {
    fn name(&self) -> String {
        format!("PD({},{},1)", self.design.v(), self.design.k())
    }

    fn disks(&self) -> usize {
        self.design.v()
    }

    fn chunks_per_disk(&self) -> usize {
        self.design.r() * self.cycles
    }

    fn fault_tolerance(&self) -> usize {
        1
    }

    fn chunk_role(&self, addr: ChunkAddr) -> Role {
        let (stripe, pos) = self.chunk_map[addr.disk][addr.offset];
        if pos == self.parity_position(stripe) {
            Role::Parity
        } else {
            Role::Data
        }
    }

    fn survives(&self, failed: &[usize]) -> bool {
        // λ = 1 means any two disks co-occur in some block, hence share a
        // stripe; two lost chunks of one RAID5 stripe are unrecoverable.
        failed.len() <= 1 && failed.iter().all(|&d| d < self.disks())
    }

    fn recovery_plan(
        &self,
        failed: &[usize],
        policy: SparePolicy,
    ) -> Result<RecoveryPlan, LayoutError> {
        let failed = validate_failures(failed, self.disks())?;
        if !self.survives(&failed) {
            return Err(LayoutError::DataLoss { failed });
        }
        let mut items = Vec::new();
        if let [d] = failed[..] {
            for offset in 0..self.chunks_per_disk() {
                let (stripe, pos) = self.chunk_map[d][offset];
                let reads = self.stripe_map[stripe]
                    .iter()
                    .enumerate()
                    .filter(|&(p, _)| p != pos)
                    .map(|(_, &a)| a)
                    .collect();
                items.push(ChunkRecovery {
                    lost: ChunkAddr::new(d, offset),
                    reads,
                    depends: Vec::new(),
                    write: WriteTarget::Spare(0),
                });
            }
        }
        assign_writes(policy, self.disks(), &failed, &mut items);
        Ok(RecoveryPlan::new(self.disks(), failed, items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Layout;

    fn pd(cycles: usize) -> ParityDeclustered {
        ParityDeclustered::new(bibd::fano(), cycles).unwrap()
    }

    #[test]
    fn geometry_from_design() {
        let l = pd(3);
        assert_eq!(l.disks(), 7);
        assert_eq!(l.chunks_per_disk(), 9); // r=3 per cycle x 3
        assert!((l.declustering_ratio() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ParityDeclustered::new(bibd::fano(), 0).is_err());
        let lambda2 = bibd::complete_design(5, 4).unwrap(); // λ = 3
        assert!(ParityDeclustered::new(lambda2, 1).is_err());
    }

    #[test]
    fn chunk_and_stripe_maps_agree() {
        let l = pd(2);
        for d in 0..l.disks() {
            for o in 0..l.chunks_per_disk() {
                let (s, pos) = l.chunk_map[d][o];
                assert_eq!(l.stripe_map[s][pos], ChunkAddr::new(d, o));
            }
        }
    }

    #[test]
    fn parity_fraction_is_one_over_k() {
        let l = pd(3);
        let mut parity = 0;
        let total = l.disks() * l.chunks_per_disk();
        for d in 0..l.disks() {
            for o in 0..l.chunks_per_disk() {
                if l.chunk_role(ChunkAddr::new(d, o)) == Role::Parity {
                    parity += 1;
                }
            }
        }
        assert_eq!(parity * 3, total); // k = 3
        assert!((l.efficiency() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rebuild_load_is_uniform_across_survivors() {
        // λ = 1 with full cycles ⇒ every survivor serves exactly
        // (k−1)·chunks/(v−1) reads... for the Fano layout: disk 0 has 3
        // chunks/cycle, each read pulls 2 chunks from the 2 other disks of
        // the block; every other disk shares exactly one block with disk 0.
        let l = pd(5);
        let plan = l.recovery_plan(&[0], SparePolicy::Distributed).unwrap();
        let load = plan.read_load(7);
        assert_eq!(load[0], 0);
        for (d, &ld) in load.iter().enumerate().skip(1) {
            assert_eq!(ld, 5, "disk {d}"); // 1 shared block x 1 chunk x 5 cycles... x1
        }
        // Reads are perfectly uniform; round-robin writes (15 chunks over 6
        // survivors) add at most one extra chunk of imbalance.
        assert!(plan.balance_ratio() < 1.15, "{}", plan.balance_ratio());
    }

    #[test]
    fn two_failures_lose_data() {
        let l = pd(2);
        assert!(!l.survives(&[0, 1]));
        assert!(matches!(
            l.recovery_plan(&[0, 1], SparePolicy::Dedicated),
            Err(LayoutError::DataLoss { .. })
        ));
    }

    #[test]
    fn larger_design_rebuild_touches_all_disks() {
        let design = bibd::find_design(13, 4).unwrap();
        let l = ParityDeclustered::new(design, 2).unwrap();
        let plan = l.recovery_plan(&[5], SparePolicy::Distributed).unwrap();
        let load = plan.read_load(13);
        for (d, &c) in load.iter().enumerate() {
            assert_eq!(c > 0, d != 5, "disk {d}");
        }
    }
}
