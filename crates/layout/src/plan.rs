//! Recovery plans: the read/write schedule that rebuilds failed disks, with
//! load statistics and a bridge into the [`disksim`] discrete-event engine.

use std::fmt;

use disksim::{DiskSpec, RunResult, SimTime, Simulation, TaskSpec};

use crate::traits::ChunkAddr;

/// Where reconstructed chunks are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparePolicy {
    /// One dedicated hot-spare disk per failed disk; the classic RAID
    /// arrangement. The spare's write bandwidth caps rebuild speed.
    Dedicated,
    /// Reconstructed chunks go to reserved spare space distributed over the
    /// surviving disks (round-robin) — the arrangement declustered layouts
    /// assume, which removes the single-writer bottleneck.
    Distributed,
}

/// Write destination of one reconstructed chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteTarget {
    /// The `i`-th dedicated spare disk (one per failed disk, in sorted
    /// failure order).
    Spare(usize),
    /// Spare space on surviving disk `disk`.
    Surviving {
        /// The surviving disk receiving the chunk.
        disk: usize,
    },
    /// Back to the lost chunk's own address on its own (healthy or healed)
    /// disk. Used by chunk-granular repair plans — latent-sector rewrites
    /// during a self-healing rebuild or scrub — where the "lost" chunk's
    /// disk is still online and the rewrite remaps the sector.
    InPlace,
}

/// Reconstruction of one lost chunk: sources to read, destination to write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRecovery {
    /// The lost chunk.
    pub lost: ChunkAddr,
    /// Chunks that must be read to reconstruct it (possibly empty for
    /// recomputed parity whose sources were already read by earlier items —
    /// planners may share reads by referencing the same addresses).
    pub reads: Vec<ChunkAddr>,
    /// Indices of *earlier* plan items whose reconstructed output is also an
    /// input (multi-failure cascades: a chunk rebuilt by the outer layer may
    /// feed an inner-layer repair). The simulation reads the dependency's
    /// write target after its write completes.
    pub depends: Vec<usize>,
    /// Where the reconstructed chunk is written.
    pub write: WriteTarget,
}

/// A full rebuild schedule for a failure pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPlan {
    disks: usize,
    failed: Vec<usize>,
    items: Vec<ChunkRecovery>,
}

impl RecoveryPlan {
    /// Assembles a plan. `failed` must be sorted; `items` reference only
    /// surviving disks for reads.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a read references a failed or out-of-range disk.
    pub fn new(disks: usize, failed: Vec<usize>, items: Vec<ChunkRecovery>) -> Self {
        debug_assert!(failed.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(items.iter().all(|it| {
            it.reads
                .iter()
                .all(|r| r.disk < disks && !failed.contains(&r.disk))
        }));
        Self {
            disks,
            failed,
            items,
        }
    }

    /// Number of disks in the (pre-failure) array.
    pub fn disks(&self) -> usize {
        self.disks
    }

    /// The failure pattern this plan repairs (sorted).
    pub fn failed(&self) -> &[usize] {
        &self.failed
    }

    /// Per-chunk recovery items.
    pub fn items(&self) -> &[ChunkRecovery] {
        &self.items
    }

    /// Chunks read from each disk (index = disk id; failed disks read 0).
    pub fn read_load(&self, disks: usize) -> Vec<u64> {
        let mut load = vec![0u64; disks];
        for item in &self.items {
            for r in &item.reads {
                load[r.disk] += 1;
            }
        }
        load
    }

    /// Chunks written to each surviving disk under
    /// [`SparePolicy::Distributed`] (zeros under dedicated policy).
    pub fn write_load(&self, disks: usize) -> Vec<u64> {
        let mut load = vec![0u64; disks];
        for item in &self.items {
            match item.write {
                WriteTarget::Surviving { disk } => load[disk] += 1,
                WriteTarget::InPlace => load[item.lost.disk] += 1,
                WriteTarget::Spare(_) => {}
            }
        }
        load
    }

    /// Total chunks read across all disks.
    pub fn total_reads(&self) -> u64 {
        self.items.iter().map(|i| i.reads.len() as u64).sum()
    }

    /// Number of lost chunks being reconstructed.
    pub fn total_writes(&self) -> u64 {
        self.items.len() as u64
    }

    /// Ratio of the busiest surviving disk's I/O count (reads + distributed
    /// writes) to the average — 1.0 is perfectly balanced. This is the E6
    /// balance metric.
    pub fn balance_ratio(&self) -> f64 {
        let reads = self.read_load(self.disks);
        let writes = self.write_load(self.disks);
        let per_disk: Vec<u64> = (0..self.disks)
            .filter(|d| !self.failed.contains(d))
            .map(|d| reads[d] + writes[d])
            .collect();
        if per_disk.is_empty() {
            return 1.0;
        }
        let max = *per_disk.iter().max().expect("nonempty") as f64;
        let mean = per_disk.iter().sum::<u64>() as f64 / per_disk.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Groups the plan's reads by source disk: the per-disk work queues a
    /// parallel executor drains with one worker thread per surviving disk.
    ///
    /// Returns `(disk, queue)` pairs for every disk the plan reads from,
    /// ascending by disk id; each queue lists `(item_index, addr)` in plan
    /// order, so a worker draining its queue front-to-back roughly follows
    /// the planner's intended schedule.
    pub fn reads_by_disk(&self) -> Vec<(usize, Vec<(usize, ChunkAddr)>)> {
        let mut queues: Vec<Vec<(usize, ChunkAddr)>> = vec![Vec::new(); self.disks];
        for (idx, item) in self.items.iter().enumerate() {
            for r in &item.reads {
                queues[r.disk].push((idx, *r));
            }
        }
        queues
            .into_iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .collect()
    }

    /// Executes the plan on the discrete-event simulator and returns timing.
    ///
    /// The simulated array has one disk per layout disk (failed ones receive
    /// no I/O) plus one spare disk per failed disk when the plan was built
    /// with [`SparePolicy::Dedicated`]. Each lost chunk becomes `reads.len()`
    /// read tasks plus one dependent write of `chunk_bytes`.
    pub fn simulate(&self, spec: &DiskSpec, chunk_bytes: u64) -> SimulatedRecovery {
        let mut sim = Simulation::new();
        let disk_ids: Vec<_> = (0..self.disks)
            .map(|_| sim.add_disk(spec.clone()))
            .collect();
        let spare_ids: Vec<_> = self
            .failed
            .iter()
            .map(|_| sim.add_disk(spec.clone()))
            .collect();
        let target_of = |item: &ChunkRecovery| match item.write {
            WriteTarget::Spare(i) => spare_ids[i],
            WriteTarget::Surviving { disk } => disk_ids[disk],
            WriteTarget::InPlace => disk_ids[item.lost.disk],
        };
        let mut write_tasks = Vec::with_capacity(self.items.len());
        for item in &self.items {
            let mut reads: Vec<_> = item
                .reads
                .iter()
                .map(|r| sim.add_task(TaskSpec::read(disk_ids[r.disk], chunk_bytes)))
                .collect();
            // Inputs produced by earlier repairs: read them from wherever
            // they were written, after that write completed.
            for &dep in &item.depends {
                let dep_write: disksim::TaskId = write_tasks[dep];
                let dep_target = target_of(&self.items[dep]);
                reads.push(sim.add_task(TaskSpec::read(dep_target, chunk_bytes).after(dep_write)));
            }
            let target = target_of(item);
            let w = sim.add_task(TaskSpec::write(target, chunk_bytes).after_all(reads));
            write_tasks.push(w);
        }
        let result = sim.run();
        SimulatedRecovery {
            rebuild_time: result.makespan(),
            result,
        }
    }
}

impl fmt::Display for RecoveryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery of {:?}: {} chunks, {} reads, balance {:.2}",
            self.failed,
            self.total_writes(),
            self.total_reads(),
            self.balance_ratio()
        )
    }
}

/// Timing results of a simulated rebuild.
#[derive(Debug)]
pub struct SimulatedRecovery {
    /// Wall-clock rebuild completion time.
    pub rebuild_time: SimTime,
    /// The raw simulation result (per-disk stats, etc.).
    pub result: RunResult,
}

/// Round-robin assignment of distributed-spare write targets over surviving
/// disks, skipping the read sources of the item when possible would be
/// over-engineering — the simple rotation already balances writes exactly.
/// Planners call this to fill [`ChunkRecovery::write`].
pub fn assign_writes(
    policy: SparePolicy,
    disks: usize,
    failed: &[usize],
    items: &mut [ChunkRecovery],
) {
    // Chunk-granular repair plans may carry items whose "lost" chunk sits
    // on a healthy disk (a latent sector being re-derived): those are
    // rewritten in place regardless of the spare policy, and they do not
    // consume a rotation slot.
    match policy {
        SparePolicy::Dedicated => {
            for item in items.iter_mut() {
                item.write = match failed.iter().position(|&d| d == item.lost.disk) {
                    Some(spare) => WriteTarget::Spare(spare),
                    None => WriteTarget::InPlace,
                };
            }
        }
        SparePolicy::Distributed => {
            let survivors: Vec<usize> = (0..disks).filter(|d| !failed.contains(d)).collect();
            assert!(!survivors.is_empty(), "no surviving disks to hold spares");
            let mut slot = 0;
            for item in items.iter_mut() {
                if !failed.contains(&item.lost.disk) {
                    item.write = WriteTarget::InPlace;
                    continue;
                }
                item.write = WriteTarget::Surviving {
                    disk: survivors[slot % survivors.len()],
                };
                slot += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(lost: ChunkAddr, reads: Vec<ChunkAddr>) -> ChunkRecovery {
        ChunkRecovery {
            lost,
            reads,
            depends: Vec::new(),
            write: WriteTarget::Spare(0),
        }
    }

    fn toy_plan() -> RecoveryPlan {
        // 3 disks, disk 0 failed, two chunks each read from disks 1 and 2.
        let items = vec![
            item(
                ChunkAddr::new(0, 0),
                vec![ChunkAddr::new(1, 0), ChunkAddr::new(2, 0)],
            ),
            item(
                ChunkAddr::new(0, 1),
                vec![ChunkAddr::new(1, 1), ChunkAddr::new(2, 1)],
            ),
        ];
        RecoveryPlan::new(3, vec![0], items)
    }

    #[test]
    fn load_accounting() {
        let plan = toy_plan();
        assert_eq!(plan.read_load(3), vec![0, 2, 2]);
        assert_eq!(plan.total_reads(), 4);
        assert_eq!(plan.total_writes(), 2);
        assert!((plan.balance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assign_writes_dedicated() {
        let mut items = toy_plan().items().to_vec();
        assign_writes(SparePolicy::Dedicated, 3, &[0], &mut items);
        assert!(items.iter().all(|i| i.write == WriteTarget::Spare(0)));
    }

    #[test]
    fn assign_writes_distributed_round_robin() {
        let mut items = toy_plan().items().to_vec();
        assign_writes(SparePolicy::Distributed, 3, &[0], &mut items);
        assert_eq!(items[0].write, WriteTarget::Surviving { disk: 1 });
        assert_eq!(items[1].write, WriteTarget::Surviving { disk: 2 });
    }

    #[test]
    fn assign_writes_in_place_for_healthy_disk_items() {
        // Item 0's "lost" chunk sits on healthy disk 1 (a latent sector
        // repair); item 1 is a real loss on failed disk 0.
        let mut items = vec![
            item(ChunkAddr::new(1, 5), vec![ChunkAddr::new(2, 0)]),
            item(ChunkAddr::new(0, 0), vec![ChunkAddr::new(2, 1)]),
        ];
        assign_writes(SparePolicy::Distributed, 3, &[0], &mut items);
        assert_eq!(items[0].write, WriteTarget::InPlace);
        assert_eq!(
            items[1].write,
            WriteTarget::Surviving { disk: 1 },
            "in-place items do not consume a rotation slot"
        );
        assign_writes(SparePolicy::Dedicated, 3, &[0], &mut items);
        assert_eq!(items[0].write, WriteTarget::InPlace);
        assert_eq!(items[1].write, WriteTarget::Spare(0));
        let plan = RecoveryPlan::new(3, vec![0], items);
        assert_eq!(
            plan.write_load(3),
            vec![0, 1, 0],
            "in-place write lands on the lost chunk's own disk"
        );
        // The simulator routes the in-place write to the chunk's own disk.
        let spec = DiskSpec::new(1 << 20, 1e6, SimTime::ZERO);
        assert!(plan.simulate(&spec, 1 << 20).rebuild_time > SimTime::ZERO);
    }

    #[test]
    fn simulate_dedicated_spare_bottleneck() {
        // With a dedicated spare, both writes land on one disk: rebuild time
        // is at least 2 write services.
        let plan = toy_plan();
        let spec = DiskSpec::new(1 << 20, 1e6, SimTime::ZERO); // 1 MB/s, no seek
        let sim = plan.simulate(&spec, 1 << 20); // 1 MiB chunks ≈ 1.049 s each
        assert!(sim.rebuild_time.as_secs_f64() > 3.0); // read + 2 writes serialized
    }

    #[test]
    fn simulate_distributed_faster_than_dedicated() {
        let mut items = toy_plan().items().to_vec();
        assign_writes(SparePolicy::Distributed, 3, &[0], &mut items);
        let dist = RecoveryPlan::new(3, vec![0], items);
        let spec = DiskSpec::new(1 << 20, 1e6, SimTime::ZERO);
        let t_dedicated = toy_plan().simulate(&spec, 1 << 20).rebuild_time;
        let t_distributed = dist.simulate(&spec, 1 << 20).rebuild_time;
        assert!(t_distributed <= t_dedicated);
    }

    #[test]
    fn reads_by_disk_queues_cover_the_plan() {
        let plan = toy_plan();
        let queues = plan.reads_by_disk();
        assert_eq!(queues.len(), 2, "two surviving disks are read");
        assert_eq!(queues[0].0, 1);
        assert_eq!(
            queues[0].1,
            vec![(0, ChunkAddr::new(1, 0)), (1, ChunkAddr::new(1, 1))]
        );
        assert_eq!(queues[1].0, 2);
        let total: usize = queues.iter().map(|(_, q)| q.len()).sum();
        assert_eq!(total as u64, plan.total_reads());
    }

    #[test]
    fn display_summary() {
        let s = toy_plan().to_string();
        assert!(s.contains("2 chunks"));
        assert!(s.contains("4 reads"));
    }
}
