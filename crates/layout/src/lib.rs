//! Disk-array data layouts: the vocabulary shared by OI-RAID and every
//! baseline it is evaluated against.
//!
//! A [`Layout`] maps logical redundancy structure onto physical
//! `(disk, chunk-offset)` addresses and, crucially for this reproduction,
//! answers *"what must be read from where to rebuild a failed disk?"* as a
//! [`RecoveryPlan`]. Recovery plans drive both the analytical load statistics
//! (per-disk read distribution, bottleneck ratios) and the discrete-event
//! simulation in [`disksim`] that produces rebuild times.
//!
//! # Provided layouts (the paper's comparison set)
//!
//! * [`FlatRaid5`] — one RAID5 stripe across all `n` disks with rotating
//!   parity; rebuild reads *everything* from every survivor.
//! * [`Raid50`] — independent RAID5 groups (striped); rebuild stays inside
//!   the afflicted group.
//! * [`FlatRaid6`] — `n`-wide dual parity; tolerance 2.
//! * [`ParityDeclustered`] — Holland–Gibson parity declustering driven by a
//!   `(v, k, 1)`-BIBD: logical RAID5 stripes of width `k` spread over `n = v`
//!   disks, rebuilding a disk touches all survivors at fraction
//!   `(k−1)/(n−1)` each.
//!
//! OI-RAID itself lives in the `oi-raid` crate and implements the same
//! [`Layout`] trait, so every experiment treats contribution and baselines
//! uniformly.
//!
//! # Example
//!
//! ```
//! use layout::{FlatRaid5, Layout, SparePolicy};
//!
//! let l = FlatRaid5::new(8, 64).unwrap();
//! let plan = l.recovery_plan(&[3], SparePolicy::Dedicated).unwrap();
//! // RAID5 reads every surviving chunk of every row:
//! let load = plan.read_load(l.disks());
//! assert!(load.iter().enumerate().all(|(d, &c)| c == if d == 3 { 0 } else { 64 }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod declustered;
mod plan;
mod raid5;
mod raid6;
mod traits;

pub use declustered::ParityDeclustered;
pub use plan::{
    assign_writes, ChunkRecovery, RecoveryPlan, SimulatedRecovery, SparePolicy, WriteTarget,
};
pub use raid5::{FlatRaid5, Raid50};
pub use raid6::FlatRaid6;
pub use traits::{ChunkAddr, Layout, LayoutError, Role};
