//! Property tests over the baseline layout families: the structural
//! invariants every `Layout` must satisfy for arbitrary geometry.

use layout::{
    ChunkAddr, FlatRaid5, FlatRaid6, Layout, ParityDeclustered, Raid50, Role, SparePolicy,
};
use proptest::prelude::*;

fn layouts(disks: usize, chunks: usize) -> Vec<Box<dyn Layout>> {
    let mut out: Vec<Box<dyn Layout>> = vec![
        Box::new(FlatRaid5::new(disks.max(3), chunks).expect("raid5")),
        Box::new(FlatRaid6::new(disks.max(4), chunks).expect("raid6")),
    ];
    if disks.is_multiple_of(3) && disks >= 9 {
        out.push(Box::new(Raid50::new(disks / 3, 3, chunks).expect("raid50")));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parity_fraction_matches_efficiency(
        disks in 4usize..20,
        chunks in 1usize..12,
    ) {
        for l in layouts(disks, chunks) {
            let mut data = 0usize;
            let mut total = 0usize;
            for d in 0..l.disks() {
                for o in 0..l.chunks_per_disk() {
                    total += 1;
                    if l.chunk_role(ChunkAddr::new(d, o)) == Role::Data {
                        data += 1;
                    }
                }
            }
            let eff = data as f64 / total as f64;
            prop_assert!((eff - l.efficiency()).abs() < 1e-12, "{}", l.name());
        }
    }

    #[test]
    fn single_failure_plan_is_complete_and_clean(
        disks in 4usize..20,
        chunks in 1usize..10,
        fail_pick in any::<u32>(),
    ) {
        for l in layouts(disks, chunks) {
            let d = fail_pick as usize % l.disks();
            for policy in [SparePolicy::Dedicated, SparePolicy::Distributed] {
                let plan = l.recovery_plan(&[d], policy).expect("single failure");
                prop_assert_eq!(plan.total_writes() as usize, l.chunks_per_disk());
                let load = plan.read_load(l.disks());
                prop_assert_eq!(load[d], 0, "{}: no reads from the failed disk", l.name());
                // Every lost chunk appears exactly once.
                let mut offsets: Vec<usize> =
                    plan.items().iter().map(|i| i.lost.offset).collect();
                offsets.sort_unstable();
                offsets.dedup();
                prop_assert_eq!(offsets.len(), l.chunks_per_disk());
            }
        }
    }

    #[test]
    fn declustered_layout_balances_for_any_cycles(
        cycles in 1usize..6,
        fail_pick in any::<u32>(),
    ) {
        let design = bibd::fano();
        let l = ParityDeclustered::new(design, cycles).expect("pd");
        let d = fail_pick as usize % l.disks();
        let plan = l.recovery_plan(&[d], SparePolicy::Distributed).expect("plan");
        let load = plan.read_load(l.disks());
        // Perfect read balance is a theorem for λ=1 full cycles.
        let survivors: Vec<u64> = (0..l.disks()).filter(|&x| x != d).map(|x| load[x]).collect();
        let first = survivors[0];
        prop_assert!(survivors.iter().all(|&c| c == first), "{load:?}");
    }

    #[test]
    fn survives_agrees_with_tolerance_for_all_small_patterns(
        disks in 4usize..12,
        chunks in 1usize..4,
    ) {
        for l in layouts(disks, chunks) {
            let t = l.fault_tolerance();
            let n = l.disks();
            // All single and double patterns.
            for a in 0..n {
                prop_assert_eq!(l.survives(&[a]), t >= 1, "{}", l.name());
                for b in a + 1..n {
                    if t >= 2 {
                        prop_assert!(l.survives(&[a, b]), "{} [{a},{b}]", l.name());
                    }
                }
            }
        }
    }
}
