//! Concurrency: recording from many threads must never lose a count —
//! every increment is a relaxed atomic on a fixed-size table, so the
//! totals have to add up exactly once the writers join.

use std::sync::Arc;

use telemetry::{Histogram, Registry, Tracer};

#[test]
fn n_thread_record_loses_nothing() {
    telemetry::set_enabled(true);
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Arc::new(Histogram::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move || {
                // Values spread across the full bucket range, deterministic
                // per thread.
                let mut x = (t + 1) * 0x9E37_79B9;
                for _ in 0..PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    h.record(x >> (x % 48));
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD, "no recorded value lost");
    assert_eq!(
        snap.bucket_total(),
        THREADS * PER_THREAD,
        "per-bucket counts sum to the total"
    );
    assert!(snap.p50() <= snap.p99() && snap.p99() <= snap.max);
}

#[test]
fn concurrent_recording_through_registry_handles() {
    telemetry::set_enabled(true);
    let reg = Arc::new(Registry::new());
    let c = reg.counter("ops_total", "ops", &[]);
    let h = reg.histogram("lat_ns", "latency", &[]);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (c, h) = (c.clone(), Arc::clone(&h));
            s.spawn(move || {
                for i in 0..5_000u64 {
                    c.inc();
                    h.record(i);
                }
            });
        }
    });
    assert_eq!(c.get(), 20_000);
    assert_eq!(h.count(), 20_000);
    let text = reg.prometheus();
    assert!(text.contains("ops_total 20000"));
    telemetry::lint_prometheus(&text).expect("clean exposition");
}

#[test]
fn tracer_ring_survives_concurrent_spans() {
    telemetry::set_enabled(true);
    let t = Tracer::new(64);
    let root = t.span("root");
    std::thread::scope(|s| {
        for w in 0..8 {
            let r = &root;
            s.spawn(move || {
                for i in 0..100 {
                    let _sp = r.child(format!("w{w}-{i}"));
                }
            });
        }
    });
    drop(root);
    // 801 spans through a 64-slot ring: capacity retained, the rest
    // counted as dropped, nothing lost silently.
    assert_eq!(t.records().len(), 64);
    assert_eq!(t.dropped() as usize, 801 - 64);
}
