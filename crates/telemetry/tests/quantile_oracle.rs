//! Property tests pinning the bucketed histogram's quantiles to the exact
//! nearest-rank oracle ([`telemetry::exact_percentile_sorted`] — the same
//! function `disksim`'s summaries route through).
//!
//! The log-bucketed layout (4 sub-bucket bits) guarantees every quantile
//! is at least the exact value and overshoots it by at most one part in
//! sixteen (plus one for integer rounding); values below 16 are exact.

use proptest::prelude::*;
use telemetry::{exact_percentile_sorted, Histogram};

proptest! {
    #[test]
    fn bucketed_quantiles_bound_the_exact_oracle(
        samples in prop::collection::vec(0u64..2_000_000_000, 1..400),
        q_permille in prop::collection::vec(0u64..1001, 1..8),
    ) {
        telemetry::set_enabled(true);
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for qp in q_permille {
            let q = qp as f64 / 1000.0;
            let exact = exact_percentile_sorted(&sorted, q);
            let bucketed = snap.quantile(q);
            prop_assert!(
                bucketed >= exact,
                "quantile never under-estimates: q={} bucketed={} exact={}",
                q, bucketed, exact
            );
            prop_assert!(
                bucketed as f64 <= exact as f64 * (1.0 + 1.0 / 16.0) + 1.0,
                "relative error bounded by one sub-bucket: q={} bucketed={} exact={}",
                q, bucketed, exact
            );
        }
        // Sanity ordering the exporters rely on.
        prop_assert!(snap.p50() <= snap.p90());
        prop_assert!(snap.p90() <= snap.p99());
        prop_assert!(snap.p99() <= snap.p999());
        prop_assert!(snap.p999() <= snap.max);
    }

    #[test]
    fn small_values_are_exact(
        samples in prop::collection::vec(0u64..16, 1..200),
        q_permille in 0u64..1001,
    ) {
        telemetry::set_enabled(true);
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        let q = q_permille as f64 / 1000.0;
        prop_assert_eq!(
            h.snapshot().quantile(q),
            exact_percentile_sorted(&sorted, q),
            "values below 16 land in unit-width buckets"
        );
    }
}
