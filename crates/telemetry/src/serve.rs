//! A zero-dependency scrape endpoint over `std::net::TcpListener`.
//!
//! [`ScrapeServer::start`] spawns one background thread that answers
//! plain HTTP/1.1 GETs, so a live rebuild can be watched from `curl` (or
//! scraped by Prometheus) without pulling a web framework into the tree:
//!
//! | path | content | body |
//! |---|---|---|
//! | `/metrics` | `text/plain` | Prometheus exposition of the registry |
//! | `/metrics.json` | `application/json` | the registry's JSON render |
//! | `/traces` | `application/json` | snapshot of the global trace ring |
//! | `/events` | `application/json` | snapshot of the flight recorder |
//! | `/progress` | `application/json` | live rebuild progress (if attached) |
//! | `/health` | `text/plain` | `ok` |
//!
//! The listener is non-blocking and polled with a short sleep, so the
//! server thread notices a stop request promptly; [`ScrapeServer`] stops
//! and joins on drop. Exports are built from atomic snapshots (registry
//! lock held only while rendering, event rings seqlock-validated), so a
//! scrape during a rebuild never blocks the rebuild and never observes a
//! torn export.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{Progress, Registry};

/// A running scrape endpoint; stops and joins its thread on drop.
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `reg` — and, when given, `progress` — in a
    /// background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures from the socket layer.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        reg: Arc<Registry>,
        progress: Option<Arc<Progress>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("oi-scrape".into())
            .spawn(move || serve_loop(listener, reg, progress, stop2))?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server thread to exit and joins it. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(
    listener: TcpListener,
    reg: Arc<Registry>,
    progress: Option<Arc<Progress>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => handle_conn(stream, &reg, progress.as_deref()),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Reads one request line, writes one response, closes. Any I/O error
/// just drops the connection — a scraper's problem, not the store's.
fn handle_conn(mut stream: TcpStream, reg: &Registry, progress: Option<&Progress>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1024];
    let mut filled = 0usize;
    // Read until the request line is complete (first CRLF); headers are
    // irrelevant for GET and ignored.
    loop {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if buf[..filled].windows(2).any(|w| w == b"\r\n") || filled == buf.len() {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf[..filled]);
    let mut parts = request.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return,
    };
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "GET only\n".into())
    } else {
        route(path, reg, progress)
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn route(
    path: &str,
    reg: &Registry,
    progress: Option<&Progress>,
) -> (&'static str, &'static str, String) {
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", reg.prometheus()),
        "/metrics.json" => ("200 OK", "application/json", reg.json()),
        "/traces" => ("200 OK", "application/json", crate::traces().to_json()),
        "/events" => ("200 OK", "application/json", crate::flight().to_json()),
        "/progress" => ("200 OK", "application/json", progress_json(progress)),
        "/health" | "/" => ("200 OK", "text/plain", "ok\n".into()),
        _ => ("404 Not Found", "text/plain", "not found\n".into()),
    }
}

fn progress_json(progress: Option<&Progress>) -> String {
    let Some(p) = progress else {
        return "{\"attached\":false}".into();
    };
    let s = p.snapshot();
    format!(
        "{{\"attached\":true,\"total_chunks\":{},\"chunks_combined\":{},\"chunks_written\":{},\
         \"resumed_chunks\":{},\"bytes_read\":{},\"bytes_written\":{},\"elapsed_ns\":{},\
         \"fraction\":{:.6},\"rate_mib_s\":{:.3},\"eta_ns\":{},\"finished\":{}}}",
        s.total_chunks,
        s.chunks_combined,
        s.chunks_written,
        s.resumed_chunks,
        s.bytes_read,
        s.bytes_written,
        s.elapsed.as_nanos(),
        s.fraction,
        s.rate_mib_s,
        s.eta.map_or(-1i128, |d| d.as_nanos() as i128),
        s.finished
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal test client: one GET, returns (status line, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status = response.lines().next().unwrap_or("").to_string();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_all_routes() {
        crate::set_enabled(true);
        let reg = Arc::new(Registry::new());
        reg.counter("oi_test_total", "Test counter", &[]).inc_by(3);
        let progress = Arc::new(Progress::new());
        progress.begin(10);
        progress.chunk_combined();
        let server =
            ScrapeServer::start("127.0.0.1:0", Arc::clone(&reg), Some(Arc::clone(&progress)))
                .expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/health");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"));
        assert!(body.contains("oi_test_total 3"));
        crate::lint_prometheus(&body).expect("scraped exposition lints clean");

        let (status, body) = get(addr, "/metrics.json");
        assert!(status.contains("200"));
        assert!(body.contains("\"oi_test_total\""));

        let (status, body) = get(addr, "/traces");
        assert!(status.contains("200"));
        assert!(body.contains("\"events\":["), "{body}");

        let (status, body) = get(addr, "/events");
        assert!(status.contains("200"));
        assert!(body.starts_with("{\"dropped\":"));

        let (status, body) = get(addr, "/progress");
        assert!(status.contains("200"));
        assert!(body.contains("\"attached\":true"));
        assert!(body.contains("\"total_chunks\":10"));

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");
    }

    #[test]
    fn progress_route_without_attachment() {
        let server =
            ScrapeServer::start("127.0.0.1:0", Arc::new(Registry::new()), None).expect("bind");
        let (status, body) = get(server.local_addr(), "/progress");
        assert!(status.contains("200"));
        assert_eq!(body, "{\"attached\":false}");
    }

    #[test]
    fn stop_is_idempotent_and_drop_joins() {
        let mut server =
            ScrapeServer::start("127.0.0.1:0", Arc::new(Registry::new()), None).expect("bind");
        let addr = server.local_addr();
        let (status, _) = get(addr, "/health");
        assert!(status.contains("200"));
        server.stop();
        server.stop();
        assert!(
            TcpStream::connect_timeout(&addr.to_owned(), Duration::from_millis(200)).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        write!(s, "GET /health HTTP/1.1\r\n\r\n")?;
                        let mut out = String::new();
                        s.read_to_string(&mut out).map(|_| out)
                    })
                    .map(|out| out.is_empty())
                    .unwrap_or(true),
            "stopped server no longer answers"
        );
    }
}
