//! Exposition: Prometheus text format and JSON rendering of a
//! [`Registry`], plus an in-tree linter for the Prometheus format used by
//! CI to validate what the `stats` example emits.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

use crate::registry::{Metric, Registry};

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Registry {
    /// Renders every registered series in the Prometheus text exposition
    /// format (`# HELP`/`# TYPE` headers, cumulative histogram buckets
    /// with `le` labels, `_sum`/`_count`). The output passes
    /// [`crate::lint_prometheus`].
    pub fn prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, labels), metric) in &inner.metrics {
            if last_name != Some(name.as_str()) {
                let help = inner.help.get(name).map(String::as_str).unwrap_or("");
                let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
                let _ = writeln!(out, "# TYPE {name} {}", type_of(metric));
                last_name = Some(name.as_str());
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (ub, n) in snap.nonzero_buckets() {
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels(labels, Some(("le", &ub.to_string())))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {}",
                        render_labels(labels, Some(("le", "+Inf"))),
                        snap.bucket_total()
                    );
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        render_labels(labels, None),
                        snap.sum
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        render_labels(labels, None),
                        snap.bucket_total()
                    );
                }
            }
        }
        out
    }

    /// Renders every registered series as a JSON document:
    /// `{"metrics": [{name, type, help, labels, …}]}` with quantile
    /// summaries and `[upper_bound, count]` bucket pairs for histograms.
    pub fn json(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::from("{\"metrics\":[");
        let mut first = true;
        for ((name, labels), metric) in &inner.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            let help = inner.help.get(name).map(String::as_str).unwrap_or("");
            let _ = write!(
                out,
                "{{\"name\":{},\"type\":\"{}\",\"help\":{},\"labels\":{{",
                json_escape(name),
                type_of(metric),
                json_escape(help)
            );
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_escape(k), json_escape(v));
            }
            out.push('}');
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, ",\"value\":{}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, ",\"value\":{}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
                        s.count,
                        s.sum,
                        s.max,
                        s.mean(),
                        s.p50(),
                        s.p90(),
                        s.p99(),
                        s.p999()
                    );
                    for (i, (ub, n)) in s.nonzero_buckets().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{ub},{n}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn type_of(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// Renders `s` as a quoted JSON string literal (quotes included), with
/// the standard escapes. Shared by the registry's JSON export and by
/// report serializers elsewhere in the workspace.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    line_no: usize,
}

/// Parses `name{l="v",…} value [timestamp]`; pushes errors, returns None
/// on malformed lines.
fn parse_sample(line: &str, line_no: usize, errors: &mut Vec<String>) -> Option<Sample> {
    let bad = |errors: &mut Vec<String>, what: &str| {
        errors.push(format!("line {line_no}: {what}: {line:?}"));
        None
    };
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return bad(errors, "invalid metric name");
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(r) = rest.strip_prefix('{') {
        let Some(close) = r.find('}') else {
            return bad(errors, "unterminated label set");
        };
        let body = &r[..close];
        rest = &r[close + 1..];
        if !body.is_empty() {
            // Label values are quoted and may not contain unescaped quotes,
            // so splitting on '",' after a quote is unambiguous for the
            // simple values this linter faces; escapes are validated below.
            for pair in split_label_pairs(body) {
                let Some(eq) = pair.find('=') else {
                    return bad(errors, "label without '='");
                };
                let (k, v) = (&pair[..eq], &pair[eq + 1..]);
                if !valid_metric_name(k) {
                    return bad(errors, "invalid label name");
                }
                let Some(v) = v.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                    return bad(errors, "label value not quoted");
                };
                if has_invalid_escape(v) {
                    return bad(errors, "invalid escape in label value");
                }
                labels.push((k.to_string(), v.to_string()));
            }
        }
    }
    let mut fields = rest.split_whitespace();
    let Some(value_str) = fields.next() else {
        return bad(errors, "missing sample value");
    };
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => match v.parse::<f64>() {
            Ok(v) => v,
            Err(_) => return bad(errors, "unparsable sample value"),
        },
    };
    if let Some(ts) = fields.next() {
        if ts.parse::<i64>().is_err() {
            return bad(errors, "unparsable timestamp");
        }
    }
    if fields.next().is_some() {
        return bad(errors, "trailing garbage after sample");
    }
    labels.sort();
    Some(Sample {
        name: name.to_string(),
        labels,
        value,
        line_no,
    })
}

fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut pairs = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                pairs.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
        if c != '\\' {
            escaped = false;
        }
    }
    if start < body.len() {
        pairs.push(&body[start..]);
    }
    pairs
}

fn has_invalid_escape(v: &str) -> bool {
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') | Some('"') | Some('n') => {}
                _ => return true,
            }
        } else if c == '"' {
            return true; // unescaped quote inside a value
        }
    }
    false
}

/// Validates Prometheus text exposition format.
///
/// Checks, per the exposition spec and the subset CI relies on:
///
/// * every sample's metric family has `# HELP` and `# TYPE` lines that
///   appear **before** its first sample, with a known type, at most once;
/// * metric and label names are well-formed, label values are quoted with
///   valid escapes, sample values parse;
/// * histogram families have `_sum` and `_count` series, a `le="+Inf"`
///   bucket whose value equals `_count`, and cumulative bucket counts
///   that are monotone non-decreasing in ascending `le`.
///
/// Returns all violations found (empty `Ok(())` when clean).
///
/// # Errors
///
/// `Err` carries one message per violation, with line numbers.
pub fn lint_prometheus(text: &str) -> Result<(), Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashSet<String> = HashSet::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut declared_before: HashSet<String> = HashSet::new();
    let mut sampled: HashSet<String> = HashSet::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("HELP"), Some(name), _) => {
                    if !helps.insert(name.to_string()) {
                        errors.push(format!("line {line_no}: duplicate HELP for {name}"));
                    }
                }
                (Some("TYPE"), Some(name), Some(ty)) => {
                    if !matches!(
                        ty,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        errors.push(format!("line {line_no}: unknown TYPE {ty:?} for {name}"));
                    }
                    if types.insert(name.to_string(), ty.to_string()).is_some() {
                        errors.push(format!("line {line_no}: duplicate TYPE for {name}"));
                    }
                    if sampled.contains(name) {
                        errors.push(format!(
                            "line {line_no}: TYPE for {name} appears after its samples"
                        ));
                    }
                    declared_before.insert(name.to_string());
                }
                (Some("TYPE"), Some(name), None) => {
                    errors.push(format!("line {line_no}: TYPE without a type for {name}"));
                }
                _ => errors.push(format!("line {line_no}: malformed comment: {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        if let Some(s) = parse_sample(line, line_no, &mut errors) {
            let family = family_of(&s.name, &types);
            sampled.insert(family.clone());
            if !declared_before.contains(&family) {
                errors.push(format!(
                    "line {line_no}: sample of {family} before (or without) its # TYPE",
                ));
            }
            if !helps.contains(&family) {
                errors.push(format!("line {line_no}: no # HELP for {family}"));
            }
            samples.push(s);
        }
    }

    // Histogram family checks.
    for (family, ty) in &types {
        if ty != "histogram" {
            continue;
        }
        // Group buckets by label set (minus `le`).
        type BucketsBySeries = BTreeMap<Vec<(String, String)>, Vec<(f64, f64, usize)>>;
        let mut buckets: BucketsBySeries = BTreeMap::new();
        let mut sums: HashSet<Vec<(String, String)>> = HashSet::new();
        let mut counts: HashMap<Vec<(String, String)>, f64> = HashMap::new();
        for s in &samples {
            if s.name == format!("{family}_bucket") {
                let le = s.labels.iter().find(|(k, _)| k == "le");
                let Some((_, le)) = le else {
                    errors.push(format!("line {}: {family}_bucket without le", s.line_no));
                    continue;
                };
                let le_val = match le.as_str() {
                    "+Inf" => f64::INFINITY,
                    v => match v.parse::<f64>() {
                        Ok(v) => v,
                        Err(_) => {
                            errors.push(format!("line {}: bad le value {le:?}", s.line_no));
                            continue;
                        }
                    },
                };
                let base: Vec<(String, String)> = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                buckets
                    .entry(base)
                    .or_default()
                    .push((le_val, s.value, s.line_no));
            } else if s.name == format!("{family}_sum") {
                sums.insert(s.labels.clone());
            } else if s.name == format!("{family}_count") {
                counts.insert(s.labels.clone(), s.value);
            }
        }
        if buckets.is_empty() {
            errors.push(format!("histogram {family} has no _bucket series"));
        }
        for (base, mut series) in buckets {
            let label_desc = if base.is_empty() {
                String::from("{}")
            } else {
                format!("{base:?}")
            };
            series.sort_by(|a, b| a.0.total_cmp(&b.0));
            if series.last().map(|(le, _, _)| *le) != Some(f64::INFINITY) {
                errors.push(format!(
                    "histogram {family}{label_desc}: missing le=\"+Inf\""
                ));
            }
            for w in series.windows(2) {
                if w[1].1 < w[0].1 {
                    errors.push(format!(
                        "line {}: histogram {family}{label_desc}: bucket counts not monotone \
                         ({} after {})",
                        w[1].2, w[1].1, w[0].1
                    ));
                }
            }
            if !sums.contains(&base) {
                errors.push(format!("histogram {family}{label_desc}: missing _sum"));
            }
            match counts.get(&base) {
                None => errors.push(format!("histogram {family}{label_desc}: missing _count")),
                Some(count) => {
                    if let Some((le, v, line)) = series.last() {
                        if le.is_infinite() && v != count {
                            errors.push(format!(
                                "line {line}: histogram {family}{label_desc}: le=\"+Inf\" ({v}) \
                                 != _count ({count})"
                            ));
                        }
                    }
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// The metric family a sample belongs to: histograms/summaries expose
/// `name_bucket` / `name_sum` / `name_count` child series.
fn family_of(sample_name: &str, types: &HashMap<String, String>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if let Some(ty) = types.get(base) {
                if ty == "histogram" || ty == "summary" {
                    return base.to_string();
                }
            }
        }
    }
    sample_name.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn populated() -> Registry {
        crate::set_enabled(true);
        let reg = Registry::new();
        reg.counter("oi_reads_total", "Reads", &[("disk", "0")])
            .inc_by(7);
        reg.counter("oi_reads_total", "Reads", &[("disk", "1")])
            .inc_by(9);
        reg.gauge("oi_queue_depth", "Depth", &[]).set(3);
        let h = reg.histogram("oi_read_latency_ns", "Read latency", &[("disk", "0")]);
        for v in [100u64, 200, 300, 5000, 100_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn prometheus_roundtrips_through_the_linter() {
        let reg = populated();
        let text = reg.prometheus();
        assert!(text.contains("# HELP oi_reads_total Reads"));
        assert!(text.contains("# TYPE oi_read_latency_ns histogram"));
        assert!(text.contains("oi_read_latency_ns_bucket{disk=\"0\",le=\"+Inf\"} 5"));
        assert!(text.contains("oi_read_latency_ns_count{disk=\"0\"} 5"));
        lint_prometheus(&text).expect("clean exposition");
    }

    #[test]
    fn json_is_structurally_sound() {
        let reg = populated();
        let j = reg.json();
        assert!(j.starts_with("{\"metrics\":["));
        assert!(j.contains("\"name\":\"oi_reads_total\""));
        assert!(j.contains("\"p50\":"));
        assert!(j.contains("\"buckets\":[["));
        // Balanced braces/brackets (cheap structural check, no parser).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = j.matches(open).count();
            let c = j.matches(close).count();
            assert_eq!(o, c, "balanced {open}{close}");
        }
    }

    #[test]
    fn escaping_survives_hostile_label_values() {
        crate::set_enabled(true);
        let reg = Registry::new();
        reg.counter(
            "m_total",
            "with \"quotes\" and \\slashes\\",
            &[("path", "a\"b\\c\nd")],
        )
        .inc();
        let text = reg.prometheus();
        lint_prometheus(&text).expect("escaped exposition lints clean");
        let j = reg.json();
        assert!(j.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn linter_catches_missing_type() {
        let text = "oi_x_total 5\n";
        let errs = lint_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("# TYPE")), "{errs:?}");
    }

    #[test]
    fn linter_catches_nonmonotone_buckets() {
        let text = "\
# HELP h H
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 10
h_count 5
";
        let errs = lint_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not monotone")), "{errs:?}");
    }

    #[test]
    fn linter_catches_missing_inf_sum_count() {
        let text = "\
# HELP h H
# TYPE h histogram
h_bucket{le=\"1\"} 5
";
        let errs = lint_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("+Inf")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("_sum")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("_count")), "{errs:?}");
    }

    #[test]
    fn linter_catches_inf_count_mismatch() {
        let text = "\
# HELP h H
# TYPE h histogram
h_bucket{le=\"+Inf\"} 4
h_sum 10
h_count 5
";
        let errs = lint_prometheus(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("!= _count")), "{errs:?}");
    }

    #[test]
    fn linter_catches_bad_labels_and_values() {
        let errs = lint_prometheus("# HELP m M\n# TYPE m counter\nm{9bad=\"x\"} 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("invalid label name")));
        let errs = lint_prometheus("# HELP m M\n# TYPE m counter\nm{a=unquoted} 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not quoted")));
        let errs = lint_prometheus("# HELP m M\n# TYPE m counter\nm nope\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("unparsable sample value")));
        let errs = lint_prometheus("# TYPE m bogus\n# HELP m M\nm 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("unknown TYPE")));
    }

    #[test]
    fn linter_accepts_inf_values_and_timestamps() {
        let text = "\
# HELP g G
# TYPE g gauge
g{a=\"b\"} +Inf 1700000000
";
        lint_prometheus(text).expect("inf + timestamp are legal");
    }
}
