//! Live progress for long-running jobs, pollable from other threads.
//!
//! A [`Progress`] is shared (e.g. in an `Arc`) between the thread driving
//! a rebuild and any number of observers. The driver calls
//! [`Progress::begin`], bumps the atomic counters as work completes, and
//! calls [`Progress::finish`]; observers call [`Progress::snapshot`] at
//! any time for fraction done, throughput, and an ETA. All updates are
//! relaxed atomics — polling never blocks the worker.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared, atomically-updated progress state.
///
/// Work is counted in *chunks*, each of which passes two gates: it is
/// first reconstructed (combined) and later written back. The reported
/// fraction averages the two, so it advances smoothly through both phases
/// of a rebuild, is monotone, and reaches exactly 1.0 when
/// [`Progress::finish`] is called.
#[derive(Debug, Default)]
pub struct Progress {
    total_chunks: AtomicU64,
    chunks_combined: AtomicU64,
    chunks_written: AtomicU64,
    resumed_chunks: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    finished: AtomicBool,
    started: Mutex<Option<Instant>>,
}

impl Progress {
    /// A fresh handle (no job started).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts (or restarts) a job of `total_chunks` chunks, resetting all
    /// counters and the clock.
    pub fn begin(&self, total_chunks: u64) {
        self.begin_resumed(total_chunks, 0);
    }

    /// Starts a job of `total_chunks` chunks of which `resumed` were
    /// already completed by an earlier run (a checkpoint-resumed rebuild).
    /// The resumed chunks are pre-credited through both gates, so the
    /// fraction starts at `resumed / total_chunks` instead of restarting
    /// from zero; rate and ETA count only this run's work.
    pub fn begin_resumed(&self, total_chunks: u64, resumed: u64) {
        let resumed = resumed.min(total_chunks);
        self.chunks_combined.store(resumed, Ordering::Relaxed);
        self.chunks_written.store(resumed, Ordering::Relaxed);
        self.resumed_chunks.store(resumed, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.finished.store(false, Ordering::Relaxed);
        self.total_chunks.store(total_chunks, Ordering::Relaxed);
        *self.started.lock().expect("progress clock") = Some(Instant::now());
    }

    /// Grows the job by `n` chunks without resetting counters — used when
    /// a self-healing rebuild re-plans mid-run (escalation after a second
    /// disk failure, latent-sector repairs) and discovers more work. The
    /// fraction may dip when the denominator grows; that is the truthful
    /// reading of an escalation.
    pub fn add_total_chunks(&self, n: u64) {
        self.total_chunks.fetch_add(n, Ordering::Relaxed);
    }

    /// Records bytes read from surviving devices.
    pub fn add_bytes_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one chunk reconstructed.
    pub fn chunk_combined(&self) {
        self.chunks_combined.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one chunk written back (`bytes` of it).
    pub fn chunk_written(&self, bytes: u64) {
        self.chunks_written.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Marks the job complete; the fraction reads exactly 1.0 afterwards.
    pub fn finish(&self) {
        self.finished.store(true, Ordering::Relaxed);
    }

    /// Whether [`Progress::finish`] has been called.
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }

    /// A point-in-time view. Fractions from successive snapshots are
    /// monotone (counters only increase).
    pub fn snapshot(&self) -> ProgressSnapshot {
        let elapsed = self
            .started
            .lock()
            .expect("progress clock")
            .map(|s| s.elapsed())
            .unwrap_or(Duration::ZERO);
        let total = self.total_chunks.load(Ordering::Relaxed);
        let combined = self.chunks_combined.load(Ordering::Relaxed);
        let written = self.chunks_written.load(Ordering::Relaxed);
        let resumed = self.resumed_chunks.load(Ordering::Relaxed);
        let bytes_read = self.bytes_read.load(Ordering::Relaxed);
        let bytes_written = self.bytes_written.load(Ordering::Relaxed);
        let finished = self.finished.load(Ordering::Relaxed);
        let fraction = if finished {
            1.0
        } else if total == 0 {
            0.0
        } else {
            ((combined + written) as f64 / (2 * total) as f64).min(1.0)
        };
        let secs = elapsed.as_secs_f64();
        let rate_mib_s = if secs > 0.0 {
            (bytes_read + bytes_written) as f64 / (1024.0 * 1024.0) / secs
        } else {
            0.0
        };
        let eta = if finished || fraction <= 0.0 || secs <= 0.0 {
            None
        } else {
            Some(Duration::from_secs_f64(secs * (1.0 - fraction) / fraction))
        };
        ProgressSnapshot {
            total_chunks: total,
            chunks_combined: combined,
            chunks_written: written,
            resumed_chunks: resumed,
            bytes_read,
            bytes_written,
            elapsed,
            fraction,
            rate_mib_s,
            eta,
            finished,
        }
    }
}

/// A point-in-time view of a [`Progress`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Chunks the job will process in total.
    pub total_chunks: u64,
    /// Chunks reconstructed so far.
    pub chunks_combined: u64,
    /// Chunks written back so far.
    pub chunks_written: u64,
    /// Chunks pre-credited from a checkpoint at [`Progress::begin_resumed`]
    /// (0 for a from-scratch job); included in the combined/written counts.
    pub resumed_chunks: u64,
    /// Bytes read from surviving devices so far.
    pub bytes_read: u64,
    /// Bytes written back so far.
    pub bytes_written: u64,
    /// Time since [`Progress::begin`].
    pub elapsed: Duration,
    /// Fraction complete in `0.0..=1.0`; exactly 1.0 once finished.
    pub fraction: f64,
    /// Aggregate I/O throughput so far (read + written MiB per second).
    pub rate_mib_s: f64,
    /// Estimated time remaining (None before any progress or after
    /// finishing).
    pub eta: Option<Duration>,
    /// Whether the job has finished.
    pub finished: bool,
}

impl std::fmt::Display for ProgressSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:5.1}% ({}/{} chunks combined, {} written) {:.1} MiB/s elapsed {:?}",
            self.fraction * 100.0,
            self.chunks_combined,
            self.total_chunks,
            self.chunks_written,
            self.rate_mib_s,
            self.elapsed,
        )?;
        if self.resumed_chunks > 0 {
            write!(f, " (resumed past {} chunks)", self.resumed_chunks)?;
        }
        if let Some(eta) = self.eta {
            write!(f, " eta {eta:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_reaches_exactly_one() {
        let p = Progress::new();
        assert_eq!(p.snapshot().fraction, 0.0);
        p.begin(4);
        assert_eq!(p.snapshot().fraction, 0.0);
        p.chunk_combined();
        p.chunk_combined();
        let mid = p.snapshot();
        assert!((mid.fraction - 0.25).abs() < 1e-9, "{}", mid.fraction);
        for _ in 0..2 {
            p.chunk_combined();
        }
        for _ in 0..4 {
            p.chunk_written(512);
        }
        let near = p.snapshot();
        assert!((near.fraction - 1.0).abs() < 1e-9);
        assert!(!near.finished);
        p.finish();
        let done = p.snapshot();
        assert_eq!(done.fraction, 1.0);
        assert!(done.finished);
        assert_eq!(done.bytes_written, 2048);
        assert!(done.eta.is_none());
        assert!(done.to_string().contains("100.0%"));
    }

    #[test]
    fn snapshot_fractions_are_monotone() {
        let p = Progress::new();
        p.begin(100);
        let mut last = 0.0;
        for i in 0..100 {
            p.chunk_combined();
            if i >= 50 {
                p.chunk_written(64);
            }
            let f = p.snapshot().fraction;
            assert!(f >= last, "monotone: {f} >= {last}");
            last = f;
        }
    }

    #[test]
    fn begin_resets_previous_job() {
        let p = Progress::new();
        p.begin(2);
        p.chunk_combined();
        p.chunk_written(10);
        p.finish();
        p.begin(8);
        let s = p.snapshot();
        assert_eq!(s.fraction, 0.0);
        assert_eq!(s.bytes_written, 0);
        assert!(!s.finished);
    }

    #[test]
    fn resumed_jobs_do_not_restart_from_zero() {
        let p = Progress::new();
        p.begin_resumed(8, 4);
        let s = p.snapshot();
        assert_eq!(s.resumed_chunks, 4);
        assert!((s.fraction - 0.5).abs() < 1e-9, "starts at 50%: {s}");
        p.chunk_combined();
        p.chunk_written(64);
        let s = p.snapshot();
        assert!((s.fraction - 0.625).abs() < 1e-9, "{s}");
        assert_eq!(s.bytes_written, 64, "bytes count only this run");
        assert!(s.to_string().contains("resumed past 4"));
        // A plain begin clears the resumed credit.
        p.begin(8);
        let s = p.snapshot();
        assert_eq!((s.resumed_chunks, s.fraction), (0, 0.0));
        // Over-crediting clamps to the total.
        p.begin_resumed(4, 9);
        assert_eq!(p.snapshot().fraction, 1.0);
    }

    #[test]
    fn rate_and_eta_appear_with_progress() {
        let p = Progress::new();
        p.begin(2);
        std::thread::sleep(Duration::from_millis(2));
        p.add_bytes_read(1024 * 1024);
        p.chunk_combined();
        let s = p.snapshot();
        assert!(s.rate_mib_s > 0.0);
        assert!(s.eta.is_some());
    }
}
