//! Labeled metric registry: counters, gauges, and histograms, keyed by
//! `(name, labels)`, exported via the functions in [`crate::export`].
//!
//! The registry is shared by reference (`&Registry` or `Arc<Registry>`);
//! registration hands back cheap atomic handles ([`Counter`], [`Gauge`],
//! `Arc<Histogram>`) that are updated without touching the registry lock.
//! Existing live histograms (e.g. a block device's latency histogram) can
//! be attached with [`Registry::register_histogram`] so exports always
//! see current values.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::Histogram;

/// A monotonically-presented counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the absolute value (exporters mirroring an external counter
    /// snapshot use this; prefer `inc*` for live counting).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go up and down).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raises the gauge to `v` if it is below it (atomic max): high-water
    /// marks such as a scheduler's peak queue depth.
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// `(name, sorted labels)` — the identity of one time series.
pub(crate) type Key = (String, Vec<(String, String)>);

/// Error from fallible registration ([`Registry::try_counter`] and
/// friends): the series name is already taken by a different metric type.
///
/// Same-kind duplicates are *not* errors — registration is idempotent and
/// returns the existing handle, so two subsystems exporting the same
/// series coexist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// `name` is already registered with a different metric type.
    KindMismatch {
        /// The conflicting metric name.
        name: String,
        /// The kind already registered under `name`.
        existing: &'static str,
        /// The kind the caller asked for.
        requested: &'static str,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::KindMismatch {
                name,
                existing,
                requested,
            } => write!(
                f,
                "{name} already registered as {existing} (requested {requested})"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

#[derive(Debug, Default)]
pub(crate) struct Inner {
    /// Sorted by key so exports are deterministic and series of one
    /// metric name are contiguous.
    pub(crate) metrics: BTreeMap<Key, Metric>,
    /// Help text per metric name.
    pub(crate) help: BTreeMap<String, String>,
}

/// A registry of labeled metrics.
///
/// # Example
///
/// ```
/// use telemetry::Registry;
///
/// let reg = Registry::new();
/// let c = reg.counter("oi_chunks_total", "Chunks rebuilt", &[("mode", "parallel")]);
/// c.inc_by(27);
/// let text = reg.prometheus();
/// assert!(text.contains("# TYPE oi_chunks_total counter"));
/// assert!(text.contains("oi_chunks_total{mode=\"parallel\"} 27"));
/// telemetry::lint_prometheus(&text).expect("valid exposition");
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) inner: Mutex<Inner>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: Metric,
    ) -> Metric {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        assert!(
            labels.iter().all(|(k, _)| valid_name(k) && *k != "le"),
            "invalid label name in {labels:?}"
        );
        let mut inner = self.inner.lock().expect("registry lock");
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        let key = make_key(name, labels);
        let entry = inner.metrics.entry(key).or_insert(make);
        entry.clone()
    }

    /// Registers (or fetches) a counter series. Idempotent: a duplicate
    /// registration with the same kind returns the existing handle.
    ///
    /// # Errors
    ///
    /// [`RegistryError::KindMismatch`] if `name` is already registered
    /// with a different metric type.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name (a caller bug, not a runtime
    /// condition).
    pub fn try_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Counter, RegistryError> {
        match self.get_or_insert(name, help, labels, Metric::Counter(Counter::default())) {
            Metric::Counter(c) => Ok(c),
            other => Err(RegistryError::KindMismatch {
                name: name.to_string(),
                existing: other.kind(),
                requested: "counter",
            }),
        }
    }

    /// Registers (or fetches) a counter series.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name, or if `name` is already
    /// registered with a different metric type (use
    /// [`Registry::try_counter`] to handle that without panicking).
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.try_counter(name, help, labels)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Registers (or fetches) a gauge series. Idempotent like
    /// [`Registry::try_counter`].
    ///
    /// # Errors
    ///
    /// [`RegistryError::KindMismatch`] on a metric-type conflict.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name.
    pub fn try_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Gauge, RegistryError> {
        match self.get_or_insert(name, help, labels, Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => Ok(g),
            other => Err(RegistryError::KindMismatch {
                name: name.to_string(),
                existing: other.kind(),
                requested: "gauge",
            }),
        }
    }

    /// Registers (or fetches) a gauge series.
    ///
    /// # Panics
    ///
    /// As for [`Registry::counter`]; see [`Registry::try_gauge`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.try_gauge(name, help, labels)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Registers (or fetches) a histogram series owned by the registry.
    /// Idempotent like [`Registry::try_counter`].
    ///
    /// # Errors
    ///
    /// [`RegistryError::KindMismatch`] on a metric-type conflict.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name.
    pub fn try_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Arc<Histogram>, RegistryError> {
        match self.get_or_insert(
            name,
            help,
            labels,
            Metric::Histogram(Arc::new(Histogram::new())),
        ) {
            Metric::Histogram(h) => Ok(h),
            other => Err(RegistryError::KindMismatch {
                name: name.to_string(),
                existing: other.kind(),
                requested: "histogram",
            }),
        }
    }

    /// Registers (or fetches) a histogram series owned by the registry.
    ///
    /// # Panics
    ///
    /// As for [`Registry::counter`]; see [`Registry::try_histogram`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.try_histogram(name, help, labels)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn attach(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        metric: Metric,
    ) -> Result<(), RegistryError> {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        assert!(
            labels.iter().all(|(k, _)| valid_name(k) && *k != "le"),
            "invalid label name in {labels:?}"
        );
        let mut inner = self.inner.lock().expect("registry lock");
        let key = make_key(name, labels);
        if let Some(existing) = inner.metrics.get(&key) {
            if existing.kind() != metric.kind() {
                return Err(RegistryError::KindMismatch {
                    name: name.to_string(),
                    existing: existing.kind(),
                    requested: metric.kind(),
                });
            }
        }
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        inner.metrics.insert(key, metric);
        Ok(())
    }

    /// Attaches an existing live histogram (replacing any histogram
    /// already registered under the same name and labels), so exports see
    /// its current contents without copying.
    ///
    /// # Errors
    ///
    /// [`RegistryError::KindMismatch`] if `name` is registered with a
    /// non-histogram type.
    ///
    /// # Panics
    ///
    /// Panics on invalid metric/label names.
    pub fn try_register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: Arc<Histogram>,
    ) -> Result<(), RegistryError> {
        self.attach(name, help, labels, Metric::Histogram(hist))
    }

    /// Attaches an existing live histogram (replacing any histogram
    /// already registered under the same name and labels), so exports see
    /// its current contents without copying.
    ///
    /// # Panics
    ///
    /// Panics on invalid names or if `name` is registered with a
    /// non-histogram type (use [`Registry::try_register_histogram`] to
    /// handle that without panicking).
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: Arc<Histogram>,
    ) {
        self.try_register_histogram(name, help, labels, hist)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Attaches an existing live counter handle (replacing any counter
    /// already registered under the same name and labels), so exports see
    /// its current value without copying — the counter analogue of
    /// [`Registry::try_register_histogram`]. A [`Counter`] created with
    /// `Counter::default()` works standalone and can be attached later.
    ///
    /// # Errors
    ///
    /// [`RegistryError::KindMismatch`] if `name` is registered with a
    /// non-counter type.
    ///
    /// # Panics
    ///
    /// Panics on invalid metric/label names.
    pub fn try_register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        c: Counter,
    ) -> Result<(), RegistryError> {
        self.attach(name, help, labels, Metric::Counter(c))
    }

    /// Attaches an existing live counter handle, panicking on conflict.
    ///
    /// # Panics
    ///
    /// Panics on invalid names or if `name` is registered with a
    /// non-counter type (use [`Registry::try_register_counter`] to handle
    /// that without panicking).
    pub fn register_counter(&self, name: &str, help: &str, labels: &[(&str, &str)], c: Counter) {
        self.try_register_counter(name, help, labels, c)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Attaches an existing live gauge handle (replacing any gauge already
    /// registered under the same name and labels) — the gauge analogue of
    /// [`Registry::register_counter`], used e.g. for the DAG scheduler's
    /// queue-depth and in-flight gauges.
    ///
    /// # Errors
    ///
    /// [`RegistryError::KindMismatch`] if `name` is registered with a
    /// non-gauge type.
    ///
    /// # Panics
    ///
    /// Panics on invalid metric/label names.
    pub fn try_register_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        g: Gauge,
    ) -> Result<(), RegistryError> {
        self.attach(name, help, labels, Metric::Gauge(g))
    }

    /// Attaches an existing live gauge handle, panicking on conflict.
    ///
    /// # Panics
    ///
    /// Panics on invalid names or if `name` is registered with a non-gauge
    /// type (use [`Registry::try_register_gauge`] to handle that without
    /// panicking).
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], g: Gauge) {
        self.try_register_gauge(name, help, labels, g)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").metrics.len()
    }

    /// Whether no series are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_identity_is_name_plus_sorted_labels() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x_total", "x", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc_by(2);
        assert_eq!(a.get(), 3, "same series regardless of label order");
        let c = reg.counter("x_total", "x", &[("a", "2")]);
        c.inc();
        assert_eq!(c.get(), 1, "different labels, different series");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("depth", "queue depth", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn attached_histogram_is_shared() {
        crate::set_enabled(true);
        let reg = Registry::new();
        let h = Arc::new(Histogram::new());
        reg.register_histogram("lat_ns", "latency", &[("disk", "0")], Arc::clone(&h));
        h.record(42);
        let again = reg.histogram("lat_ns", "latency", &[("disk", "0")]);
        assert_eq!(again.count(), 1, "registry returns the attached one");
    }

    #[test]
    fn attached_counter_is_shared() {
        let reg = Registry::new();
        let c = Counter::default();
        c.inc_by(7); // standalone before attaching
        reg.register_counter("heals_total", "repairs", &[("kind", "latent")], c.clone());
        c.inc();
        let again = reg.counter("heals_total", "repairs", &[("kind", "latent")]);
        assert_eq!(again.get(), 8, "registry returns the attached handle");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflicts_panic() {
        let reg = Registry::new();
        reg.counter("m", "m", &[]);
        reg.gauge("m", "m", &[]);
    }

    #[test]
    fn duplicate_same_kind_is_idempotent() {
        let reg = Registry::new();
        let a = reg.try_counter("dup_total", "d", &[]).unwrap();
        a.inc_by(3);
        let b = reg.try_counter("dup_total", "d", &[]).unwrap();
        assert_eq!(b.get(), 3, "second registration returns the same handle");
        assert_eq!(reg.len(), 1);
        reg.try_gauge("g", "g", &[]).unwrap();
        reg.try_gauge("g", "g", &[]).unwrap();
        reg.try_histogram("h", "h", &[]).unwrap();
        reg.try_histogram("h", "h", &[]).unwrap();
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn kind_mismatch_is_an_error_not_a_crash() {
        let reg = Registry::new();
        reg.try_counter("m_total", "m", &[]).unwrap();
        let err = reg.try_gauge("m_total", "m", &[]).unwrap_err();
        assert_eq!(
            err,
            RegistryError::KindMismatch {
                name: "m_total".into(),
                existing: "counter",
                requested: "gauge",
            }
        );
        assert!(err.to_string().contains("already registered"), "{err}");
        let err = reg
            .try_histogram("m_total", "m", &[])
            .expect_err("histogram over counter");
        assert!(matches!(err, RegistryError::KindMismatch { .. }));
        // The original series is untouched and still usable.
        let c = reg.try_counter("m_total", "m", &[]).unwrap();
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn attach_conflicts_are_errors_and_do_not_clobber() {
        let reg = Registry::new();
        let c = reg.counter("series", "s", &[]);
        c.inc_by(5);
        let err = reg
            .try_register_histogram("series", "s", &[], Arc::new(Histogram::new()))
            .unwrap_err();
        assert!(matches!(err, RegistryError::KindMismatch { .. }));
        assert_eq!(
            reg.counter("series", "s", &[]).get(),
            5,
            "failed attach leaves the existing series intact"
        );
        let g = reg.gauge("depth", "d", &[]);
        g.set(2);
        let err = reg
            .try_register_counter("depth", "d", &[], Counter::default())
            .unwrap_err();
        assert!(err.to_string().contains("gauge"), "{err}");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_rejected() {
        Registry::new().counter("9bad", "", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn le_label_reserved() {
        Registry::new().histogram("h", "", &[("le", "5")]);
    }
}
