//! Labeled metric registry: counters, gauges, and histograms, keyed by
//! `(name, labels)`, exported via the functions in [`crate::export`].
//!
//! The registry is shared by reference (`&Registry` or `Arc<Registry>`);
//! registration hands back cheap atomic handles ([`Counter`], [`Gauge`],
//! `Arc<Histogram>`) that are updated without touching the registry lock.
//! Existing live histograms (e.g. a block device's latency histogram) can
//! be attached with [`Registry::register_histogram`] so exports always
//! see current values.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::Histogram;

/// A monotonically-presented counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the absolute value (exporters mirroring an external counter
    /// snapshot use this; prefer `inc*` for live counting).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go up and down).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// `(name, sorted labels)` — the identity of one time series.
pub(crate) type Key = (String, Vec<(String, String)>);

#[derive(Debug, Default)]
pub(crate) struct Inner {
    /// Sorted by key so exports are deterministic and series of one
    /// metric name are contiguous.
    pub(crate) metrics: BTreeMap<Key, Metric>,
    /// Help text per metric name.
    pub(crate) help: BTreeMap<String, String>,
}

/// A registry of labeled metrics.
///
/// # Example
///
/// ```
/// use telemetry::Registry;
///
/// let reg = Registry::new();
/// let c = reg.counter("oi_chunks_total", "Chunks rebuilt", &[("mode", "parallel")]);
/// c.inc_by(27);
/// let text = reg.prometheus();
/// assert!(text.contains("# TYPE oi_chunks_total counter"));
/// assert!(text.contains("oi_chunks_total{mode=\"parallel\"} 27"));
/// telemetry::lint_prometheus(&text).expect("valid exposition");
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) inner: Mutex<Inner>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: Metric,
    ) -> Metric {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        assert!(
            labels.iter().all(|(k, _)| valid_name(k) && *k != "le"),
            "invalid label name in {labels:?}"
        );
        let mut inner = self.inner.lock().expect("registry lock");
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        let key = make_key(name, labels);
        let entry = inner.metrics.entry(key).or_insert(make);
        entry.clone()
    }

    /// Registers (or fetches) a counter series.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name, or if `name` is already
    /// registered with a different metric type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, help, labels, Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("{name} already registered as {}", other.kind()),
        }
    }

    /// Registers (or fetches) a gauge series.
    ///
    /// # Panics
    ///
    /// As for [`Registry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, help, labels, Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("{name} already registered as {}", other.kind()),
        }
    }

    /// Registers (or fetches) a histogram series owned by the registry.
    ///
    /// # Panics
    ///
    /// As for [`Registry::counter`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_insert(
            name,
            help,
            labels,
            Metric::Histogram(Arc::new(Histogram::new())),
        ) {
            Metric::Histogram(h) => h,
            other => panic!("{name} already registered as {}", other.kind()),
        }
    }

    /// Attaches an existing live histogram (replacing any histogram
    /// already registered under the same name and labels), so exports see
    /// its current contents without copying.
    ///
    /// # Panics
    ///
    /// Panics on invalid names or if `name` is registered with a
    /// non-histogram type.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: Arc<Histogram>,
    ) {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        assert!(
            labels.iter().all(|(k, _)| valid_name(k) && *k != "le"),
            "invalid label name in {labels:?}"
        );
        let mut inner = self.inner.lock().expect("registry lock");
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        let key = make_key(name, labels);
        if let Some(existing) = inner.metrics.get(&key) {
            assert!(
                matches!(existing, Metric::Histogram(_)),
                "{name} already registered as {}",
                existing.kind()
            );
        }
        inner.metrics.insert(key, Metric::Histogram(hist));
    }

    /// Attaches an existing live counter handle (replacing any counter
    /// already registered under the same name and labels), so exports see
    /// its current value without copying — the counter analogue of
    /// [`Registry::register_histogram`]. A [`Counter`] created with
    /// `Counter::default()` works standalone and can be attached later.
    ///
    /// # Panics
    ///
    /// Panics on invalid names or if `name` is registered with a
    /// non-counter type.
    pub fn register_counter(&self, name: &str, help: &str, labels: &[(&str, &str)], c: Counter) {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        assert!(
            labels.iter().all(|(k, _)| valid_name(k) && *k != "le"),
            "invalid label name in {labels:?}"
        );
        let mut inner = self.inner.lock().expect("registry lock");
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        let key = make_key(name, labels);
        if let Some(existing) = inner.metrics.get(&key) {
            assert!(
                matches!(existing, Metric::Counter(_)),
                "{name} already registered as {}",
                existing.kind()
            );
        }
        inner.metrics.insert(key, Metric::Counter(c));
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").metrics.len()
    }

    /// Whether no series are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_identity_is_name_plus_sorted_labels() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x_total", "x", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc_by(2);
        assert_eq!(a.get(), 3, "same series regardless of label order");
        let c = reg.counter("x_total", "x", &[("a", "2")]);
        c.inc();
        assert_eq!(c.get(), 1, "different labels, different series");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("depth", "queue depth", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn attached_histogram_is_shared() {
        crate::set_enabled(true);
        let reg = Registry::new();
        let h = Arc::new(Histogram::new());
        reg.register_histogram("lat_ns", "latency", &[("disk", "0")], Arc::clone(&h));
        h.record(42);
        let again = reg.histogram("lat_ns", "latency", &[("disk", "0")]);
        assert_eq!(again.count(), 1, "registry returns the attached one");
    }

    #[test]
    fn attached_counter_is_shared() {
        let reg = Registry::new();
        let c = Counter::default();
        c.inc_by(7); // standalone before attaching
        reg.register_counter("heals_total", "repairs", &[("kind", "latent")], c.clone());
        c.inc();
        let again = reg.counter("heals_total", "repairs", &[("kind", "latent")]);
        assert_eq!(again.get(), 8, "registry returns the attached handle");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflicts_panic() {
        let reg = Registry::new();
        reg.counter("m", "m", &[]);
        reg.gauge("m", "m", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_rejected() {
        Registry::new().counter("9bad", "", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn le_label_reserved() {
        Registry::new().histogram("h", "", &[("le", "5")]);
    }
}
