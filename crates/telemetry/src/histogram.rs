//! Lock-free log-bucketed histogram with bounded relative error.
//!
//! The bucket scheme is HdrHistogram-style: values below 16 get exact
//! unit-width buckets; every power-of-two range `[2^m, 2^{m+1})` above
//! that is split into 16 linear sub-buckets. Quantiles read from a bucket
//! therefore carry at most `2^-4 = 6.25 %` relative error (plus the
//! exactly-tracked maximum as a clamp), while `record` is four relaxed
//! atomic operations — cheap enough to instrument every device I/O.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the number of linear sub-buckets per power-of-two range.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two range (and the exact-value floor).
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count: 16 exact small-value buckets plus 16 sub-buckets
/// for each major range `[2^4, 2^5) .. [2^63, 2^64)`.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index for a value (monotone in the value).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB * (exp - SUB_BITS + 1) as usize + sub
    }
}

/// Inclusive upper bound of bucket `i` (the value reported for quantiles
/// landing in the bucket; an over-estimate by at most 6.25 %).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let exp = (i / SUB - 1) as u32 + SUB_BITS;
        let sub = (i % SUB) as u64;
        let lower = (1u64 << exp) + (sub << (exp - SUB_BITS));
        // For the very last bucket the upper bound is u64::MAX; compute
        // `lower + width - 1` with the subtraction first to avoid overflow.
        lower + ((1u64 << (exp - SUB_BITS)) - 1)
    }
}

/// A concurrent latency/value histogram.
///
/// `record` takes `&self` and performs only relaxed atomic adds, so any
/// number of threads can record into one histogram; totals are exact
/// (nothing is sampled or dropped), bucket placement is exact, and
/// quantiles are approximate within the bucket scheme's 6.25 % bound.
///
/// # Example
///
/// ```
/// use telemetry::Histogram;
///
/// telemetry::set_enabled(true);
/// let h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 1000);
/// assert_eq!(s.max, 1000);
/// assert!(s.p50() >= 500 && s.p50() <= 532); // ≤ 6.25 % over
/// ```
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Folds another histogram's counts into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Resets every bucket and total to zero.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram. Consistent once recording
    /// has quiesced; during concurrent recording the totals may lead or
    /// lag the buckets by in-flight operations.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Convenience quantile on a fresh snapshot (`q` in `0.0..=1.0`).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank quantile, `q` in `0.0..=1.0`; returns the containing
    /// bucket's upper bound clamped to the exact maximum (so quantiles
    /// over-estimate by at most 6.25 % and never exceed `max`). Returns 0
    /// for an empty snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Sum of per-bucket counts (equals `count` once recording quiesced).
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
    }

    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// `"n=… mean=… p50=… p99=… max=…"` with nanosecond values rendered
    /// as human-readable durations.
    pub fn summary_ns(&self) -> String {
        fn t(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2}s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.2}us", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        format!(
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            t(self.mean()),
            t(self.p50()),
            t(self.p99()),
            t(self.max)
        )
    }
}

/// Exact nearest-rank quantile of an already **sorted** sample set —
/// the oracle the histogram's bucketed quantiles are property-tested
/// against, and the single implementation `disksim`'s summaries route
/// through so the two cannot drift. `q` is a fraction in `0.0..=1.0`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `0.0..=1.0`.
pub fn exact_percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if q == 0.0 {
        return sorted[0];
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exact_for_small_values() {
        crate::set_enabled(true);
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
        let mut last = 0;
        for v in [16u64, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "monotone at {v}");
            last = i;
            let ub = bucket_upper(i);
            assert!(ub >= v, "upper bound covers {v} (got {ub})");
            // ≤ 6.25 % relative over-estimate.
            assert!(ub as f64 <= v as f64 * (1.0 + 1.0 / 16.0) + 1.0);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn every_bucket_upper_maps_back_to_its_bucket() {
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn quantiles_are_ordered_and_clamped_to_max() {
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in [5u64, 10, 100, 1000, 10_000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p50() <= s.p90());
        assert!(s.p90() <= s.p99());
        assert!(s.p99() <= s.p999());
        assert!(s.p999() <= s.max);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_011_115);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0);
        assert!(s.summary_ns().contains("n=0"));
    }

    #[test]
    fn merge_adds_counts() {
        crate::set_enabled(true);
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v + 1000);
        }
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 200);
        assert_eq!(s.bucket_total(), 200);
        assert_eq!(s.max, 1099);
        let mut sa = Histogram::new().snapshot();
        sa.merge(&s);
        assert_eq!(sa, s);
    }

    #[test]
    fn reset_clears_everything() {
        crate::set_enabled(true);
        let h = Histogram::new();
        h.record(42);
        h.reset();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.max, s.bucket_total()), (0, 0, 0, 0));
    }

    #[test]
    fn exact_percentile_matches_known_values() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_percentile_sorted(&v, 0.0), 1);
        assert_eq!(exact_percentile_sorted(&v, 0.5), 50);
        assert_eq!(exact_percentile_sorted(&v, 0.95), 95);
        assert_eq!(exact_percentile_sorted(&v, 1.0), 100);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn exact_percentile_empty_panics() {
        exact_percentile_sorted(&[], 0.5);
    }

    #[test]
    fn record_duration_uses_nanos() {
        crate::set_enabled(true);
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.max(), 3_000);
    }
}
