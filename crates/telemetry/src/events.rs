//! Structured event rings: the trace ring and the flight recorder.
//!
//! Both are the same data structure — a fixed-size, lock-free ring of
//! [`Event`]s — used for two different jobs:
//!
//! * **Trace ring** ([`traces`]): edges of request causal trees. Each
//!   event names a node (`trace`), the node it hangs under (`parent`),
//!   and a [`EventKind`] saying which layer emitted it. Fan-out (one op
//!   → many device I/Os) is many events sharing a parent; fan-in (one
//!   combining wave serving many volume ops) is one `Wave` edge per
//!   (op, wave) pair. A whole request is reconstructed by chasing
//!   parent links through a snapshot.
//! * **Flight recorder** ([`flight`]): a black box of rare-but-telling
//!   incidents (retries, reroutes, escalations, throttle waits,
//!   dirty-window skips, …), kept regardless of sampling so the last
//!   few thousand incidents before an abort or panic are always
//!   available. [`EventRing::dump`] renders them; an abort handler and
//!   [`flight_dump_on_panic`] call it automatically.
//!
//! The ring is writable from any thread without locks or unsafe code:
//! every slot is a group of atomics guarded by a per-slot sequence word
//! (a seqlock). A writer claims a global cursor position, CASes the
//! slot's sequence from "lap complete" to "write in progress" (odd),
//! stores the fields, and release-stores "next lap complete" (even).
//! Readers snapshot a slot only if the sequence is even and unchanged
//! across the field reads. A writer that loses the CAS (a slot still
//! held by a stalled writer from a previous lap) drops its event; both
//! that and plain overwrites increment a live drop counter exported as
//! `oi_trace_dropped_total`, so silent loss is visible.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::registry::{Counter, Registry};

/// Which layer emitted an event, and what the `a`/`b` payload words mean.
///
/// Trace kinds (causal-tree edges):
///
/// | kind | emitted at | `a` | `b` |
/// |---|---|---|---|
/// | `VolumeRead`/`VolumeWrite` | volume op admitted | volume id | record |
/// | `Wave` | combining wave serves an op | wave id low bits | ops in wave |
/// | `BatchRead`/`BatchWrite` | store batch entry | chunks | 0 |
/// | `DiskRun` | coalesced per-disk run | disk | run length |
/// | `DegradedRead` | reconstruct path taken | stripe/global idx | disk |
/// | `WriteGroup` | store write group | group size | 0 |
/// | `SchedOp` | DAG scheduler runs a node | op id | device |
/// | `Rebuild`/`RebuildRound` | rebuild root / one round | round | disks down |
/// | `DeviceRead`/`DeviceWrite` | block device completes I/O | chunk | bytes |
///
/// Flight kinds (incident log): `a`/`b` carry the disk/chunk or
/// wait-nanoseconds involved; see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum EventKind {
    /// A sampled volume read op was admitted (trace root).
    VolumeRead = 1,
    /// A sampled volume write op was admitted (trace root).
    VolumeWrite = 2,
    /// A combining wave executed on behalf of a traced op (fan-in edge).
    Wave = 3,
    /// A store batched read on behalf of a wave.
    BatchRead = 4,
    /// A store batched write on behalf of a wave.
    BatchWrite = 5,
    /// One coalesced per-disk run inside a batch (fan-out edge).
    DiskRun = 6,
    /// A read fell back to erasure-coded reconstruction.
    DegradedRead = 7,
    /// One store write group inside a batched write.
    WriteGroup = 8,
    /// A scheduler DAG node executed for a traced request.
    SchedOp = 9,
    /// Root of an observed rebuild.
    Rebuild = 10,
    /// One self-healing round of an observed rebuild.
    RebuildRound = 11,
    /// A block device completed a read (`a` = chunk, `b` = bytes).
    DeviceRead = 12,
    /// A block device completed a write (`a` = chunk, `b` = bytes).
    DeviceWrite = 13,

    /// A device I/O was retried (`a` = chunk, `b` = attempt).
    Retry = 32,
    /// A device I/O stayed transient through its whole retry budget
    /// (`a` = chunk, `b` = attempts used).
    RetryExhausted = 33,
    /// A rebuild task was rerouted to surviving redundancy (`a` = disk).
    Reroute = 34,
    /// A disk was escalated to failed mid-rebuild (`a` = disk).
    Escalation = 35,
    /// A dirty-window chunk was skipped and re-queued (`a` = count).
    DirtySkip = 36,
    /// Rebuild QoS throttling slept (`a` = chunks, `b` = wait ns).
    ThrottleWait = 37,
    /// A tenant hit its rate cap and slept (`a` = tenant, `b` = wait ns).
    TenantCapWait = 38,
    /// A disk changed degraded state (`a` = disk, `b` = 1 failed/0 healed).
    DegradedTransition = 39,
    /// Rebuild fell behind its QoS debt ceiling (`a` = debt chunks).
    QosDebt = 40,
    /// A rebuild aborted (`a` = disks still failed).
    Abort = 41,
    /// A rebuild round made no progress (`a` = round).
    Stall = 42,
    /// A latent sector error was repaired in passing (`a` = disk, `b` = chunk).
    LatentRepair = 43,
    /// Journal recovery replayed intents on open (`a` = redone, `b` = rolled back).
    JournalReplay = 44,
    /// A rebuild resumed from a checkpoint (`a` = chunks already valid, `b` = total).
    CheckpointResume = 45,
    /// Journal recovery skipped corrupt mid-log records by resynchronizing
    /// to the next valid record boundary (`a` = corrupt gaps, `b` = bytes
    /// skipped).
    JournalCorruption = 46,
}

impl EventKind {
    /// Stable lowercase name used in JSON and dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::VolumeRead => "volume_read",
            Self::VolumeWrite => "volume_write",
            Self::Wave => "wave",
            Self::BatchRead => "batch_read",
            Self::BatchWrite => "batch_write",
            Self::DiskRun => "disk_run",
            Self::DegradedRead => "degraded_read",
            Self::WriteGroup => "write_group",
            Self::SchedOp => "sched_op",
            Self::Rebuild => "rebuild",
            Self::RebuildRound => "rebuild_round",
            Self::DeviceRead => "device_read",
            Self::DeviceWrite => "device_write",
            Self::Retry => "retry",
            Self::RetryExhausted => "retry_exhausted",
            Self::Reroute => "reroute",
            Self::Escalation => "escalation",
            Self::DirtySkip => "dirty_skip",
            Self::ThrottleWait => "throttle_wait",
            Self::TenantCapWait => "tenant_cap_wait",
            Self::DegradedTransition => "degraded_transition",
            Self::QosDebt => "qos_debt",
            Self::Abort => "abort",
            Self::Stall => "stall",
            Self::LatentRepair => "latent_repair",
            Self::JournalReplay => "journal_replay",
            Self::CheckpointResume => "checkpoint_resume",
            Self::JournalCorruption => "journal_corruption",
        }
    }

    fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => Self::VolumeRead,
            2 => Self::VolumeWrite,
            3 => Self::Wave,
            4 => Self::BatchRead,
            5 => Self::BatchWrite,
            6 => Self::DiskRun,
            7 => Self::DegradedRead,
            8 => Self::WriteGroup,
            9 => Self::SchedOp,
            10 => Self::Rebuild,
            11 => Self::RebuildRound,
            12 => Self::DeviceRead,
            13 => Self::DeviceWrite,
            32 => Self::Retry,
            33 => Self::RetryExhausted,
            34 => Self::Reroute,
            35 => Self::Escalation,
            36 => Self::DirtySkip,
            37 => Self::ThrottleWait,
            38 => Self::TenantCapWait,
            39 => Self::DegradedTransition,
            40 => Self::QosDebt,
            41 => Self::Abort,
            42 => Self::Stall,
            43 => Self::LatentRepair,
            44 => Self::JournalReplay,
            45 => Self::CheckpointResume,
            46 => Self::JournalCorruption,
            _ => return None,
        })
    }
}

/// One structured event, as read out of a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global publication order within the ring (0-based, monotone).
    pub seq: u64,
    /// Nanoseconds since the process-wide event epoch.
    pub ns: u64,
    /// What happened and which layer said so.
    pub kind: EventKind,
    /// This event's node id in the causal tree (0 = not part of a trace).
    pub trace: u64,
    /// The node this event hangs under (0 = root).
    pub parent: u64,
    /// Kind-specific payload word (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload word (see [`EventKind`]).
    pub b: u64,
}

impl Event {
    /// Renders as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"ns\":{},\"kind\":\"{}\",\"trace\":{},\"parent\":{},\"a\":{},\"b\":{}}}",
            self.seq,
            self.ns,
            self.kind.as_str(),
            self.trace,
            self.parent,
            self.a,
            self.b
        )
    }
}

/// One ring slot: a seqlock word plus the event fields. `seq_word` cycles
/// `2·lap` (lap complete, readable) → `2·lap+1` (write in progress) →
/// `2·(lap+1)`; readers accept only even-and-unchanged.
#[derive(Debug)]
struct Slot {
    seq_word: AtomicU64,
    seq_no: AtomicU64,
    ns: AtomicU64,
    kind: AtomicU64,
    trace: AtomicU64,
    parent: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            seq_word: AtomicU64::new(0),
            seq_no: AtomicU64::new(0),
            ns: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A fixed-capacity, lock-free ring of [`Event`]s (see module docs for
/// the seqlock protocol). Push never blocks; the ring keeps the most
/// recent `capacity` events and counts everything lost to overwrite or
/// writer collision in a live [`Counter`].
#[derive(Debug)]
pub struct EventRing {
    slots: Vec<Slot>,
    cursor: AtomicU64,
    dropped: Counter,
    epoch: Instant,
}

impl EventRing {
    /// A ring holding the most recent `capacity` events (min 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        Self {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
            dropped: Counter::default(),
            epoch: Instant::now(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events lost: overwritten by newer pushes once the ring lapped, or
    /// abandoned because the slot was still held by a stalled writer.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The live drop counter, attachable to a [`Registry`] so exports
    /// track loss without polling.
    pub fn drop_counter(&self) -> Counter {
        self.dropped.clone()
    }

    /// Total events ever pushed (including dropped ones).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Publishes one event. Never blocks; may drop (counted) under
    /// extreme writer contention on a lapped slot.
    pub fn push(&self, kind: EventKind, trace: u64, parent: u64, a: u64, b: u64) {
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let lap = n / cap;
        let slot = &self.slots[(n % cap) as usize];
        // Claim the slot for this lap: its last complete write must be
        // lap-1's (or the initial 0). A stalled writer from an older lap
        // still holds it — abandon rather than corrupt.
        if slot
            .seq_word
            .compare_exchange(2 * lap, 2 * lap + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.inc();
            return;
        }
        if lap > 0 {
            // We just overwrote lap-1's event.
            self.dropped.inc();
        }
        let ns = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        slot.seq_no.store(n, Ordering::Relaxed);
        slot.ns.store(ns, Ordering::Relaxed);
        slot.kind.store(kind as u16 as u64, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.parent.store(parent, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq_word.store(2 * (lap + 1), Ordering::Release);
    }

    /// A consistent copy of the current contents, oldest first. Torn
    /// slots (mid-write during the scan) are skipped, never misread.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let before = slot.seq_word.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // never written, or write in progress
            }
            let seq = slot.seq_no.load(Ordering::Relaxed);
            let ns = slot.ns.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let trace = slot.trace.load(Ordering::Relaxed);
            let parent = slot.parent.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            if slot.seq_word.load(Ordering::Acquire) != before {
                continue; // torn: a writer moved in under us
            }
            let Some(kind) = EventKind::from_u16(kind as u16) else {
                continue;
            };
            out.push(Event {
                seq,
                ns,
                kind,
                trace,
                parent,
                a,
                b,
            });
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// Renders a snapshot as a JSON document:
    /// `{"dropped":N,"events":[…]}`.
    pub fn to_json(&self) -> String {
        let events = self.snapshot();
        let mut out = format!("{{\"dropped\":{},\"events\":[", self.dropped());
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Writes a human-readable dump of the current contents, newest
    /// last, with a reason header. Used by the abort path and the panic
    /// hook; safe to call from either.
    pub fn dump<W: std::io::Write>(&self, mut w: W, reason: &str) -> std::io::Result<()> {
        let events = self.snapshot();
        writeln!(
            w,
            "=== flight recorder dump: {reason} ({} events, {} dropped) ===",
            events.len(),
            self.dropped()
        )?;
        for e in &events {
            writeln!(
                w,
                "  [{:>10}ns] #{:<6} {:<20} trace={} parent={} a={} b={}",
                e.ns,
                e.seq,
                e.kind.as_str(),
                e.trace,
                e.parent,
                e.a,
                e.b
            )?;
        }
        writeln!(w, "=== end of dump ===")
    }
}

fn ring_capacity(env: &str, default: usize) -> usize {
    std::env::var(env)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(default)
        .clamp(2, 1 << 22)
}

/// The process-wide trace ring (capacity `OI_RAID_TRACE_RING`, default
/// 65536 events).
pub fn traces() -> &'static EventRing {
    static RING: OnceLock<EventRing> = OnceLock::new();
    RING.get_or_init(|| EventRing::new(ring_capacity("OI_RAID_TRACE_RING", 65536)))
}

/// The process-wide flight recorder (capacity `OI_RAID_FLIGHT_RING`,
/// default 4096 events).
pub fn flight() -> &'static EventRing {
    static RING: OnceLock<EventRing> = OnceLock::new();
    RING.get_or_init(|| EventRing::new(ring_capacity("OI_RAID_FLIGHT_RING", 4096)))
}

/// Publishes one causal-tree edge to the trace ring. Callers gate on a
/// non-zero trace id; this does not consult the sampler again.
#[inline]
pub fn trace_event(kind: EventKind, trace: u64, parent: u64, a: u64, b: u64) {
    traces().push(kind, trace, parent, a, b);
}

/// If the calling thread is inside a trace, mints a child node, records
/// the parent→child edge, and enters the child until the returned guard
/// drops. Outside a trace (`current_trace() == 0`) nothing is recorded
/// and `None` comes back — the untraced cost is one thread-local read.
///
/// This is the one-liner every interior layer uses to hang its stage
/// (a store batch, a per-disk run, a degraded reconstruct) under
/// whatever requested it.
#[inline]
pub fn trace_scope(kind: EventKind, a: u64, b: u64) -> Option<crate::TraceGuard> {
    let parent = crate::current_trace();
    if parent == 0 {
        return None;
    }
    let node = crate::alloc_trace_id();
    trace_event(kind, node, parent, a, b);
    Some(crate::enter_trace(node))
}

/// Publishes one incident to the flight recorder. Not gated by the
/// telemetry kill switch: incidents are rare and the black box must be
/// populated exactly when things go wrong. The ambient trace id (if the
/// recording thread has one) is attached automatically so incidents link
/// back into request trees.
#[inline]
pub fn flight_event(kind: EventKind, a: u64, b: u64) {
    let trace = crate::current_trace();
    flight().push(kind, trace, 0, a, b);
}

/// Installs a panic hook (once) that dumps the flight recorder to
/// stderr before delegating to the previous hook. Idempotent.
pub fn flight_dump_on_panic() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = flight().dump(std::io::stderr().lock(), "panic");
        prev(info);
    }));
}

/// Attaches the global rings' live drop counters to `reg` as
/// `oi_trace_dropped_total{ring="trace"|"flight"}`.
pub fn export_trace_metrics(reg: &Registry) {
    const HELP: &str = "Events lost to ring overwrite or writer collision";
    reg.register_counter(
        "oi_trace_dropped_total",
        HELP,
        &[("ring", "trace")],
        traces().drop_counter(),
    );
    reg.register_counter(
        "oi_trace_dropped_total",
        HELP,
        &[("ring", "flight")],
        flight().drop_counter(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_snapshot_roundtrip() {
        let ring = EventRing::new(8);
        ring.push(EventKind::VolumeRead, 10, 0, 3, 0);
        ring.push(EventKind::Wave, 11, 10, 1, 4);
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::VolumeRead);
        assert_eq!(events[0].trace, 10);
        assert_eq!(events[1].parent, 10);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert!(events[0].ns <= events[1].ns);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_overwrites() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.push(EventKind::Retry, 0, 0, i, 0);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(events[0].a, 6, "oldest surviving event");
        assert_eq!(events[3].a, 9);
    }

    #[test]
    fn concurrent_writers_and_readers_never_tear() {
        let ring = std::sync::Arc::new(EventRing::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..2000u64 {
                        // a and b carry a checksum pair: b must equal a ^ t.
                        r.push(EventKind::DeviceRead, t, 0, i, i ^ t);
                    }
                });
            }
            for _ in 0..2 {
                let r = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for _ in 0..200 {
                        for e in r.snapshot() {
                            assert_eq!(e.b, e.a ^ e.trace, "torn slot observed");
                        }
                    }
                });
            }
        });
        let total = ring.pushed();
        assert_eq!(total, 8000);
        let surviving = ring.snapshot().len() as u64;
        assert_eq!(
            surviving + ring.dropped(),
            total,
            "every event is either readable or counted as dropped"
        );
    }

    #[test]
    fn json_and_dump_render() {
        let ring = EventRing::new(8);
        ring.push(EventKind::Escalation, 5, 0, 2, 0);
        let j = ring.to_json();
        assert!(j.starts_with("{\"dropped\":0,\"events\":["));
        assert!(j.contains("\"kind\":\"escalation\""));
        assert!(j.contains("\"trace\":5"));
        let mut buf = Vec::new();
        ring.dump(&mut buf, "test").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("flight recorder dump: test"));
        assert!(text.contains("escalation"));
    }

    #[test]
    fn kind_roundtrips_through_u16() {
        for kind in [
            EventKind::VolumeRead,
            EventKind::Wave,
            EventKind::DiskRun,
            EventKind::SchedOp,
            EventKind::DeviceWrite,
            EventKind::Retry,
            EventKind::Escalation,
            EventKind::LatentRepair,
        ] {
            assert_eq!(EventKind::from_u16(kind as u16), Some(kind));
        }
        assert_eq!(EventKind::from_u16(999), None);
    }

    #[test]
    fn flight_event_attaches_ambient_trace() {
        let _g = crate::enter_trace(77);
        flight_event(EventKind::DirtySkip, 1, 0);
        let found = flight()
            .snapshot()
            .iter()
            .any(|e| e.kind == EventKind::DirtySkip && e.trace == 77);
        assert!(found, "flight event carries the ambient trace id");
    }

    #[test]
    fn export_registers_drop_counters() {
        let reg = Registry::new();
        export_trace_metrics(&reg);
        let text = reg.prometheus();
        assert!(text.contains("oi_trace_dropped_total{ring=\"flight\"}"));
        assert!(text.contains("oi_trace_dropped_total{ring=\"trace\"}"));
        crate::lint_prometheus(&text).expect("clean exposition");
    }
}
