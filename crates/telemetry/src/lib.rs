//! In-tree telemetry for the OI-RAID reproduction: latency histograms,
//! tracing spans, live progress, and Prometheus/JSON export — with zero
//! external dependencies, cheap enough to leave always-on.
//!
//! Declustered-RAID evaluation lives and dies on *tail* behaviour: the
//! paper's balanced-rebuild-load claim is about the slowest disk, not the
//! average one, and a production rebuild needs to be watchable in flight.
//! This crate provides the substrate every performance experiment reports
//! against:
//!
//! * [`Histogram`] — a lock-free, log-bucketed latency histogram
//!   (HdrHistogram-style: power-of-two major buckets × 16 linear
//!   sub-buckets, ≤ 6.25 % relative quantile error, atomic counts,
//!   mergeable). Recording is a handful of relaxed atomic adds.
//! * [`Registry`] — labeled counters, gauges, and histograms, exported as
//!   Prometheus text exposition ([`Registry::prometheus`]) or JSON
//!   ([`Registry::json`]); [`lint_prometheus`] validates the exposition
//!   format in-tree (used by CI).
//! * [`Tracer`] / [`Span`] — lightweight spans and events recorded into a
//!   fixed-size ring buffer (span id, parent, label, start/duration,
//!   thread), for per-stage rebuild timing.
//! * [`Progress`] — an atomic chunks-done / bytes-done handle pollable
//!   from another thread while a rebuild runs (fraction, MiB/s, ETA).
//! * Trace context ([`sample_trace`], [`enter_trace`]) and the global
//!   event rings ([`traces`], [`flight`]) — cross-layer request tracing
//!   and an always-on flight recorder; see the `context` and `events`
//!   module docs.
//! * [`ScrapeServer`] — a `std::net` HTTP endpoint serving `/metrics`,
//!   `/traces`, `/events`, `/progress`, and `/health` for `curl` and
//!   Prometheus.
//!
//! The whole layer can be switched off process-wide ([`set_enabled`], or
//! `OI_RAID_TELEMETRY=off` in the environment) to measure its own
//! overhead — experiment E15 records the cost either way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod events;
mod export;
mod histogram;
mod progress;
mod registry;
mod serve;
mod trace;

pub use context::{
    alloc_trace_id, current_trace, enter_trace, sample_trace, set_trace_sample, trace_always,
    tracing_active, TraceGuard,
};
pub use events::{
    export_trace_metrics, flight, flight_dump_on_panic, flight_event, trace_event, trace_scope,
    traces, Event, EventKind, EventRing,
};
pub use export::{json_escape, lint_prometheus};
pub use histogram::{exact_percentile_sorted, Histogram, HistogramSnapshot, BUCKETS};
pub use progress::{Progress, ProgressSnapshot};
pub use registry::{Counter, Gauge, Registry, RegistryError};
pub use serve::ScrapeServer;
pub use trace::{child_coverage, Span, SpanRecord, Tracer};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialised (consult the environment), 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry recording is enabled.
///
/// Defaults to **on**; the first call consults `OI_RAID_TELEMETRY`
/// (`off`/`0` disables) and latches the answer. [`set_enabled`] overrides
/// at any time. Disabled telemetry skips histogram recording and span
/// capture; counters and progress stay live (they are functional state,
/// not instrumentation).
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("OI_RAID_TELEMETRY").as_deref(),
                Ok("off") | Ok("0")
            );
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces telemetry recording on or off process-wide (overhead
/// experiments toggle this around identical workloads).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_by_default() {
        // Tests in this crate rely on recording being live; pin it rather
        // than depend on the environment.
        super::set_enabled(true);
        assert!(super::enabled());
    }
}
