//! Lightweight tracing spans recorded into a fixed-size ring buffer.
//!
//! A [`Span`] measures one stage of work: it captures a start time when
//! opened and pushes a [`SpanRecord`] (id, parent, label, start offset,
//! duration, thread) into the tracer's ring when dropped. Spans nest via
//! [`Span::child`] and can be handed to worker threads (`Span` is `Sync`;
//! children borrow the same tracer). The ring holds the most recent
//! `capacity` records; older ones are dropped and counted, so tracing is
//! always-on without unbounded memory.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::registry::Counter;

/// One completed span or instantaneous event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the tracer (1-based; ids are allocated at open
    /// time, so nested spans have higher ids than their parents).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Stage label.
    pub label: String,
    /// Start, in nanoseconds since the tracer was created.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for events).
    pub duration_ns: u64,
    /// Ordinal of the recording thread (stable per thread, process-wide).
    pub thread: u64,
}

impl SpanRecord {
    /// End of the span, in nanoseconds since the tracer was created.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.duration_ns
    }
}

/// Process-wide stable small integers for threads (`ThreadId` has no
/// stable numeric accessor).
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: Cell<u64> = const { Cell::new(0) };
    }
    ORDINAL.with(|c| {
        if c.get() == 0 {
            c.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        c.get()
    })
}

/// A span recorder with a bounded ring buffer.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    next_id: AtomicU64,
    dropped: Counter,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
}

impl Default for Tracer {
    /// A tracer holding the most recent 4096 records.
    fn default() -> Self {
        Self::new(4096)
    }
}

impl Tracer {
    /// A tracer whose ring holds the most recent `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            dropped: Counter::default(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
        }
    }

    /// Opens a root span. The record is captured when the guard drops.
    pub fn span(&self, label: impl Into<String>) -> Span<'_> {
        self.open(label.into(), 0)
    }

    /// Records an instantaneous root event.
    pub fn event(&self, label: impl Into<String>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(SpanRecord {
            id,
            parent: 0,
            label: label.into(),
            start_ns: self.now_ns(),
            duration_ns: 0,
            thread: thread_ordinal(),
        });
    }

    /// Completed records, oldest first (a copy; recording continues).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .expect("trace ring")
            .iter()
            .cloned()
            .collect()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The live drop counter, attachable to a registry (exported by the
    /// rebuild observer as `oi_trace_dropped_total{ring="span"}`) so
    /// silent span loss shows up on a scrape.
    pub fn drop_counter(&self) -> Counter {
        self.dropped.clone()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn open(&self, label: String, parent: u64) -> Span<'_> {
        Span {
            tracer: self,
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            label,
            start: Instant::now(),
            start_ns: self.now_ns(),
        }
    }

    fn push(&self, rec: SpanRecord) {
        if !crate::enabled() {
            return;
        }
        let mut ring = self.ring.lock().expect("trace ring");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.inc();
        }
        ring.push_back(rec);
    }
}

/// An open span; records itself into the tracer's ring on drop.
#[derive(Debug)]
pub struct Span<'t> {
    tracer: &'t Tracer,
    id: u64,
    parent: u64,
    label: String,
    start: Instant,
    start_ns: u64,
}

impl<'t> Span<'t> {
    /// This span's id (use to correlate records).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span (may be used from another thread; the record is
    /// stamped with the recording thread's ordinal).
    pub fn child(&self, label: impl Into<String>) -> Span<'t> {
        self.tracer.open(label.into(), self.id)
    }

    /// Records an instantaneous event under this span.
    pub fn event(&self, label: impl Into<String>) {
        let id = self.tracer.next_id.fetch_add(1, Ordering::Relaxed);
        self.tracer.push(SpanRecord {
            id,
            parent: self.id,
            label: label.into(),
            start_ns: self.tracer.now_ns(),
            duration_ns: 0,
            thread: thread_ordinal(),
        });
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.tracer.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            label: std::mem::take(&mut self.label),
            start_ns: self.start_ns,
            duration_ns: self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            thread: thread_ordinal(),
        });
    }
}

/// Fraction of `parent`'s duration covered by the union of its direct
/// children's intervals, from a record list (0.0 when the parent is
/// missing or zero-length). Used to check that stage spans account for
/// the whole of a rebuild's wall time.
pub fn child_coverage(records: &[SpanRecord], parent_id: u64) -> f64 {
    let Some(parent) = records.iter().find(|r| r.id == parent_id) else {
        return 0.0;
    };
    if parent.duration_ns == 0 {
        return 0.0;
    }
    let mut intervals: Vec<(u64, u64)> = records
        .iter()
        .filter(|r| r.parent == parent_id && r.duration_ns > 0)
        .map(|r| (r.start_ns, r.end_ns()))
        .collect();
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = parent.start_ns;
    for (s, e) in intervals {
        let s = s.max(cursor);
        let e = e.min(parent.end_ns());
        if e > s {
            covered += e - s;
            cursor = e;
        }
    }
    covered as f64 / parent.duration_ns as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_with_nesting() {
        crate::set_enabled(true);
        let t = Tracer::new(64);
        {
            let root = t.span("rebuild");
            {
                let child = root.child("read");
                child.event("chunk");
            }
            root.event("checkpoint");
        }
        let recs = t.records();
        // Drop order: event(chunk), span(read), event(checkpoint), span(rebuild).
        assert_eq!(recs.len(), 4);
        let root = recs.iter().find(|r| r.label == "rebuild").unwrap();
        let read = recs.iter().find(|r| r.label == "read").unwrap();
        let chunk = recs.iter().find(|r| r.label == "chunk").unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(read.parent, root.id);
        assert_eq!(chunk.parent, read.id);
        assert_eq!(chunk.duration_ns, 0);
        assert!(read.duration_ns <= root.duration_ns);
        assert!(root.thread > 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        crate::set_enabled(true);
        let t = Tracer::new(4);
        for i in 0..10 {
            t.event(format!("e{i}"));
        }
        let recs = t.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(recs[0].label, "e6", "oldest surviving record");
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    fn coverage_of_sequential_children_is_high() {
        crate::set_enabled(true);
        let t = Tracer::new(64);
        let root_id;
        {
            let root = t.span("root");
            root_id = root.id();
            for stage in ["a", "b", "c"] {
                let _s = root.child(stage);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let recs = t.records();
        let cov = child_coverage(&recs, root_id);
        assert!(cov > 0.9, "sequential stages cover the root: {cov}");
        assert_eq!(child_coverage(&recs, 9999), 0.0);
    }

    #[test]
    fn spans_from_scoped_threads() {
        crate::set_enabled(true);
        let t = Tracer::new(64);
        let root = t.span("parallel");
        std::thread::scope(|s| {
            for d in 0..3 {
                let r = &root;
                s.spawn(move || {
                    let _w = r.child(format!("worker-{d}"));
                });
            }
        });
        drop(root);
        let recs = t.records();
        assert_eq!(recs.len(), 4);
        let threads: std::collections::HashSet<u64> = recs
            .iter()
            .filter(|r| r.label.starts_with("worker"))
            .map(|r| r.thread)
            .collect();
        assert_eq!(threads.len(), 3, "one ordinal per worker thread");
    }
}
