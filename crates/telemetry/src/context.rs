//! Cross-layer trace-context propagation.
//!
//! A *trace id* is a cheap process-unique `u64` (0 = "not traced") minted
//! at the edge of the system — one per sampled volume operation, one per
//! observed rebuild — and carried down through every layer the request
//! touches. Layers do not pass the id explicitly: the executing thread
//! keeps the id of the node it is currently working *under* in a
//! thread-local ([`current_trace`]), and each layer that fans work out
//! (a combining wave, a store batch, a scheduler op) mints a child id,
//! records the parent→child edge in the trace ring
//! ([`crate::trace_event`]), and [`enter_trace`]s the child for the
//! duration. Work that crosses threads (scheduler workers) re-enters the
//! context explicitly inside the worker callback.
//!
//! Sampling is head-based: [`sample_trace`] admits one in `N` requests
//! (`OI_RAID_TRACE_SAMPLE`, default one in 64; `1` traces everything,
//! `0`/`off` disables). The not-sampled and disabled paths are one
//! relaxed atomic load plus (when sampling is live) one relaxed
//! `fetch_add` — a nanosecond or two, cheap enough to leave in every
//! hot path. The global kill switch ([`crate::enabled`]) short-circuits
//! everything first.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Sampling latch: 0 = uninitialised (consult the environment),
/// `u32::MAX` = off, anything else = admit one in that many.
static SAMPLE: AtomicU32 = AtomicU32::new(0);

/// Requests seen by [`sample_trace`] (drives the 1/N admission).
static SEEN: AtomicU64 = AtomicU64::new(0);

/// Next trace id. Starts at 1 so 0 stays "not traced" forever.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

const OFF: u32 = u32::MAX;
const DEFAULT_EVERY: u32 = 64;

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

fn sample_every() -> u32 {
    match SAMPLE.load(Ordering::Relaxed) {
        0 => {
            let every = match std::env::var("OI_RAID_TRACE_SAMPLE").as_deref() {
                Ok(v) if v.trim().eq_ignore_ascii_case("off") => OFF,
                Ok(v) => match v.trim().parse::<u32>() {
                    Ok(0) => OFF,
                    Ok(n) => n,
                    Err(_) => DEFAULT_EVERY,
                },
                Err(_) => DEFAULT_EVERY,
            };
            SAMPLE.store(every, Ordering::Relaxed);
            every
        }
        n => n,
    }
}

/// Overrides the sampling rate process-wide: `Some(n)` admits one in `n`
/// requests (`Some(1)` traces everything), `None` disables tracing.
/// Normally set once via `OI_RAID_TRACE_SAMPLE`; tests and overhead
/// experiments toggle it directly.
pub fn set_trace_sample(every: Option<u32>) {
    SAMPLE.store(every.map_or(OFF, |n| n.max(1)), Ordering::Relaxed);
}

/// Whether any request can currently be sampled (telemetry on and a
/// finite sampling rate configured).
pub fn tracing_active() -> bool {
    crate::enabled() && sample_every() != OFF
}

/// Mints a fresh trace id unconditionally. Use for *interior* nodes of a
/// tree whose root was already admitted (waves, batches, scheduler ops);
/// edges of the tree are recorded separately via [`crate::trace_event`].
#[inline]
pub fn alloc_trace_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Head sampling: returns a fresh trace id for one in `N` calls, 0
/// otherwise. The 0 path is the cost every untraced request pays.
#[inline]
pub fn sample_trace() -> u64 {
    if !crate::enabled() {
        return 0;
    }
    let every = sample_every();
    if every == OFF {
        return 0;
    }
    if every == 1
        || SEEN
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every as u64)
    {
        alloc_trace_id()
    } else {
        0
    }
}

/// Like [`sample_trace`] but ignores the 1/N dice: admits whenever
/// tracing is active at all. Rare, long-lived roots (a rebuild) use this
/// so they are always reconstructible while sampling is on.
pub fn trace_always() -> u64 {
    if tracing_active() {
        alloc_trace_id()
    } else {
        0
    }
}

/// The trace id the current thread is working under (0 = untraced).
#[inline]
pub fn current_trace() -> u64 {
    CURRENT.with(|c| c.get())
}

/// Sets the thread's ambient trace id until the guard drops (restoring
/// the previous value, so nested scopes compose).
pub fn enter_trace(id: u64) -> TraceGuard {
    let prev = CURRENT.with(|c| c.replace(id));
    TraceGuard { prev }
}

/// Restores the previous ambient trace id on drop.
#[derive(Debug)]
pub struct TraceGuard {
    prev: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = alloc_trace_id();
        let b = alloc_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn context_nests_and_restores() {
        assert_eq!(current_trace(), 0);
        {
            let _a = enter_trace(7);
            assert_eq!(current_trace(), 7);
            {
                let _b = enter_trace(9);
                assert_eq!(current_trace(), 9);
            }
            assert_eq!(current_trace(), 7);
        }
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn context_is_per_thread() {
        let _g = enter_trace(42);
        std::thread::spawn(|| assert_eq!(current_trace(), 0))
            .join()
            .expect("spawned thread");
        assert_eq!(current_trace(), 42);
    }

    #[test]
    fn sampling_admits_one_in_n() {
        crate::set_enabled(true);
        set_trace_sample(Some(4));
        let admitted = (0..64).filter(|_| sample_trace() != 0).count();
        assert_eq!(admitted, 16, "1/4 of 64 calls admitted");
        set_trace_sample(Some(1));
        assert_ne!(sample_trace(), 0, "rate 1 admits everything");
        set_trace_sample(None);
        assert_eq!(sample_trace(), 0, "off admits nothing");
        assert!(!tracing_active());
        assert_eq!(trace_always(), 0, "trace_always respects the kill");
        set_trace_sample(Some(1));
        assert!(tracing_active());
        assert_ne!(trace_always(), 0);
    }

    #[test]
    fn kill_switch_short_circuits() {
        crate::set_enabled(false);
        set_trace_sample(Some(1));
        assert_eq!(sample_trace(), 0);
        crate::set_enabled(true);
        assert_ne!(sample_trace(), 0);
    }
}
