//! Construction cost of the block designs behind the layouts: the control
//! plane of array provisioning (and the backtracking search that covers
//! the non-prime-power Steiner sizes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("bibd");
    group.sample_size(15);
    group.bench_function("fano", |b| b.iter(bibd::fano));
    group.bench_function("bose_sts_33", |b| b.iter(|| bibd::bose_sts(black_box(33))));
    group.bench_function("netto_sts_31", |b| {
        b.iter(|| bibd::netto_sts(black_box(31)))
    });
    group.bench_function("projective_plane_8", |b| {
        b.iter(|| bibd::projective_plane(black_box(8)))
    });
    group.bench_function("search_sts_25", |b| {
        b.iter(|| bibd::search_difference_family(black_box(25), 3, 1_000_000))
    });
    group.bench_function("catalogue_57", |b| {
        b.iter(|| bibd::catalogue(black_box(57)))
    });
    group.finish();
}

criterion_group!(benches, bench_constructions);
criterion_main!(benches);
