//! Recovery-plan construction cost across the layout families — the
//! control-plane overhead of each scheme.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use layout::{FlatRaid5, Layout, ParityDeclustered, Raid50, SparePolicy};
use oi_raid::{OiRaid, OiRaidConfig};

fn bench_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    group.sample_size(20);
    let raid5 = FlatRaid5::new(21, 90).unwrap();
    group.bench_function("raid5_21x90", |b| {
        b.iter(|| raid5.recovery_plan(black_box(&[0]), SparePolicy::Dedicated))
    });
    let raid50 = Raid50::new(7, 3, 90).unwrap();
    group.bench_function("raid50_7x3", |b| {
        b.iter(|| raid50.recovery_plan(black_box(&[0]), SparePolicy::Dedicated))
    });
    let pd = ParityDeclustered::new(bibd::find_design(21, 5).unwrap(), 18).unwrap();
    group.bench_function("pd_21_5", |b| {
        b.iter(|| pd.recovery_plan(black_box(&[0]), SparePolicy::Distributed))
    });
    let oi = OiRaid::new(OiRaidConfig::new(bibd::fano(), 3, 10).unwrap()).unwrap();
    group.bench_function("oi_raid_fano_c10", |b| {
        b.iter(|| oi.recovery_plan(black_box(&[0]), SparePolicy::Distributed))
    });
    group.finish();
}

fn bench_survives(c: &mut Criterion) {
    let mut group = c.benchmark_group("survives");
    group.sample_size(20);
    let oi = OiRaid::new(OiRaidConfig::reference()).unwrap();
    group.bench_function("oi_raid_triple", |b| {
        b.iter(|| oi.survives(black_box(&[0, 7, 14])))
    });
    group.bench_function("oi_raid_fatal_quad", |b| {
        b.iter(|| oi.survives(black_box(&[0, 1, 3, 4])))
    });
    group.finish();
}

criterion_group!(benches, bench_plans, bench_survives);
criterion_main!(benches);
