//! Microbenchmarks of the GF(2^8) kernels that sit under every erasure
//! code's encode/decode path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gf::Gf256;

fn bench_gf(c: &mut Criterion) {
    let f = Gf256::get();
    let src: Vec<u8> = (0..65536u32).map(|i| (i * 31 + 7) as u8).collect();
    let mut out = vec![0u8; src.len()];

    let mut group = c.benchmark_group("gf256");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.sample_size(20);
    group.bench_function("mul_slice_64k", |b| {
        b.iter(|| f.mul_slice(black_box(0x57), black_box(&src), black_box(&mut out)))
    });
    group.bench_function("mul_acc_slice_64k", |b| {
        b.iter(|| f.mul_acc_slice(black_box(0x57), black_box(&src), black_box(&mut out)))
    });
    group.bench_function("scalar_mul", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for i in 0..=255u8 {
                acc ^= f.mul(black_box(i), black_box(0x83));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gf);
criterion_main!(benches);
