//! Kernel-layer microbenchmarks: the retained scalar references vs the
//! wide-word and SIMD paths, on the ≥64 KiB buffers the rebuild engine
//! actually moves. E14 in `EXPERIMENTS.md` records the measured ratios.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gf::kernels::{scalar, xor_acc, xor_acc_wide, MulTable};

const LEN: usize = 64 << 10;

fn buffers(seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut x = seed | 1;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x as u8
    };
    let src: Vec<u8> = (0..LEN).map(|_| next()).collect();
    let dst: Vec<u8> = (0..LEN).map(|_| next()).collect();
    (src, dst)
}

fn bench_xor(c: &mut Criterion) {
    let (src, mut dst) = buffers(0xBE);
    let mut group = c.benchmark_group("xor_64k");
    group.throughput(Throughput::Bytes(LEN as u64));
    group.sample_size(30);
    group.bench_function("scalar", |b| {
        b.iter(|| scalar::xor_acc(black_box(&mut dst), black_box(&src)))
    });
    group.bench_function("wide", |b| {
        b.iter(|| xor_acc_wide(black_box(&mut dst), black_box(&src)))
    });
    group.bench_function("dispatched", |b| {
        b.iter(|| xor_acc(black_box(&mut dst), black_box(&src)))
    });
    group.finish();
}

fn bench_mul(c: &mut Criterion) {
    let (src, dst0) = buffers(0xAF);
    let t = MulTable::new(0x57);
    let mut out = vec![0u8; LEN];
    let mut group = c.benchmark_group("mul_slice_64k");
    group.throughput(Throughput::Bytes(LEN as u64));
    group.sample_size(30);
    group.bench_function("scalar", |b| {
        b.iter(|| scalar::mul_slice(black_box(0x57), black_box(&src), black_box(&mut out)))
    });
    group.bench_function("wide", |b| {
        b.iter(|| t.mul_slice_wide(black_box(&src), black_box(&mut out)))
    });
    group.bench_function("simd", |b| {
        b.iter(|| t.mul_slice_simd(black_box(&src), black_box(&mut out)))
    });
    group.finish();

    let mut acc = dst0;
    let mut group = c.benchmark_group("mul_acc_slice_64k");
    group.throughput(Throughput::Bytes(LEN as u64));
    group.sample_size(30);
    group.bench_function("scalar", |b| {
        b.iter(|| scalar::mul_acc_slice(black_box(0x57), black_box(&src), black_box(&mut acc)))
    });
    group.bench_function("wide", |b| {
        b.iter(|| t.mul_acc_slice_wide(black_box(&src), black_box(&mut acc)))
    });
    group.bench_function("simd", |b| {
        b.iter(|| t.mul_acc_slice_simd(black_box(&src), black_box(&mut acc)))
    });
    group.bench_function("dispatched", |b| {
        b.iter(|| t.mul_acc_slice(black_box(&src), black_box(&mut acc)))
    });
    group.finish();
}

criterion_group!(benches, bench_xor, bench_mul);
criterion_main!(benches);
