//! End-to-end rebuild pipeline cost: plan + discrete-event simulation, and
//! the byte-level store's real reconstruction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use disksim::DiskSpec;
use layout::{Layout, SparePolicy};
use oi_raid::{OiRaid, OiRaidConfig, OiRaidStore, RecoveryStrategy};

fn bench_simulated_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_rebuild");
    group.sample_size(15);
    let oi = OiRaid::new(OiRaidConfig::new(bibd::fano(), 3, 8).unwrap()).unwrap();
    let spec = DiskSpec::hdd_7200(1_000_000_000_000);
    let chunk = 1_000_000_000_000 / oi.chunks_per_disk() as u64;
    for s in [RecoveryStrategy::Outer, RecoveryStrategy::Hybrid] {
        let plan = oi
            .recovery_plan_with_strategy(0, SparePolicy::Distributed, s)
            .unwrap();
        group.bench_function(format!("oi_{}", s.label()), |b| {
            b.iter(|| black_box(&plan).simulate(&spec, chunk).rebuild_time)
        });
    }
    group.finish();
}

fn bench_store_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    let store = OiRaidStore::new(OiRaidConfig::reference(), 4096).unwrap();
    for idx in 0..store.data_chunks() {
        store.write_data(idx, &vec![idx as u8; 4096]).unwrap();
    }
    group.bench_function("rebuild_one_disk_4k_chunks", |b| {
        b.iter(|| {
            let s = store.clone();
            s.fail_disk(4).unwrap();
            s.rebuild_disk(4).unwrap();
            s
        })
    });
    group.bench_function("write_update_path", |b| {
        let s = store.clone();
        let buf = vec![0xAAu8; 4096];
        b.iter(|| s.write_data(black_box(17), black_box(&buf)))
    });
    group.finish();
}

criterion_group!(benches, bench_simulated_rebuild, bench_store_reconstruction);
criterion_main!(benches);
