//! Encode/reconstruct throughput of the erasure codes (the per-chunk cost
//! behind every rebuild the timing experiments simulate).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ecc::{ErasureCode, EvenOdd, Raid6, Rdp, ReedSolomon, XorParity};

const UNIT: usize = 65532; // ~64 KiB, divisible by the p-1=6 symbol rows of EVENODD(7)/RDP(7)

fn data(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..UNIT).map(|j| (i * 131 + j * 17 + 3) as u8).collect())
        .collect()
}

fn bench_codes(c: &mut Criterion) {
    let codes: Vec<Box<dyn ErasureCode>> = vec![
        Box::new(XorParity::new(6).unwrap()),
        Box::new(Raid6::new(6).unwrap()),
        Box::new(EvenOdd::new(7).unwrap()),
        Box::new(Rdp::new(7).unwrap()),
        Box::new(ReedSolomon::new(6, 3).unwrap()),
    ];
    let mut group = c.benchmark_group("ecc");
    group.sample_size(15);
    for code in &codes {
        let k = code.data_units();
        let d = data(k);
        group.throughput(Throughput::Bytes((k * UNIT) as u64));
        group.bench_function(format!("encode/{}", code.name()), |b| {
            b.iter(|| code.encode(black_box(&d)).unwrap())
        });
        let parity = code.encode(&d).unwrap();
        let full: Vec<Option<Vec<u8>>> = d.iter().cloned().chain(parity).map(Some).collect();
        group.bench_function(format!("reconstruct1/{}", code.name()), |b| {
            b.iter(|| {
                let mut units = full.clone();
                units[1] = None;
                code.reconstruct(black_box(&mut units)).unwrap();
                units
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codes);
criterion_main!(benches);
