//! Ablation benches (A1 skew, A2 strategy): the design-choice comparisons
//! called out in `DESIGN.md`, measured as simulated rebuild times so the
//! numbers line up with the `experiments` binary's tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use disksim::DiskSpec;
use layout::{Layout, SparePolicy};
use oi_raid::{OiRaid, OiRaidConfig, RecoveryStrategy, SkewMode};

fn simulated_secs(array: &OiRaid, strategy: RecoveryStrategy) -> f64 {
    let cap: u64 = 1_000_000_000_000;
    let spec = DiskSpec::hdd_7200(cap);
    let chunk = cap / array.chunks_per_disk() as u64;
    let plan = array
        .recovery_plan_with_strategy(0, SparePolicy::Distributed, strategy)
        .unwrap();
    plan.simulate(&spec, chunk).rebuild_time.as_secs_f64()
}

fn bench_skew_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_skew");
    group.sample_size(10);
    let rotational = OiRaid::new(OiRaidConfig::new(bibd::fano(), 3, 4).unwrap()).unwrap();
    let naive =
        OiRaid::new(OiRaidConfig::with_skew(bibd::fano(), 3, 4, SkewMode::Naive).unwrap()).unwrap();
    group.bench_function("rotational_outer", |b| {
        b.iter(|| simulated_secs(black_box(&rotational), RecoveryStrategy::Outer))
    });
    group.bench_function("naive_outer", |b| {
        b.iter(|| simulated_secs(black_box(&naive), RecoveryStrategy::Outer))
    });
    group.finish();
}

fn bench_strategy_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_strategy");
    group.sample_size(10);
    let array = OiRaid::new(OiRaidConfig::new(bibd::fano(), 3, 4).unwrap()).unwrap();
    for s in RecoveryStrategy::ALL {
        group.bench_function(s.label(), |b| {
            b.iter(|| simulated_secs(black_box(&array), s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skew_ablation, bench_strategy_ablation);
criterion_main!(benches);
