//! Telemetry hot-path microbenchmarks: the cost of one histogram record
//! (the operation instrumented I/O pays per call), a snapshot+quantile,
//! a span open/drop cycle, and a full registry export. E15 in
//! `EXPERIMENTS.md` records the measured per-call costs and the end-to-end
//! rebuild overhead they imply.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use telemetry::{Histogram, Registry, Tracer};

fn bench_histogram(c: &mut Criterion) {
    telemetry::set_enabled(true);
    let h = Histogram::new();
    let mut group = c.benchmark_group("histogram");
    group.sample_size(50);
    group.bench_function("record", |b| {
        let mut x = 0x9E37_79B9u64;
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(black_box(x >> (x % 48)));
        })
    });
    for _ in 0..100_000 {
        h.record(rand_like(&h));
    }
    group.bench_function("snapshot_p99", |b| b.iter(|| black_box(h.snapshot().p99())));
    group.finish();

    // The kill switch: a disabled record must be near-free.
    telemetry::set_enabled(false);
    let off = Histogram::new();
    let mut group = c.benchmark_group("histogram_disabled");
    group.sample_size(50);
    group.bench_function("record", |b| b.iter(|| off.record(black_box(42))));
    group.finish();
    telemetry::set_enabled(true);
}

/// Cheap deterministic value derived from the histogram's own count.
fn rand_like(h: &Histogram) -> u64 {
    let mut x = h.count() | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x >> (x % 48)
}

fn bench_spans(c: &mut Criterion) {
    telemetry::set_enabled(true);
    let t = Tracer::new(4096);
    let mut group = c.benchmark_group("trace");
    group.sample_size(50);
    group.bench_function("span_open_drop", |b| {
        b.iter(|| {
            let _s = t.span(black_box("stage"));
        })
    });
    let root = t.span("root");
    group.bench_function("child_open_drop", |b| {
        b.iter(|| {
            let _s = root.child(black_box("item"));
        })
    });
    group.finish();
}

fn bench_export(c: &mut Criterion) {
    telemetry::set_enabled(true);
    let reg = Registry::new();
    for d in 0..21 {
        let disk = d.to_string();
        let h = Arc::new(Histogram::new());
        for v in 0..1000u64 {
            h.record(v * 997);
        }
        reg.register_histogram("lat_ns", "latency", &[("disk", &disk)], h);
        reg.counter("reads_total", "reads", &[("disk", &disk)])
            .inc_by(12345);
    }
    let mut group = c.benchmark_group("export");
    group.sample_size(30);
    group.bench_function("prometheus_21_disks", |b| {
        b.iter(|| black_box(reg.prometheus()))
    });
    group.bench_function("json_21_disks", |b| b.iter(|| black_box(reg.json())));
    group.finish();
}

fn bench_trace_hooks(c: &mut Criterion) {
    // The cross-layer hooks every foreground op may pay (E20): root
    // sampling, ambient-context reads, ring pushes, and the scope helper.
    let mut group = c.benchmark_group("trace_hooks");
    group.sample_size(50);

    // Kill switch off: the per-op cost when tracing is disabled entirely.
    telemetry::set_enabled(false);
    group.bench_function("sample_trace_disabled", |b| {
        b.iter(|| black_box(telemetry::sample_trace()))
    });
    telemetry::set_enabled(true);

    // Enabled but sampling switched off (`OI_RAID_TRACE_SAMPLE=off`).
    telemetry::set_trace_sample(None);
    group.bench_function("sample_trace_off", |b| {
        b.iter(|| black_box(telemetry::sample_trace()))
    });

    // Default 1/64 sampling: mostly the counter increment, 1-in-64 an id.
    telemetry::set_trace_sample(Some(64));
    group.bench_function("sample_trace_1_in_64", |b| {
        b.iter(|| black_box(telemetry::sample_trace()))
    });

    group.bench_function("current_trace", |b| {
        b.iter(|| black_box(telemetry::current_trace()))
    });

    // Untraced request: the scope helper's fast path returns None.
    group.bench_function("trace_scope_untraced", |b| {
        b.iter(|| {
            let g = telemetry::trace_scope(telemetry::EventKind::BatchRead, 1, 0);
            black_box(g.is_none())
        })
    });

    // Sampled request: a full edge event push into the trace ring.
    group.bench_function("trace_event_push", |b| {
        let parent = telemetry::alloc_trace_id();
        b.iter(|| {
            telemetry::trace_event(
                telemetry::EventKind::DeviceRead,
                telemetry::alloc_trace_id(),
                black_box(parent),
                7,
                4096,
            )
        })
    });

    group.bench_function("flight_event_push", |b| {
        b.iter(|| telemetry::flight_event(telemetry::EventKind::Retry, black_box(7), 1))
    });

    telemetry::set_trace_sample(Some(64));
    group.finish();
}

criterion_group!(
    benches,
    bench_histogram,
    bench_spans,
    bench_export,
    bench_trace_hooks
);
criterion_main!(benches);
