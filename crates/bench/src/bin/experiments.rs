//! Regenerates the reconstructed tables and figures of the OI-RAID
//! evaluation.
//!
//! ```text
//! experiments all          # every experiment
//! experiments e1 e5        # a subset
//! experiments --csv e3     # CSV instead of aligned text
//! experiments --out DIR e5 # also write each table as DIR/<title>.csv
//! experiments --list       # available ids
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut skip_next = false;
    let ids: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--out" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .collect();
    if args.iter().any(|a| a == "--list") || ids.is_empty() {
        eprintln!(
            "usage: experiments [--csv] <id>...\n\
             ids: e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15 e16 e17 e18 e19 e20 e21 e22 a1 a2 all"
        );
        return if ids.is_empty() && !args.iter().any(|a| a == "--list") {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    for id in ids {
        match bench::experiments::run(id) {
            Some(tables) => {
                for (title, table) in tables {
                    if csv {
                        println!("# {title}");
                        print!("{}", table.to_csv());
                    } else {
                        println!("\n== {title} ==\n");
                        print!("{}", table.render());
                    }
                    if let Some(dir) = &out_dir {
                        if let Err(e) = std::fs::create_dir_all(dir) {
                            eprintln!("cannot create {dir}: {e}");
                            return ExitCode::FAILURE;
                        }
                        let slug: String = title
                            .chars()
                            .map(|c| if c.is_alphanumeric() { c } else { '_' })
                            .collect();
                        let path = format!("{dir}/{slug}.csv");
                        if let Err(e) = std::fs::write(&path, table.to_csv()) {
                            eprintln!("cannot write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
