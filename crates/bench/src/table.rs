//! Minimal table rendering: aligned plain text for the terminal plus CSV
//! lines for plotting, with no external dependencies.

use std::fmt::Write as _;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use bench::table::Table;
///
/// let mut t = Table::new(&["layout", "time (s)"]);
/// t.row(&["RAID5", "1200.0"]);
/// t.row(&["OI-RAID", "150.0"]);
/// let text = t.render();
/// assert!(text.contains("OI-RAID"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the aligned plain-text table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", c, w = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        let _ = cols;
        out
    }

    /// Renders the table as CSV (for plotting scripts).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 significant decimals (experiment-table style).
pub fn f3(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a float in scientific notation with 3 digits.
pub fn sci(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row(&["only-one"]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(&["a,b", "c"]);
        t.row(&["x\"y", "z"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(1234.5), "1234"); // {:.0} rounds half-to-even
        assert_eq!(f3(6.54321), "6.54");
        assert_eq!(f3(0.01234), "0.0123");
        assert_eq!(f3(f64::INFINITY), "inf");
        assert_eq!(
            sci(12345.0),
            "1.234e4".replace("1.234e4", &format!("{:.3e}", 12345.0))
        );
    }
}
