//! The reconstructed evaluation: one function per table/figure.
//!
//! Each function returns `(title, Table)` pairs so the binary can print them
//! and tests can assert their structure. Experiment ids follow `DESIGN.md`
//! §3; `EXPERIMENTS.md` records the measured outcomes against the paper's
//! claims.

use disksim::{ArrivalProcess, DiskSpec, SimTime, Workload, WorkloadKind};
use ecc::{ErasureCode, EvenOdd, Lrc, Raid6 as EccRaid6, Rdp, ReedSolomon, Replication, XorParity};
use layout::{FlatRaid5, FlatRaid6, Layout, ParityDeclustered, Raid50, RecoveryPlan, SparePolicy};
use oi_raid::{
    analysis::Model, DegradedScenario, OiRaid, OiRaidConfig, RecoveryStrategy, SkewMode,
};
use reliability::markov::array_mttdl;
use reliability::montecarlo::{simulate_lifetime, LifetimeConfig};
use reliability::patterns::{survivable_fraction, survival_profile};

use crate::table::{f3, sci, Table};

/// Disk capacity used by the timing experiments (1 TB).
pub const CAPACITY: u64 = 1_000_000_000_000;

/// The `(v, k, g)` sweep used by E1/E3/E10 — every outer design the `bibd`
/// catalogue provides at moderate scale, paired with the smallest prime
/// group size `>= k`.
pub fn sweep_parameters() -> Vec<(usize, usize, usize)> {
    vec![
        (7, 3, 3),
        (9, 3, 3),
        (13, 3, 3),
        (13, 4, 5),
        (21, 5, 5),
        (25, 5, 5),
        (31, 6, 7),
    ]
}

/// Builds the OI-RAID array for one sweep point.
///
/// # Panics
///
/// Panics if the design or config is unavailable (the sweep list is
/// validated by tests).
pub fn sweep_array(v: usize, k: usize, g: usize) -> OiRaid {
    let design =
        bibd::find_design(v, k).unwrap_or_else(|| panic!("catalogue must provide ({v},{k},1)"));
    OiRaid::new(OiRaidConfig::new(design, g, 1).expect("valid config")).expect("constructs")
}

fn hdd() -> DiskSpec {
    DiskSpec::hdd_7200(CAPACITY)
}

fn rebuild_secs(plan: &RecoveryPlan, chunks_per_disk: usize) -> f64 {
    let chunk_bytes = CAPACITY / chunks_per_disk as u64;
    plan.simulate(&hdd(), chunk_bytes)
        .rebuild_time
        .as_secs_f64()
}

/// E1 — single-disk recovery time and speedup vs array size.
pub fn e1_recovery_speedup() -> Vec<(String, Table)> {
    let mut sim_t = Table::new(&[
        "n",
        "v",
        "k",
        "g",
        "RAID5 (s)",
        "RAID50 (s)",
        "OI outer (s)",
        "OI hybrid (s)",
        "speedup vs RAID5",
        "speedup vs RAID50",
    ]);
    let mut ana_t = Table::new(&[
        "n",
        "v",
        "k",
        "g",
        "bottleneck frac (outer)",
        "bottleneck frac (hybrid)",
        "model speedup vs RAID5",
        "PD frac (1-fault baseline)",
    ]);
    for (v, k, g) in sweep_parameters() {
        let array = sweep_array(v, k, g);
        let n = array.disks();
        let t = array.chunks_per_disk();
        // Baselines sized identically (same n, same chunk grid).
        let raid5 = FlatRaid5::new(n, t).expect("raid5 geometry");
        let raid50 = Raid50::new(v, g, t).expect("raid50 geometry");
        let t_r5 = rebuild_secs(
            &raid5.recovery_plan(&[0], SparePolicy::Dedicated).unwrap(),
            t,
        );
        let t_r50 = rebuild_secs(
            &raid50.recovery_plan(&[0], SparePolicy::Dedicated).unwrap(),
            t,
        );
        let t_outer = rebuild_secs(
            &array
                .recovery_plan_with_strategy(0, SparePolicy::Distributed, RecoveryStrategy::Outer)
                .unwrap(),
            t,
        );
        let t_hybrid = rebuild_secs(
            &array
                .recovery_plan_with_strategy(0, SparePolicy::Distributed, RecoveryStrategy::Hybrid)
                .unwrap(),
            t,
        );
        sim_t.row_owned(vec![
            n.to_string(),
            v.to_string(),
            k.to_string(),
            g.to_string(),
            f3(t_r5),
            f3(t_r50),
            f3(t_outer),
            f3(t_hybrid),
            f3(t_r5 / t_hybrid),
            f3(t_r50 / t_hybrid),
        ]);
        let m = Model::of(&array);
        ana_t.row_owned(vec![
            n.to_string(),
            v.to_string(),
            k.to_string(),
            g.to_string(),
            f3(m.bottleneck_read_fraction(RecoveryStrategy::Outer)),
            f3(m.bottleneck_read_fraction(RecoveryStrategy::Hybrid)),
            f3(m.read_speedup_vs_raid5(RecoveryStrategy::Hybrid)),
            f3(m.pd_read_fraction()),
        ]);
    }
    vec![
        (
            "E1a: simulated single-disk rebuild time (1 TB disks)".into(),
            sim_t,
        ),
        ("E1b: analytical bottleneck model".into(), ana_t),
    ]
}

/// E2 — recovery time vs disk capacity (reference 21-disk config).
pub fn e2_capacity_sweep() -> Vec<(String, Table)> {
    let array = OiRaid::new(OiRaidConfig::reference()).unwrap();
    let t = array.chunks_per_disk();
    let raid5 = FlatRaid5::new(array.disks(), t).unwrap();
    let mut table = Table::new(&[
        "capacity (GB)",
        "HDD RAID5 (s)",
        "HDD OI (s)",
        "HDD speedup",
        "SSD RAID5 (s)",
        "SSD OI (s)",
        "SSD speedup",
    ]);
    for gb in [250u64, 500, 1000, 2000, 4000] {
        let cap = gb * 1_000_000_000;
        let chunk = cap / t as u64;
        let p5 = raid5.recovery_plan(&[0], SparePolicy::Dedicated).unwrap();
        let po = array
            .recovery_plan_with_strategy(0, SparePolicy::Distributed, RecoveryStrategy::Hybrid)
            .unwrap();
        let mut cells = vec![gb.to_string()];
        for spec in [DiskSpec::hdd_7200(cap), DiskSpec::ssd_sata(cap)] {
            let t5 = p5.simulate(&spec, chunk).rebuild_time.as_secs_f64();
            let to = po.simulate(&spec, chunk).rebuild_time.as_secs_f64();
            cells.push(f3(t5));
            cells.push(f3(to));
            cells.push(f3(t5 / to));
        }
        table.row_owned(cells);
    }
    vec![(
        "E2: rebuild time vs disk capacity (n=21; HDD and SSD media)".into(),
        table,
    )]
}

/// E3 — storage overhead comparison.
pub fn e3_storage_overhead() -> Vec<(String, Table)> {
    let mut table = Table::new(&["scheme", "tolerance", "efficiency", "overhead"]);
    for (v, k, g) in sweep_parameters() {
        let m = Model::from_parameters(v, k, g);
        table.row_owned(vec![
            format!("OI-RAID(v={v},k={k},g={g})"),
            "3".into(),
            f3(m.efficiency()),
            f3(m.storage_overhead()),
        ]);
    }
    let codes: Vec<Box<dyn ErasureCode>> = vec![
        Box::new(XorParity::new(6).unwrap()),
        Box::new(EccRaid6::new(6).unwrap()),
        Box::new(EvenOdd::new(7).unwrap()),
        Box::new(Rdp::new(7).unwrap()),
        Box::new(ReedSolomon::new(6, 3).unwrap()),
        Box::new(Lrc::new(12, 2, 2).unwrap()),
        Box::new(Replication::new(3).unwrap()),
        Box::new(Replication::new(4).unwrap()),
    ];
    for c in codes {
        let e = c.efficiency();
        table.row_owned(vec![
            c.name(),
            c.fault_tolerance().to_string(),
            f3(e),
            f3((1.0 - e) / e),
        ]);
    }
    vec![("E3: storage overhead (claim C7)".into(), table)]
}

/// E4 — update complexity (writes per user write).
pub fn e4_update_complexity() -> Vec<(String, Table)> {
    let mut table = Table::new(&["scheme", "tolerance", "writes/update", "optimal?"]);
    let array = OiRaid::new(OiRaidConfig::reference()).unwrap();
    // Measure by actually counting the update set over every data chunk.
    let counts: Vec<usize> = (0..array.data_chunks())
        .map(|i| {
            array
                .update_set(array.locate_data(i))
                .map_or(0, |s| s.len())
        })
        .collect();
    assert!(counts.iter().all(|&c| c == 4));
    table.row(&["OI-RAID (measured over all chunks)", "3", "4", "yes"]);
    let codes: Vec<(Box<dyn ErasureCode>, &str)> = vec![
        (Box::new(XorParity::new(6).unwrap()), "yes"),
        (Box::new(EccRaid6::new(6).unwrap()), "yes"),
        (Box::new(ReedSolomon::new(6, 3).unwrap()), "yes"),
        (Box::new(Lrc::new(12, 2, 2).unwrap()), "yes"),
        (Box::new(Replication::new(3).unwrap()), "no"),
    ];
    for (c, opt) in codes {
        table.row_owned(vec![
            c.name(),
            c.fault_tolerance().to_string(),
            c.update_cost().total_writes().to_string(),
            opt.into(),
        ]);
    }
    vec![("E4: update complexity (claim C6)".into(), table)]
}

/// The comparison layouts at the reference scale (21 disks).
fn reference_layouts() -> Vec<(String, Box<dyn Layout>)> {
    let array = OiRaid::new(OiRaidConfig::reference()).unwrap();
    let pd_design = bibd::find_design(21, 5).expect("(21,5,1) exists");
    vec![
        ("OI-RAID(7,3,g=3)".into(), Box::new(array)),
        ("RAID5(21)".into(), Box::new(FlatRaid5::new(21, 9).unwrap())),
        ("RAID6(21)".into(), Box::new(FlatRaid6::new(21, 9).unwrap())),
        (
            "RAID50(7x3)".into(),
            Box::new(Raid50::new(7, 3, 9).unwrap()),
        ),
        (
            "PD(21,5,1)".into(),
            Box::new(ParityDeclustered::new(pd_design, 1).unwrap()),
        ),
    ]
}

/// E5 — probability of data loss vs number of failed disks.
pub fn e5_loss_probability() -> Vec<(String, Table)> {
    let budget = 25_000u64;
    let mut table = Table::new(&["layout", "f=1", "f=2", "f=3", "f=4", "f=5", "f=6"]);
    for (name, l) in reference_layouts() {
        let mut cells = vec![name];
        for f in 1..=6usize {
            let q = survivable_fraction(l.as_ref(), f, budget, 0xE5 + f as u64);
            cells.push(f3(1.0 - q));
        }
        table.row_owned(cells);
    }
    vec![(
        "E5: P(data loss | f simultaneous failures), 21 disks".into(),
        table,
    )]
}

/// E6 — rebuild read-load distribution and the skew ablation (also A1).
pub fn e6_load_distribution() -> Vec<(String, Table)> {
    let mut table = Table::new(&[
        "layout/skew",
        "strategy",
        "max load (chunks)",
        "mean load",
        "balance (max/mean)",
    ]);
    let mut add = |name: &str, array: &OiRaid, strategy: RecoveryStrategy| {
        let plan = array
            .recovery_plan_with_strategy(0, SparePolicy::Distributed, strategy)
            .unwrap();
        let load = plan.read_load(array.disks());
        let survivors: Vec<u64> = (0..array.disks())
            .filter(|&d| d != 0)
            .map(|d| load[d])
            .collect();
        let max = *survivors.iter().max().unwrap();
        let mean = survivors.iter().sum::<u64>() as f64 / survivors.len() as f64;
        table.row_owned(vec![
            name.into(),
            strategy.label().into(),
            max.to_string(),
            f3(mean),
            f3(max as f64 / mean),
        ]);
    };
    let skewed = OiRaid::new(OiRaidConfig::new(bibd::fano(), 3, 4).unwrap()).unwrap();
    let naive =
        OiRaid::new(OiRaidConfig::with_skew(bibd::fano(), 3, 4, SkewMode::Naive).unwrap()).unwrap();
    for s in RecoveryStrategy::ALL {
        add("OI rotational", &skewed, s);
    }
    add("OI naive (ablation)", &naive, RecoveryStrategy::Outer);
    add("OI naive (ablation)", &naive, RecoveryStrategy::OuterAll);
    vec![(
        "E6/A1: per-survivor rebuild read load, disk 0 failed (c=4)".into(),
        table,
    )]
}

/// E7 — MTTDL vs disk MTTF (Markov) with a Monte-Carlo cross-check.
pub fn e7_mttdl() -> Vec<(String, Table)> {
    let budget = 8_000u64;
    // Repair times from the simulated rebuilds (hours at 1 TB).
    let array = OiRaid::new(OiRaidConfig::reference()).unwrap();
    let t = array.chunks_per_disk();
    let oi_repair_h = rebuild_secs(
        &array
            .recovery_plan_with_strategy(0, SparePolicy::Distributed, RecoveryStrategy::Hybrid)
            .unwrap(),
        t,
    ) / 3600.0;
    let raid5 = FlatRaid5::new(21, t).unwrap();
    let r5_repair_h = rebuild_secs(
        &raid5.recovery_plan(&[0], SparePolicy::Dedicated).unwrap(),
        t,
    ) / 3600.0;
    let mut table = Table::new(&[
        "MTTF (h)",
        "RAID5(21)",
        "RAID6(21)",
        "RAID50(7x3)",
        "OI-RAID",
    ]);
    let layouts = reference_layouts();
    let profiles: Vec<(String, Vec<f64>, f64)> = layouts
        .iter()
        .filter(|(n, _)| !n.starts_with("PD"))
        .map(|(name, l)| {
            let q = survival_profile(l.as_ref(), 5, budget, 0xE7);
            let repair = if name.starts_with("OI") {
                oi_repair_h
            } else {
                r5_repair_h
            };
            (name.clone(), q, repair)
        })
        .collect();
    for mttf in [100_000.0f64, 300_000.0, 600_000.0, 1_000_000.0, 1_500_000.0] {
        let mut cells = vec![format!("{mttf:.0}")];
        for (name, q, repair) in &profiles {
            if name.starts_with("OI") {
                continue;
            }
            cells.push(sci(array_mttdl(21, mttf, *repair, q)));
        }
        let (_, q, repair) = profiles
            .iter()
            .find(|(n, _, _)| n.starts_with("OI"))
            .expect("OI profile present");
        cells.push(sci(array_mttdl(21, mttf, *repair, q)));
        table.row_owned(cells);
    }
    // Monte-Carlo cross-check at harsh parameters (so losses happen).
    let mut mc = Table::new(&["layout", "Markov MTTDL (h)", "MC MTTDL (h)", "MC losses"]);
    let harsh_mttf = 8_000.0;
    let harsh_repair = 200.0;
    for (name, l) in reference_layouts() {
        if name.starts_with("PD") {
            continue;
        }
        let q = survival_profile(l.as_ref(), 5, budget, 0xE7);
        let markov = array_mttdl(21, harsh_mttf, harsh_repair, &q);
        let mc_res = simulate_lifetime(
            l.as_ref(),
            &LifetimeConfig {
                mttf_hours: harsh_mttf,
                repair_hours: harsh_repair,
                mission_hours: 200_000.0,
                trials: 300,
                seed: 0xE7E7,
                lifetime: reliability::montecarlo::Lifetime::Exponential,
            },
        );
        mc.row_owned(vec![
            name,
            sci(markov),
            sci(mc_res.mttdl_estimate_hours),
            mc_res.losses.to_string(),
        ]);
    }
    vec![
        (
            "E7a: MTTDL vs disk MTTF (hours; repair from E1 sims)".into(),
            table,
        ),
        (
            "E7b: Markov vs Monte-Carlo (MTTF 8000 h, repair 200 h)".into(),
            mc,
        ),
    ]
}

/// E8 — foreground latency during rebuild (online recovery).
pub fn e8_degraded_mode() -> Vec<(String, Table)> {
    let mut table = Table::new(&[
        "layout",
        "rate (req/s)",
        "rebuild (s)",
        "idle p95 (ms)",
        "degraded p95 (ms)",
        "latency blowup",
    ]);
    // Fine-grained layout (c = 100 → 900 chunks/disk) so rebuild I/O is
    // MB-scale and pacing lets foreground requests interleave, as a real
    // rebuilder would.
    let array = OiRaid::new(OiRaidConfig::new(bibd::fano(), 3, 100).unwrap()).unwrap();
    let t = array.chunks_per_disk();
    let raid5 = FlatRaid5::new(21, t).unwrap();
    // 100 GB toy disks keep the task graphs small; shape is what matters.
    let cap: u64 = 100_000_000_000;
    for rate in [50.0f64, 150.0, 300.0] {
        let scenario = DegradedScenario {
            spec: DiskSpec::hdd_7200(cap),
            chunk_bytes: cap / t as u64,
            workload: Workload::new(
                WorkloadKind::UniformRandom,
                ArrivalProcess::Poisson { rate },
                64 << 10,
                0xE8,
            ),
            workload_duration: SimTime::from_secs_f64(60.0),
            rebuild_window: 4,
            low_priority_rebuild: false,
        };
        let mut prio_scenario = scenario.clone();
        prio_scenario.low_priority_rebuild = true;
        let oi_plan = array
            .recovery_plan_with_strategy(0, SparePolicy::Distributed, RecoveryStrategy::Hybrid)
            .unwrap();
        let r5_plan = raid5.recovery_plan(&[0], SparePolicy::Dedicated).unwrap();
        for (name, plan, sc) in [
            ("OI-RAID", &oi_plan, &scenario),
            ("OI-RAID (prio fg)", &oi_plan, &prio_scenario),
            ("RAID5(21)", &r5_plan, &scenario),
        ] {
            let run = sc.run(plan);
            let idle = run.idle_latency.p95.as_secs_f64() * 1e3;
            let degraded = run.degraded_latency.p95.as_secs_f64() * 1e3;
            table.row_owned(vec![
                name.into(),
                f3(rate),
                f3(run.rebuild_time.as_secs_f64()),
                f3(idle),
                f3(degraded),
                f3(degraded / idle),
            ]);
        }
    }
    vec![(
        "E8: online recovery under foreground load (100 GB disks)".into(),
        table,
    )]
}

/// E9 — multi-failure recovery times.
pub fn e9_multi_failure() -> Vec<(String, Table)> {
    let array = OiRaid::new(OiRaidConfig::reference()).unwrap();
    let t = array.chunks_per_disk();
    let mut table = Table::new(&["failure pattern", "kind", "chunks rebuilt", "time (s)"]);
    let cases: Vec<(Vec<usize>, &str)> = vec![
        (vec![0], "single"),
        (vec![0, 3], "2, different groups"),
        (vec![0, 1], "2, same group"),
        (vec![0, 3, 6], "3, three groups"),
        (vec![0, 1, 3], "3, 2+1"),
        (vec![0, 1, 2], "3, whole group"),
    ];
    for (pattern, kind) in cases {
        let plan = array
            .recovery_plan(&pattern, SparePolicy::Distributed)
            .unwrap();
        let secs = rebuild_secs(&plan, t);
        table.row_owned(vec![
            format!("{pattern:?}"),
            kind.into(),
            plan.total_writes().to_string(),
            f3(secs),
        ]);
    }
    vec![("E9: multi-failure recovery (reference array)".into(), table)]
}

/// E10 — the BIBD catalogue and the OI-RAID systems it induces.
pub fn e10_catalogue() -> Vec<(String, Table)> {
    let mut table = Table::new(&[
        "v",
        "k",
        "b",
        "r",
        "construction",
        "g",
        "n disks",
        "efficiency",
    ]);
    for e in bibd::catalogue(60) {
        // Smallest prime group size >= k admits the rotational skew.
        let g = (e.k..).find(|&x| gf::is_prime(x)).expect("prime exists");
        let m = Model::from_parameters(e.v, e.k, g);
        table.row_owned(vec![
            e.v.to_string(),
            e.k.to_string(),
            e.b.to_string(),
            e.r.to_string(),
            e.method.into(),
            g.to_string(),
            (e.v * g).to_string(),
            f3(m.efficiency()),
        ]);
    }
    vec![("E10: constructible outer designs (v <= 60)".into(), table)]
}

/// E11 — MTTDL under latent sector errors (URE-killed rebuilds), the
/// modern failure mode the two-layer slack protects against.
pub fn e11_ure_sensitivity() -> Vec<(String, Table)> {
    use reliability::ure::{array_mttdl_with_ure, exposure_profile};
    let budget = 8_000u64;
    let cap = 4 * CAPACITY; // 4 TB disks: the capacity where UREs bite
    let mut table = Table::new(&["BER (errors/bit)", "RAID5(21)", "RAID6(21)", "OI-RAID"]);
    let array = OiRaid::new(OiRaidConfig::reference()).unwrap();
    let t = array.chunks_per_disk();
    let raid5 = FlatRaid5::new(21, t).unwrap();
    let raid6 = FlatRaid6::new(21, t).unwrap();
    let layouts: Vec<(&dyn Layout, usize, f64)> = vec![
        // (layout, profile depth, repair hours at 4 TB)
        (&raid5, 1, 4.0 * 11_111.0 / 3600.0),
        (&raid6, 2, 4.0 * 11_111.0 / 3600.0),
        (&array, 4, 4.0 * 3_333.0 / 3600.0),
    ];
    for ber in [1e-16f64, 1e-15, 1e-14, 1e-13] {
        let mut cells = vec![format!("{ber:.0e}")];
        for (l, depth, repair) in &layouts {
            let q = survival_profile(*l, *depth, budget, 0xE11);
            let u = exposure_profile(*l, *depth, cap, ber);
            cells.push(sci(array_mttdl_with_ure(21, 1.0e6, *repair, &q, &u)));
        }
        table.row_owned(cells);
    }
    vec![(
        "E11: MTTDL (h) vs bit-error rate, 4 TB disks, MTTF 1e6 h".into(),
        table,
    )]
}

/// E12 — the generalized inner layer (RAID6-in-group): tolerance 5 at
/// update cost 6, the extension the paper's "as an example, RAID5 in both
/// layers" leaves open.
pub fn e12_dual_parity() -> Vec<(String, Table)> {
    let single = OiRaid::new(OiRaidConfig::new(bibd::fano(), 5, 1).unwrap()).unwrap();
    let dual = OiRaid::new(
        OiRaidConfig::new(bibd::fano(), 5, 1)
            .unwrap()
            .with_inner_parities(2)
            .unwrap(),
    )
    .unwrap();
    let mut table = Table::new(&[
        "variant",
        "tolerance",
        "efficiency",
        "writes/update",
        "rebuild (s)",
        "P(loss|f=4)",
        "P(loss|f=5)",
        "P(loss|f=6)",
    ]);
    for (name, a) in [
        ("OI-RAID (RAID5 inner)", &single),
        ("OI-RAID^2 (RAID6 inner)", &dual),
    ] {
        let t = a.chunks_per_disk();
        let rebuild = rebuild_secs(
            &a.recovery_plan_with_strategy(0, SparePolicy::Distributed, RecoveryStrategy::Outer)
                .unwrap(),
            t,
        );
        let writes = a.update_set(a.locate_data(0)).map_or(0, |s| s.len());
        let mut cells = vec![
            name.to_string(),
            a.fault_tolerance().to_string(),
            f3(a.efficiency()),
            writes.to_string(),
            f3(rebuild),
        ];
        for f in 4..=6usize {
            let q = survivable_fraction(a, f, 4_000, 0xE12 + f as u64);
            cells.push(f3(1.0 - q));
        }
        table.row_owned(cells);
    }
    vec![(
        "E12: inner-layer generalization, Fano outer x 5-disk groups (35 disks)".into(),
        table,
    )]
}

/// E13 — measured parallel vs serial rebuild on the byte-level store.
///
/// Unlike E1 (discrete-event simulation), this runs the plan-driven rebuild
/// engine against real bytes on latency-injected block devices: each chunk
/// read sleeps for a disk-like service time, so the wall-clock ratio shows
/// the genuine payoff of draining every surviving disk concurrently. Also
/// reports the per-device I/O counters of a parallel single-failure run —
/// the measured counterpart of the paper's balanced-rebuild-load claim.
pub fn e13_parallel_rebuild() -> Vec<(String, Table)> {
    use blockdev::{BlockDevice, FaultConfig, FaultInjectingDevice, MemDevice};
    use oi_raid::{OiRaidStore, RebuildMode};
    use std::time::Duration;

    const CHUNK: usize = 4096;
    let read_latency = Duration::from_micros(300);
    let cfg = OiRaidConfig::reference();
    let chunks = {
        let probe = OiRaidStore::new(cfg.clone(), CHUNK).expect("reference store");
        probe.devices()[0].chunks()
    };
    // Read latency only: filling the store does reads too, and write
    // latency would just slow both modes identically.
    let make_store = || {
        let devices: Vec<_> = (0..21)
            .map(|_| {
                FaultInjectingDevice::new(
                    MemDevice::new(CHUNK, chunks),
                    FaultConfig::latency(read_latency, Duration::ZERO),
                )
            })
            .collect();
        let store = OiRaidStore::with_devices(cfg.clone(), CHUNK, devices).expect("valid devices");
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 131 + j * 17 + 3) as u8).collect();
            store.write_data(idx, &chunk).expect("healthy write");
        }
        store
    };
    // A rebuilt store is bit-identical to its pre-failure self, so the same
    // two stores serve every failure pattern in sequence.
    let serial = make_store();
    let parallel = make_store();
    let mut timing = Table::new(&[
        "failed disks",
        "chunks",
        "reads",
        "serial (ms)",
        "parallel (ms)",
        "workers",
        "speedup",
    ]);
    let mut single_report = None;
    for pattern in [vec![4usize], vec![2, 9], vec![2, 9, 17]] {
        for &d in &pattern {
            serial.fail_disk(d).expect("valid disk");
            parallel.fail_disk(d).expect("valid disk");
        }
        let rs = serial
            .rebuild(RebuildMode::Serial, RecoveryStrategy::Hybrid)
            .expect("recoverable pattern");
        let rp = parallel
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .expect("recoverable pattern");
        assert_eq!(rs.total_reads(), rp.total_reads(), "same read schedule");
        let (s_ms, p_ms) = (rs.wall.as_secs_f64() * 1e3, rp.wall.as_secs_f64() * 1e3);
        timing.row_owned(vec![
            format!("{pattern:?}"),
            rp.chunks_rebuilt.to_string(),
            rp.total_reads().to_string(),
            f3(s_ms),
            f3(p_ms),
            rp.workers.to_string(),
            f3(s_ms / p_ms),
        ]);
        if pattern.len() == 1 {
            single_report = Some(rp);
        }
    }
    let mut per_device = Table::new(&["disk", "reads", "writes", "bytes read", "bytes written"]);
    let report = single_report.expect("single-failure pattern ran");
    for (disk, io) in report.device_io.iter().enumerate() {
        per_device.row_owned(vec![
            disk.to_string(),
            io.reads.to_string(),
            io.writes.to_string(),
            io.bytes_read.to_string(),
            io.bytes_written.to_string(),
        ]);
    }
    vec![
        (
            "E13: measured parallel vs serial rebuild (21 disks, 300us/read devices)".into(),
            timing,
        ),
        (
            "E13: per-device I/O of the parallel single-failure rebuild (disk 4)".into(),
            per_device,
        ),
    ]
}

/// E14 — kernel-path ablation: microbenchmark GiB/s of the XOR and
/// GF(2^8) multiply kernels per dispatch path, and the end-to-end rebuild
/// throughput they buy on pure in-memory devices (no injected latency, so
/// wall time is compute plus memcpy — the kernels' share of a rebuild).
///
/// Uses [`gf::kernels::force_path`] to pin each path process-wide; the
/// experiments binary is single-threaded between rebuilds, so the override
/// is safe here (unlike in the parallel test runner).
pub fn e14_kernel_throughput() -> Vec<(String, Table)> {
    use blockdev::{BlockDevice, MemDevice};
    use gf::kernels::{self, KernelPath, MulTable};
    use oi_raid::{OiRaidStore, RebuildMode};
    use std::time::{Duration, Instant};

    /// Measured throughput of `f` over `bytes`-sized passes, in GiB/s.
    fn gibs(bytes: usize, mut f: impl FnMut()) -> f64 {
        f(); // warm-up
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < Duration::from_millis(120) {
            f();
            iters += 1;
        }
        (bytes as u64 * iters) as f64 / start.elapsed().as_secs_f64() / (1u64 << 30) as f64
    }

    const LEN: usize = 1 << 20;
    let src: Vec<u8> = (0..LEN).map(|i| (i * 31 + 7) as u8).collect();
    let mut dst: Vec<u8> = (0..LEN).map(|i| (i * 17 + 3) as u8).collect();
    let table_57 = MulTable::new(0x57);

    let mut micro = Table::new(&["kernel", "path", "GiB/s", "speedup vs scalar"]);
    let xor_paths: Vec<(&str, f64)> = {
        let mut v = vec![
            (
                "scalar",
                gibs(LEN, || kernels::scalar::xor_acc(&mut dst, &src)),
            ),
            ("wide", gibs(LEN, || kernels::xor_acc_wide(&mut dst, &src))),
        ];
        v.push(("dispatched", gibs(LEN, || kernels::xor_acc(&mut dst, &src))));
        v
    };
    let xor_base = xor_paths[0].1;
    for (name, rate) in &xor_paths {
        micro.row_owned(vec![
            "xor_acc".into(),
            (*name).into(),
            f3(*rate),
            f3(rate / xor_base),
        ]);
    }
    let mul_paths: Vec<(&str, f64)> = {
        let mut v = vec![
            (
                "scalar",
                gibs(LEN, || kernels::scalar::mul_acc_slice(0x57, &src, &mut dst)),
            ),
            (
                "wide",
                gibs(LEN, || table_57.mul_acc_slice_wide(&src, &mut dst)),
            ),
        ];
        if kernels::simd_available() {
            v.push((
                "simd",
                gibs(LEN, || {
                    table_57.mul_acc_slice_simd(&src, &mut dst);
                }),
            ));
        }
        v.push((
            "dispatched",
            gibs(LEN, || table_57.mul_acc_slice(&src, &mut dst)),
        ));
        v
    };
    let mul_base = mul_paths[0].1;
    for (name, rate) in &mul_paths {
        micro.row_owned(vec![
            "mul_acc_slice".into(),
            (*name).into(),
            f3(*rate),
            f3(rate / mul_base),
        ]);
    }

    // End-to-end: rebuild a failed disk of a byte store on raw MemDevices
    // (reads are memcpy, no latency injection) under each forced path.
    const CHUNK: usize = 128 << 10;
    let cfg = OiRaidConfig::new(bibd::fano(), 3, 16).expect("valid config");
    let chunks = OiRaidStore::new(cfg.clone(), CHUNK)
        .expect("probe store")
        .devices()[0]
        .chunks();
    let devices: Vec<_> = (0..21).map(|_| MemDevice::new(CHUNK, chunks)).collect();
    let store = OiRaidStore::with_devices(cfg, CHUNK, devices).expect("valid devices");
    for idx in 0..store.data_chunks() {
        let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 131 + j * 17 + 3) as u8).collect();
        store.write_data(idx, &chunk).expect("healthy write");
    }
    let mut rebuild = Table::new(&[
        "path",
        "chunks",
        "serial (ms)",
        "serial (MiB/s)",
        "parallel (ms)",
        "speedup vs scalar",
    ]);
    let forced = [
        Some(KernelPath::Scalar),
        Some(KernelPath::Wide),
        None, // auto: SIMD where available
    ];
    let mut scalar_ms = 0.0;
    for path in forced {
        kernels::force_path(path);
        let label = match path {
            Some(p) => p.name(),
            None => "auto",
        };
        // A rebuilt store is bit-identical to its pre-failure self, so one
        // store serves every path in sequence.
        store.fail_disk(4).expect("valid disk");
        let rs = store
            .rebuild(RebuildMode::Serial, RecoveryStrategy::Hybrid)
            .expect("recoverable");
        store.fail_disk(4).expect("valid disk");
        let rp = store
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .expect("recoverable");
        let s_ms = rs.wall.as_secs_f64() * 1e3;
        let p_ms = rp.wall.as_secs_f64() * 1e3;
        if path == Some(KernelPath::Scalar) {
            scalar_ms = s_ms;
        }
        let mib = (rs.chunks_rebuilt as usize * CHUNK) as f64 / (1 << 20) as f64;
        rebuild.row_owned(vec![
            label.into(),
            rs.chunks_rebuilt.to_string(),
            f3(s_ms),
            f3(mib / (s_ms / 1e3)),
            f3(p_ms),
            f3(scalar_ms / s_ms),
        ]);
    }
    kernels::force_path(None);
    vec![
        (
            "E14a: kernel microbenchmarks, 1 MiB buffers (GiB/s per path)".into(),
            micro,
        ),
        (
            "E14b: single-disk rebuild on in-memory devices per kernel path (128 KiB chunks)"
                .into(),
            rebuild,
        ),
    ]
}

/// A2 — recovery-strategy ablation (simulated times).
pub fn a2_strategy_ablation() -> Vec<(String, Table)> {
    let mut table = Table::new(&[
        "config",
        "strategy",
        "reads",
        "time (s)",
        "speedup vs inner",
    ]);
    for (v, k, g) in [(7usize, 3usize, 3usize), (13, 4, 5)] {
        let array = sweep_array(v, k, g);
        let t = array.chunks_per_disk();
        let mut inner_time = 0.0;
        for s in RecoveryStrategy::ALL {
            let plan = array
                .recovery_plan_with_strategy(0, SparePolicy::Distributed, s)
                .unwrap();
            let secs = rebuild_secs(&plan, t);
            if s == RecoveryStrategy::Inner {
                inner_time = secs;
            }
            table.row_owned(vec![
                format!("v={v},k={k},g={g}"),
                s.label().into(),
                plan.total_reads().to_string(),
                f3(secs),
                f3(inner_time / secs),
            ]);
        }
    }
    vec![("A2: recovery strategy ablation".into(), table)]
}

/// E15 — telemetry overhead: per-call cost of every hot-path telemetry
/// primitive, and the end-to-end wall-time cost of running a rebuild fully
/// observed (stage histograms + spans + progress) versus with telemetry
/// globally disabled. The observed/off ratio is the number the "always-on"
/// claim rests on; the target is < 2 % on a compute-bound rebuild (no
/// injected device latency, so instrumentation has nowhere to hide).
pub fn e15_telemetry_overhead() -> Vec<(String, Table)> {
    use oi_raid::{OiRaidStore, RebuildMode, RebuildObserver};
    use std::time::Instant;
    use telemetry::{Histogram, Registry, Tracer};

    /// Mean ns per call of `f` over `iters` iterations (one warm-up call).
    fn ns_per(iters: u64, mut f: impl FnMut()) -> f64 {
        f();
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    }

    telemetry::set_enabled(true);
    let h = Histogram::new();
    let mut x = 0x9E37_79B9u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x >> (x % 48)
    };
    let record_on = ns_per(1_000_000, || h.record(next()));
    telemetry::set_enabled(false);
    let record_off = ns_per(1_000_000, || h.record(42));
    telemetry::set_enabled(true);
    let snapshot_p99 = ns_per(20_000, || {
        std::hint::black_box(h.snapshot().p99());
    });
    let tracer = Tracer::new(4096);
    let span = ns_per(200_000, || {
        let _s = tracer.span("stage");
    });
    let reg = Registry::new();
    reg.register_histogram(
        "lat_ns",
        "latency",
        &[],
        std::sync::Arc::new(Histogram::new()),
    );
    reg.counter("ops_total", "ops", &[]).inc();
    let export = ns_per(5_000, || {
        std::hint::black_box(reg.prometheus());
    });

    let mut hot = Table::new(&["operation", "ns/op"]);
    for (op, ns) in [
        ("histogram record (enabled)", record_on),
        ("histogram record (disabled)", record_off),
        ("span open + drop", span),
        ("snapshot + p99", snapshot_p99),
        ("prometheus export (2 series)", export),
    ] {
        hot.row_owned(vec![op.into(), f3(ns)]);
    }

    // End-to-end: serial rebuild on pure in-memory devices — all compute,
    // so telemetry has maximal relative weight. Median of repeated runs.
    const CHUNK: usize = 64 << 10;
    const RUNS: usize = 5;
    let cfg = OiRaidConfig::reference();
    let store = OiRaidStore::new(cfg, CHUNK).expect("reference store");
    for idx in 0..store.data_chunks() {
        let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 131 + j * 17 + 3) as u8).collect();
        store.write_data(idx, &chunk).expect("healthy write");
    }
    let median_wall_ms = |observed: bool| -> f64 {
        let mut walls: Vec<f64> = (0..RUNS)
            .map(|_| {
                store.fail_disk(4).expect("valid disk");
                let report = if observed {
                    let obs = RebuildObserver::default();
                    store
                        .rebuild_observed(RebuildMode::Serial, RecoveryStrategy::Hybrid, &obs)
                        .expect("recoverable")
                } else {
                    store
                        .rebuild(RebuildMode::Serial, RecoveryStrategy::Hybrid)
                        .expect("recoverable")
                };
                report.wall.as_secs_f64() * 1e3
            })
            .collect();
        walls.sort_by(f64::total_cmp);
        walls[RUNS / 2]
    };
    telemetry::set_enabled(false);
    let off_ms = median_wall_ms(false);
    telemetry::set_enabled(true);
    let on_ms = median_wall_ms(true);
    let overhead = (on_ms - off_ms) / off_ms * 100.0;

    let mut e2e = Table::new(&["configuration", "median wall (ms)", "overhead (%)"]);
    e2e.row_owned(vec!["telemetry disabled".into(), f3(off_ms), f3(0.0)]);
    e2e.row_owned(vec![
        "fully observed (histograms+spans+progress)".into(),
        f3(on_ms),
        f3(overhead),
    ]);

    vec![
        ("E15a: telemetry hot-path cost per call".into(), hot),
        (
            format!(
                "E15b: serial rebuild, in-memory devices, {} KiB chunks, median of {RUNS}",
                CHUNK >> 10
            ),
            e2e,
        ),
    ]
}

/// E16 — self-healing rebuild under injected faults: every surviving disk
/// faults transiently at 10/25/50‰ (reads *and* writes) with latent sector
/// errors sprinkled on top, and the rebuild must still finish bit-identical
/// with zero aborts. The overhead column compares against the fault-free
/// wall time on the same latency-modelled devices; the second table runs
/// the repairing scrub over a latent-error field.
pub fn e16_self_healing() -> Vec<(String, Table)> {
    use blockdev::{BlockDevice, FaultConfig, FaultInjectingDevice, MemDevice};
    use oi_raid::{OiRaidStore, RebuildMode};
    use std::time::Duration;

    const CHUNK: usize = 4096;
    let read_latency = Duration::from_micros(100);
    let cfg = OiRaidConfig::reference();
    let chunks = {
        let probe = OiRaidStore::new(cfg.clone(), CHUNK).expect("reference store");
        probe.devices()[0].chunks()
    };
    let make_store = || {
        let devices: Vec<_> = (0..21)
            .map(|_| {
                FaultInjectingDevice::new(
                    MemDevice::new(CHUNK, chunks),
                    FaultConfig::latency(read_latency, Duration::ZERO),
                )
            })
            .collect();
        let store = OiRaidStore::with_devices(cfg.clone(), CHUNK, devices).expect("valid devices");
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 131 + j * 17 + 3) as u8).collect();
            store.write_data(idx, &chunk).expect("healthy write");
        }
        store
    };
    let image = |store: &OiRaidStore<FaultInjectingDevice<MemDevice>>, d: usize| -> Vec<u8> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; CHUNK];
        for o in 0..chunks {
            store.devices()[d]
                .read_chunk(o, &mut buf)
                .expect("readable");
            out.extend_from_slice(&buf);
        }
        out
    };

    let mut rebuild = Table::new(&[
        "transient (permille)",
        "latent (permille)",
        "outcome",
        "rounds",
        "retries",
        "exhausted",
        "reroutes",
        "latent repairs",
        "wall (ms)",
        "overhead (x)",
        "bit-identical",
    ]);
    const RUNS: usize = 3;
    let mut baseline_ms = None;
    for (transient, latent) in [(0u16, 0u16), (10, 2), (25, 10), (50, 50)] {
        let mut walls = Vec::with_capacity(RUNS);
        let mut last = None;
        let mut identical = true;
        for run in 0..RUNS {
            let store = make_store();
            let pristine: Vec<Vec<u8>> = (0..21).map(|d| image(&store, d)).collect();
            for (d, dev) in store.devices().iter().enumerate() {
                if d == 4 {
                    continue;
                }
                dev.set_config(FaultConfig {
                    seed: 0xE16 ^ ((d + 21 * run) as u64).wrapping_mul(0x9E37_79B9),
                    transient_read_per_mille: transient,
                    transient_write_per_mille: transient,
                    latent_per_mille: latent,
                    read_latency,
                    ..FaultConfig::default()
                });
            }
            store.fail_disk(4).expect("valid disk");
            let report = store
                .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
                .expect("self-healing rebuild never errors on faults");
            // Disarm (keeping the latency model) before verifying bytes.
            for dev in store.devices() {
                dev.set_config(FaultConfig::latency(read_latency, Duration::ZERO));
            }
            identical &= (0..21).all(|d| image(&store, d) == pristine[d]);
            walls.push(report.wall.as_secs_f64() * 1e3);
            last = Some(report);
        }
        walls.sort_by(f64::total_cmp);
        let ms = walls[RUNS / 2];
        let report = last.expect("ran");
        let overhead = match baseline_ms {
            None => {
                baseline_ms = Some(ms);
                1.0
            }
            Some(base) => ms / base,
        };
        rebuild.row_owned(vec![
            transient.to_string(),
            latent.to_string(),
            report.outcome.to_string(),
            report.rounds.to_string(),
            report.retries.to_string(),
            report.retries_exhausted.to_string(),
            report.reroutes.to_string(),
            report.latent_repairs.to_string(),
            f3(ms),
            f3(overhead),
            identical.to_string(),
        ]);
    }

    let mut scrub = Table::new(&[
        "latent (permille)",
        "scanned",
        "latent repairs",
        "unrecoverable",
        "retries",
        "wall (ms)",
        "second pass clean",
    ]);
    for latent in [10u16, 25, 50] {
        let store = make_store();
        for (d, dev) in store.devices().iter().enumerate() {
            dev.set_config(FaultConfig {
                seed: 0x5C2B ^ (d as u64).wrapping_mul(0x9E37_79B9),
                latent_per_mille: latent,
                read_latency,
                ..FaultConfig::default()
            });
        }
        let report = store.scrub();
        let clean = store.scrub().is_clean();
        scrub.row_owned(vec![
            latent.to_string(),
            report.scanned.to_string(),
            report.repaired_latent.len().to_string(),
            report.unrecoverable.len().to_string(),
            report.retries.to_string(),
            f3(report.wall.as_secs_f64() * 1e3),
            clean.to_string(),
        ]);
    }

    vec![
        (
            "E16a: parallel rebuild of disk 4 under injected faults (100us/read devices)".into(),
            rebuild,
        ),
        (
            "E16b: repairing scrub over a latent-sector field (21 disks)".into(),
            scrub,
        ),
    ]
}

/// E17 — online I/O during rebuild (claims C2/C5): foreground read latency
/// and rebuild-time inflation at several `QosConfig` throttle settings.
///
/// Devices carry a per-read service latency behind a spindle mutex, so
/// rebuild reads and foreground reads genuinely contend. Per setting, a
/// rebuild storm (fail disk 4 → rebuild, repeatedly) runs on one thread
/// while the main thread issues foreground reads of chunks on the other
/// 20 disks; the store's foreground histogram yields p50/p99. The
/// foreground workload avoids the failed disk on purpose: degraded-read
/// amplification is measured by E8, this experiment isolates scheduler
/// interference.
pub fn e17_online_qos() -> Vec<(String, Table)> {
    use blockdev::{BlockDevice, FaultConfig, FaultInjectingDevice, MemDevice};
    use oi_raid::{OiRaidStore, QosConfig, RebuildMode, RebuildOutcome};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    telemetry::set_enabled(true);
    const CHUNK: usize = 4096;
    /// Each setting's rebuild storm runs at least this long, so every row's
    /// foreground percentiles rest on comparable sample counts.
    const STORM: Duration = Duration::from_millis(250);
    let read_latency = Duration::from_micros(300);
    let cfg = OiRaidConfig::reference();
    let chunks = {
        let probe = OiRaidStore::new(cfg.clone(), CHUNK).expect("reference store");
        probe.devices()[0].chunks()
    };
    let make_store = || {
        let devices: Vec<_> = (0..21)
            .map(|_| {
                FaultInjectingDevice::new(
                    MemDevice::new(CHUNK, chunks),
                    FaultConfig::latency(read_latency, Duration::ZERO),
                )
            })
            .collect();
        let store = OiRaidStore::with_devices(cfg.clone(), CHUNK, devices).expect("valid devices");
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 131 + j * 17 + 3) as u8).collect();
            store.write_data(idx, &chunk).expect("healthy write");
        }
        store
    };
    // Foreground working set: data chunks that do not live on disk 4.
    let fg_set = |store: &OiRaidStore<FaultInjectingDevice<MemDevice>>| -> Vec<usize> {
        (0..store.data_chunks())
            .filter(|&i| store.locate(i).disk != 4)
            .collect()
    };

    // Healthy baseline: the same foreground loop with no rebuild running.
    let (healthy_p50, healthy_p99) = {
        let store = make_store();
        let set = fg_set(&store);
        for i in 0..1500usize {
            store.read_data(set[i % set.len()]).expect("healthy read");
        }
        let snap = store.telemetry().foreground_read_latency().snapshot();
        (snap.p50(), snap.p99())
    };

    let mut table = Table::new(&[
        "throttle (chunks/s)",
        "rebuilds",
        "wall/rebuild (ms)",
        "inflation (x)",
        "waits/rebuild",
        "fg reads",
        "fg p50 (us)",
        "fg p99 (us)",
        "p99 vs healthy (x)",
    ]);
    let mut base_wall = None;
    for setting in [None, Some(3000.0), Some(1000.0), Some(300.0)] {
        let store = make_store();
        match setting {
            None => store.set_qos(QosConfig::unlimited()),
            Some(rate) => {
                let mut q = QosConfig::throttled(rate);
                q.burst_chunks = 4;
                store.set_qos(q);
            }
        }
        let set = fg_set(&store);
        let done = AtomicBool::new(false);
        let (cycles, wall, waits) = std::thread::scope(|s| {
            let storm = s.spawn(|| {
                let began = Instant::now();
                let (mut cycles, mut wall, mut waits) = (0u32, Duration::ZERO, 0u64);
                while began.elapsed() < STORM || cycles == 0 {
                    store.fail_disk(4).expect("valid disk");
                    let r = store
                        .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
                        .expect("rebuild");
                    assert_eq!(r.outcome, RebuildOutcome::Complete);
                    cycles += 1;
                    wall += r.wall;
                    waits += r.throttle_waits;
                }
                done.store(true, Ordering::Relaxed);
                (cycles, wall, waits)
            });
            let mut i = 0usize;
            while !done.load(Ordering::Relaxed) && i < 2_000_000 {
                store.read_data(set[i % set.len()]).expect("online read");
                i += 1;
            }
            storm.join().expect("rebuild storm")
        });
        let snap = store.telemetry().foreground_read_latency().snapshot();
        let per_cycle_ms = wall.as_secs_f64() * 1e3 / f64::from(cycles);
        let inflation = match base_wall {
            None => {
                base_wall = Some(per_cycle_ms);
                1.0
            }
            Some(base) => per_cycle_ms / base,
        };
        table.row_owned(vec![
            setting.map_or("unlimited".into(), |r| format!("{r:.0}")),
            cycles.to_string(),
            f3(per_cycle_ms),
            f3(inflation),
            f3(waits as f64 / f64::from(cycles)),
            snap.count.to_string(),
            f3(snap.p50() as f64 / 1e3),
            f3(snap.p99() as f64 / 1e3),
            f3(snap.p99() as f64 / healthy_p99 as f64),
        ]);
    }
    table.row_owned(vec![
        "healthy (no rebuild)".into(),
        "0".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "1500".into(),
        f3(healthy_p50 as f64 / 1e3),
        f3(healthy_p99 as f64 / 1e3),
        "1.000".into(),
    ]);

    vec![(
        "E17: foreground read latency vs rebuild throttle (300us/read spindles, \
         rebuild storm on disk 4)"
            .into(),
        table,
    )]
}

/// E18 — DAG-scheduled rebuild vs the barrier-round engine.
///
/// Two tables. **E18a** rebuilds the same 2-disk failure (disks 4 and 9)
/// on 300 µs spindles with the parallel barrier engine and with the DAG
/// executor at several pool sizes: the barrier engine serializes every
/// writeback into the driver thread after each read phase, while the DAG
/// overlaps writebacks with reads on other disks, so the speedup column
/// isolates exactly the barrier cost. **E18b** runs a rebuild storm on one
/// thread while the main thread issues foreground RMW `write_data` calls
/// to chunks off the failed disks, and reports the foreground write
/// percentiles per engine — degraded RMW now enters through striped
/// per-region locks rather than a store-wide update lock, so foreground
/// writes keep flowing under either engine. The `degraded` column counts
/// writes whose update set had unavailable members mid-rebuild: those skip
/// the missing devices (the implied value already reflects the write) and
/// finish in microseconds, which pulls the p50 down while a storm runs.
///
/// The fill phase runs with faults disarmed; the spindle latency is armed
/// (reads *and* writes) only once the data is in place, so every measured
/// rebuild op pays the device.
pub fn e18_dag_scheduler() -> Vec<(String, Table)> {
    use blockdev::{BlockDevice, FaultConfig, FaultInjectingDevice, MemDevice};
    use oi_raid::{OiRaidStore, RebuildMode, RebuildOutcome};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    telemetry::set_enabled(true);
    const CHUNK: usize = 4096;
    /// Each engine's rebuild storm in E18b runs at least this long.
    const STORM: Duration = Duration::from_millis(250);
    let latency = Duration::from_micros(300);
    let failed = [4usize, 9];
    let cfg = OiRaidConfig::reference();
    let chunks = {
        let probe = OiRaidStore::new(cfg.clone(), CHUNK).expect("reference store");
        probe.devices()[0].chunks()
    };
    let make_store = || {
        let devices: Vec<_> = (0..21)
            .map(|_| {
                FaultInjectingDevice::new(MemDevice::new(CHUNK, chunks), FaultConfig::default())
            })
            .collect();
        let store = OiRaidStore::with_devices(cfg.clone(), CHUNK, devices).expect("valid devices");
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 197 + j * 13 + 7) as u8).collect();
            store.write_data(idx, &chunk).expect("healthy write");
        }
        for dev in store.devices() {
            dev.set_config(FaultConfig::latency(latency, latency));
        }
        store
    };

    // E18a: engine/pool sweep over the identical 2-disk rebuild. Each
    // configuration rebuilds three times on fresh stores and keeps the
    // fastest run — wall clocks in the single-digit-millisecond range are
    // noisy on a shared machine, and the minimum is the stable estimator
    // of what the engine actually costs.
    let run_engine = |mode: RebuildMode, pool: Option<usize>| {
        let mut best: Option<oi_raid::RebuildReport> = None;
        for _ in 0..3 {
            let store = make_store();
            store.set_dag_workers(pool);
            for &d in &failed {
                store.fail_disk(d).expect("valid disk");
            }
            let report = store
                .rebuild(mode, RecoveryStrategy::Hybrid)
                .expect("rebuild");
            assert_eq!(report.outcome, RebuildOutcome::Complete);
            if best.as_ref().is_none_or(|b| report.wall < b.wall) {
                best = Some(report);
            }
        }
        best.expect("three trials ran")
    };
    let mut t1 = Table::new(&[
        "engine",
        "pool",
        "wall (ms)",
        "speedup (x)",
        "utilization",
        "steals",
        "peak ready",
        "peak disk queue",
    ]);
    let base = run_engine(RebuildMode::Parallel, None);
    let base_ms = base.wall.as_secs_f64() * 1e3;
    let mut auto_speedup = 0.0;
    let runs = [
        ("parallel (barrier)", None, base),
        ("dag", Some(1), run_engine(RebuildMode::Dag, Some(1))),
        ("dag", Some(4), run_engine(RebuildMode::Dag, Some(4))),
        ("dag (auto)", None, run_engine(RebuildMode::Dag, None)),
    ];
    for (name, _, r) in &runs {
        let wall_ms = r.wall.as_secs_f64() * 1e3;
        let speedup = base_ms / wall_ms;
        if *name == "dag (auto)" {
            auto_speedup = speedup;
        }
        let peak_queue = r
            .device_io
            .iter()
            .map(|s| s.max_inflight)
            .max()
            .unwrap_or(0);
        t1.row_owned(vec![
            (*name).into(),
            r.workers.to_string(),
            f3(wall_ms),
            f3(speedup),
            f3(r.worker_utilization()),
            r.sched.steals.to_string(),
            r.sched.max_ready_depth.to_string(),
            peak_queue.to_string(),
        ]);
    }
    // The headline acceptance bound: the DAG engine at its default pool
    // size beats the barrier engine by >= 1.5x on this workload.
    assert!(
        auto_speedup >= 1.5,
        "dag speedup {auto_speedup:.3} below the 1.5x bound"
    );

    // E18b: foreground RMW latency while each engine's rebuild storm runs.
    let fg_set = |store: &OiRaidStore<FaultInjectingDevice<MemDevice>>| -> Vec<usize> {
        (0..store.data_chunks())
            .filter(|&i| !failed.contains(&store.locate(i).disk))
            .collect()
    };
    let payload =
        |i: usize| -> Vec<u8> { (0..CHUNK).map(|j| (i * 41 + j * 11 + 5) as u8).collect() };
    let (healthy_p50, healthy_p99, healthy_count) = {
        let store = make_store();
        let set = fg_set(&store);
        for i in 0..300usize {
            store
                .write_data(set[i % set.len()], &payload(i))
                .expect("healthy write");
        }
        let snap = store.telemetry().foreground_write_latency().snapshot();
        (snap.p50(), snap.p99(), snap.count)
    };
    let mut t2 = Table::new(&[
        "engine",
        "rebuild cycles",
        "fg writes",
        "degraded",
        "fg p50 (ms)",
        "fg p99 (ms)",
        "p99 vs healthy (x)",
    ]);
    t2.row_owned(vec![
        "healthy (no rebuild)".into(),
        "0".into(),
        healthy_count.to_string(),
        "0".into(),
        f3(healthy_p50 as f64 / 1e6),
        f3(healthy_p99 as f64 / 1e6),
        "1.000".into(),
    ]);
    for (name, mode) in [
        ("parallel (barrier)", RebuildMode::Parallel),
        ("dag (auto)", RebuildMode::Dag),
    ] {
        let store = make_store();
        let set = fg_set(&store);
        let done = AtomicBool::new(false);
        let (cycles, writes) = std::thread::scope(|s| {
            let storm = s.spawn(|| {
                let began = Instant::now();
                let mut cycles = 0u32;
                while began.elapsed() < STORM || cycles == 0 {
                    for &d in &failed {
                        store.fail_disk(d).expect("valid disk");
                    }
                    let r = store
                        .rebuild(mode, RecoveryStrategy::Hybrid)
                        .expect("rebuild");
                    assert_eq!(r.outcome, RebuildOutcome::Complete);
                    cycles += 1;
                }
                done.store(true, Ordering::Relaxed);
                cycles
            });
            let mut i = 0usize;
            while !done.load(Ordering::Relaxed) && i < 2_000_000 {
                store
                    .write_data(set[i % set.len()], &payload(i))
                    .expect("online write");
                i += 1;
            }
            (storm.join().expect("rebuild storm"), i)
        });
        let snap = store.telemetry().foreground_write_latency().snapshot();
        assert!(writes > 0, "foreground made no progress under {name}");
        t2.row_owned(vec![
            name.into(),
            cycles.to_string(),
            snap.count.to_string(),
            store.telemetry().degraded_writes().to_string(),
            f3(snap.p50() as f64 / 1e6),
            f3(snap.p99() as f64 / 1e6),
            f3(snap.p99() as f64 / healthy_p99 as f64),
        ]);
    }

    vec![
        (
            "E18a: rebuild engine wall clock — disks {4, 9} failed, 300us spindles \
             (reads and writes)"
                .into(),
            t1,
        ),
        (
            "E18b: foreground RMW write latency during a 2-disk rebuild storm".into(),
            t2,
        ),
    ]
}

/// E19 — the multi-tenant volume layer under closed-loop load.
///
/// Three tables driven by the same zipfian record workload (YCSB-style
/// `theta = 0.99`, 70/30 read/write, 512-byte records over 4 KiB chunks on
/// 300 us spindles). **E19a** compares the unbatched one-call-per-op path
/// against the sharded batching path at several group sizes: batching must
/// win on throughput because zipf-hot reads dedupe and same-chunk writes
/// coalesce into a single RMW. **E19b** holds the batched path fixed and
/// sweeps the array state (healthy, two disks down, rebuild storm running).
/// **E19c** measures tenant isolation: a rate-capped tenant hammering the
/// same store must not move an uncapped tenant's p99 materially.
///
/// The client count (default 120 000 simulated closed-loop clients; override
/// with `OI_E19_CLIENTS`) sets both the op volume and the per-client rng
/// streams; each client issues at most one op per closed-loop turn.
///
/// # Panics
///
/// Panics if the batched path fails to beat the unbatched path by the
/// `1.3x` acceptance bound, or if the capped tenant pushes the uncapped
/// tenant's read p99 beyond `1.5x` its solo value.
pub fn e19_volume_closed_loop() -> Vec<(String, Table)> {
    use blockdev::{BlockDevice, FaultConfig, FaultInjectingDevice, MemDevice};
    use oi_raid::{OiRaidStore, RebuildMode, RebuildOutcome};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use volume::{Op, TenantClass, TenantId, VolumeId, VolumeManager, Zipf};

    telemetry::set_enabled(true);
    const CHUNK: usize = 4096;
    const RECORD: usize = 512;
    const WORKERS: usize = 8;
    const READ_FRAC: f64 = 0.7;
    const THETA: f64 = 0.99;
    let latency = Duration::from_micros(300);
    let clients: usize = std::env::var("OI_E19_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000)
        .max(WORKERS);
    let cfg = OiRaidConfig::reference();
    let chunks_per_disk = {
        let probe = OiRaidStore::new(cfg.clone(), CHUNK).expect("reference store");
        probe.devices()[0].chunks()
    };

    type Mgr = VolumeManager<FaultInjectingDevice<MemDevice>>;
    // A fresh manager per measurement: prefill runs with latency off, then
    // the spindle delay is switched on for the measured phase.
    let make_mgr = |tenants: &[(&str, TenantClass)]| -> (Arc<Mgr>, Vec<(TenantId, VolumeId)>) {
        let devices: Vec<_> = (0..21)
            .map(|_| {
                FaultInjectingDevice::new(
                    MemDevice::new(CHUNK, chunks_per_disk),
                    FaultConfig::default(),
                )
            })
            .collect();
        let store = OiRaidStore::with_devices(cfg.clone(), CHUNK, devices).expect("valid devices");
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 131 + j * 17 + 3) as u8).collect();
            store.write_data(idx, &chunk).expect("prefill write");
        }
        for dev in store.devices() {
            dev.set_config(FaultConfig::latency(latency, latency));
        }
        let total_records = store.capacity_bytes() / RECORD as u64;
        let per_volume = total_records / tenants.len() as u64;
        let mgr = Arc::new(VolumeManager::new(Arc::new(store), WORKERS * 2));
        let ids = tenants
            .iter()
            .map(|(name, class)| {
                let t = mgr.add_tenant(name, *class);
                let v = mgr
                    .create_volume(t, name, RECORD, per_volume)
                    .expect("volume fits");
                (t, v)
            })
            .collect();
        (mgr, ids)
    };

    struct LoopResult {
        ops: usize,
        wall: Duration,
        read_p50: u64,
        read_p99: u64,
        read_p999: u64,
        write_p99: u64,
    }
    impl LoopResult {
        fn ops_per_sec(&self) -> f64 {
            self.ops as f64 / self.wall.as_secs_f64()
        }
    }

    // The closed loop: `WORKERS` threads share `clients` logical clients;
    // each turn a worker collects one op from each of the next `group`
    // clients and issues the group (one `submit` when batched, one store
    // call per op when not). `seed` decorrelates phases; `done` (when
    // given) lets another tenant's loop stop this one early.
    let closed_loop = |mgr: &Arc<Mgr>,
                       tenant: TenantId,
                       vol: VolumeId,
                       records: u64,
                       total_ops: usize,
                       group: usize,
                       batched: bool,
                       seed: u64,
                       done: Option<&AtomicBool>,
                       workers: usize|
     -> LoopResult {
        let zipf = Zipf::scrambled(records as usize, THETA, 0xE19 ^ seed);
        let before_read = mgr
            .tenant_read_latency(tenant)
            .expect("tenant exists")
            .snapshot()
            .count;
        let began = Instant::now();
        let ops_done: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let zipf = &zipf;
                    let mgr = Arc::clone(mgr);
                    s.spawn(move || {
                        let per_worker = (total_ops / workers).max(1);
                        let my_clients = (clients / workers).max(1);
                        let mut rngs: Vec<StdRng> = (0..my_clients.min(per_worker))
                            .map(|c| StdRng::seed_from_u64(seed ^ ((w * my_clients + c) as u64)))
                            .collect();
                        let mut next = 0usize;
                        let mut issued = 0usize;
                        while issued < per_worker {
                            if done.is_some_and(|d| d.load(Ordering::Relaxed)) {
                                break;
                            }
                            let n = group.min(per_worker - issued);
                            let mut ops = Vec::with_capacity(n);
                            for _ in 0..n {
                                let n_clients = rngs.len();
                                let rng = &mut rngs[next];
                                next = (next + 1) % n_clients;
                                let record = zipf.sample(rng) as u64;
                                if rng.gen::<f64>() < READ_FRAC {
                                    ops.push(Op::Read {
                                        volume: vol,
                                        record,
                                    });
                                } else {
                                    let tag = (rng.next_u64() & 0xFF) as u8;
                                    ops.push(Op::Write {
                                        volume: vol,
                                        record,
                                        data: vec![tag; RECORD],
                                    });
                                }
                            }
                            if batched {
                                for res in mgr.submit(ops) {
                                    res.expect("batched op");
                                }
                            } else {
                                for op in ops {
                                    match op {
                                        Op::Read { record, .. } => {
                                            mgr.read_record(vol, record).expect("direct read");
                                        }
                                        Op::Write { record, data, .. } => {
                                            mgr.write_record(vol, record, &data)
                                                .expect("direct write");
                                        }
                                    }
                                }
                            }
                            issued += n;
                        }
                        issued
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        let wall = began.elapsed();
        let reads = mgr
            .tenant_read_latency(tenant)
            .expect("tenant exists")
            .snapshot();
        let writes = mgr
            .tenant_write_latency(tenant)
            .expect("tenant exists")
            .snapshot();
        assert!(reads.count > before_read, "closed loop made no reads");
        LoopResult {
            ops: ops_done,
            wall,
            read_p50: reads.p50(),
            read_p99: reads.p99(),
            read_p999: reads.p999(),
            write_p99: writes.p99(),
        }
    };

    let ms = |ns: u64| f3(ns as f64 / 1e6);
    let one_tenant: &[(&str, TenantClass)] = &[("t0", TenantClass::default())];
    let ops_a = clients.clamp(4_096, 122_880);
    let ops_unbatched = ops_a.min(12_288);

    // E19a: unbatched baseline vs batched at several group sizes.
    let mut t1 = Table::new(&[
        "path",
        "ops",
        "wall (ms)",
        "ops/s",
        "read p50 (ms)",
        "read p99 (ms)",
        "read p999 (ms)",
        "write p99 (ms)",
    ]);
    let mut row = |name: &str, r: &LoopResult| {
        t1.row_owned(vec![
            name.into(),
            r.ops.to_string(),
            f3(r.wall.as_secs_f64() * 1e3),
            f3(r.ops_per_sec()),
            ms(r.read_p50),
            ms(r.read_p99),
            ms(r.read_p999),
            ms(r.write_p99),
        ]);
    };
    let unbatched = {
        let (mgr, ids) = make_mgr(one_tenant);
        let records = mgr.store().capacity_bytes() / RECORD as u64;
        closed_loop(
            &mgr,
            ids[0].0,
            ids[0].1,
            records,
            ops_unbatched,
            64,
            false,
            1,
            None,
            WORKERS,
        )
    };
    row("unbatched", &unbatched);
    let mut batched_best = 0.0f64;
    let mut batched_p99 = u64::MAX;
    for group in [64usize, 256, 1024] {
        let (mgr, ids) = make_mgr(one_tenant);
        let records = mgr.store().capacity_bytes() / RECORD as u64;
        let r = closed_loop(
            &mgr, ids[0].0, ids[0].1, records, ops_a, group, true, 2, None, WORKERS,
        );
        batched_best = batched_best.max(r.ops_per_sec());
        batched_p99 = batched_p99.min(r.read_p99);
        row(&format!("batched (group {group})"), &r);
    }
    // The headline acceptance bound: batching buys >= 1.3x on throughput
    // or tail latency over one-call-per-op for the same workload.
    let tput_ratio = batched_best / unbatched.ops_per_sec();
    let p99_ratio = unbatched.read_p99 as f64 / batched_p99.max(1) as f64;
    assert!(
        tput_ratio >= 1.3 || p99_ratio >= 1.3,
        "batching below the 1.3x bound: throughput {tput_ratio:.3}x, read p99 {p99_ratio:.3}x"
    );

    // E19b: the batched path across array states.
    let ops_b = (clients / 4).clamp(4_096, 30_720);
    let mut t2 = Table::new(&[
        "state",
        "ops",
        "ops/s",
        "read p50 (ms)",
        "read p99 (ms)",
        "read p999 (ms)",
        "write p99 (ms)",
        "degraded ops",
    ]);
    for state in ["healthy", "degraded (2 disks)", "rebuilding"] {
        let (mgr, ids) = make_mgr(one_tenant);
        let records = mgr.store().capacity_bytes() / RECORD as u64;
        if state != "healthy" {
            mgr.store().fail_disk(4).expect("valid disk");
            mgr.store().fail_disk(9).expect("valid disk");
        }
        let r = if state == "rebuilding" {
            let workload_done = AtomicBool::new(false);
            std::thread::scope(|s| {
                let storm = s.spawn(|| {
                    // Keep a rebuild running for the whole measured window.
                    loop {
                        let rep = mgr
                            .store()
                            .rebuild(RebuildMode::Dag, RecoveryStrategy::Hybrid)
                            .expect("rebuild");
                        assert_eq!(rep.outcome, RebuildOutcome::Complete);
                        if workload_done.load(Ordering::Relaxed) {
                            break;
                        }
                        mgr.store().fail_disk(4).expect("valid disk");
                        mgr.store().fail_disk(9).expect("valid disk");
                    }
                });
                let r = closed_loop(
                    &mgr, ids[0].0, ids[0].1, records, ops_b, 256, true, 3, None, WORKERS,
                );
                workload_done.store(true, Ordering::Relaxed);
                storm.join().expect("rebuild storm");
                r
            })
        } else {
            closed_loop(
                &mgr, ids[0].0, ids[0].1, records, ops_b, 256, true, 3, None, WORKERS,
            )
        };
        let degraded =
            mgr.store().telemetry().degraded_reads() + mgr.store().telemetry().degraded_writes();
        t2.row_owned(vec![
            state.into(),
            r.ops.to_string(),
            f3(r.ops_per_sec()),
            ms(r.read_p50),
            ms(r.read_p99),
            ms(r.read_p999),
            ms(r.write_p99),
            degraded.to_string(),
        ]);
    }

    // E19c: QoS isolation. Tenant A (weight 4, uncapped) runs the same
    // closed loop solo and then alongside tenant B, which is rate-capped
    // and must not move A's tail.
    let ops_c = (clients / 5).clamp(4_096, 24_576);
    let two_tenants: &[(&str, TenantClass)] = &[
        ("tenant-a", TenantClass::weighted(4)),
        ("tenant-b", TenantClass::capped(600.0)),
    ];
    let solo = {
        let (mgr, ids) = make_mgr(two_tenants);
        let records = mgr.store().capacity_bytes() / RECORD as u64 / 2;
        closed_loop(
            &mgr, ids[0].0, ids[0].1, records, ops_c, 256, true, 4, None, WORKERS,
        )
    };
    let (shared_a, shared_b) = {
        let (mgr, ids) = make_mgr(two_tenants);
        let records = mgr.store().capacity_bytes() / RECORD as u64 / 2;
        let a_done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let b = s.spawn(|| {
                closed_loop(
                    &mgr,
                    ids[1].0,
                    ids[1].1,
                    records,
                    usize::MAX / 2,
                    8,
                    true,
                    5,
                    Some(&a_done),
                    2,
                )
            });
            let a = closed_loop(
                &mgr, ids[0].0, ids[0].1, records, ops_c, 256, true, 4, None, WORKERS,
            );
            a_done.store(true, Ordering::Relaxed);
            (a, b.join().expect("tenant B loop"))
        })
    };
    let p99_push = shared_a.read_p99 as f64 / solo.read_p99.max(1) as f64;
    let mut t3 = Table::new(&[
        "tenant",
        "scenario",
        "ops",
        "ops/s",
        "read p99 (ms)",
        "write p99 (ms)",
        "p99 vs solo (x)",
    ]);
    t3.row_owned(vec![
        "A (weight 4)".into(),
        "solo".into(),
        solo.ops.to_string(),
        f3(solo.ops_per_sec()),
        ms(solo.read_p99),
        ms(solo.write_p99),
        "1.000".into(),
    ]);
    t3.row_owned(vec![
        "A (weight 4)".into(),
        "with capped B".into(),
        shared_a.ops.to_string(),
        f3(shared_a.ops_per_sec()),
        ms(shared_a.read_p99),
        ms(shared_a.write_p99),
        f3(p99_push),
    ]);
    t3.row_owned(vec![
        "B (600 ops/s cap)".into(),
        "with A".into(),
        shared_b.ops.to_string(),
        f3(shared_b.ops_per_sec()),
        ms(shared_b.read_p99),
        ms(shared_b.write_p99),
        "-".into(),
    ]);
    // The isolation acceptance bound: B cannot push A's read p99 past
    // 1.5x its solo value.
    assert!(
        p99_push <= 1.5,
        "capped tenant pushed the uncapped tenant's p99 {p99_push:.3}x (bound 1.5x)"
    );

    vec![
        (
            format!(
                "E19a: closed-loop volume throughput — {clients} zipf(0.99) clients, \
                 70/30 read/write, 512B records, 300us spindles"
            ),
            t1,
        ),
        (
            "E19b: the batched path across array states (group 256)".into(),
            t2,
        ),
        (
            "E19c: tenant isolation — rate-capped B vs uncapped A's tail".into(),
            t3,
        ),
    ]
}

/// E20: what end-to-end request tracing costs. The E19 batched closed
/// loop (zipf clients, 70/30 mix, 300us spindles) runs three times over
/// identical fresh arrays: sampling off, the default 1-in-64, and 1-in-1
/// (every request traced through volume → wave → store → device). The
/// acceptance bound is the default setting: within 5% of the untraced
/// throughput.
pub fn e20_tracing_overhead() -> Vec<(String, Table)> {
    use blockdev::{BlockDevice, FaultConfig, FaultInjectingDevice, MemDevice};
    use oi_raid::OiRaidStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use volume::{Op, TenantClass, VolumeManager, Zipf};

    telemetry::set_enabled(true);
    const CHUNK: usize = 4096;
    const RECORD: usize = 512;
    const WORKERS: usize = 8;
    const GROUP: usize = 256;
    const READ_FRAC: f64 = 0.7;
    let latency = Duration::from_micros(300);
    let clients: usize = std::env::var("OI_E20_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6_000)
        .max(WORKERS);
    let total_ops = (clients * 4).clamp(4_096, 24_576);
    let cfg = OiRaidConfig::reference();
    let chunks_per_disk = {
        let probe = OiRaidStore::new(cfg.clone(), CHUNK).expect("reference store");
        probe.devices()[0].chunks()
    };

    // One measured closed loop over a fresh prefilled array: `WORKERS`
    // threads share `clients` logical clients and submit batched groups.
    let measure = |sample: Option<u32>, seed: u64| -> (usize, Duration, u64) {
        telemetry::set_trace_sample(sample);
        let devices: Vec<_> = (0..21)
            .map(|_| {
                FaultInjectingDevice::new(
                    MemDevice::new(CHUNK, chunks_per_disk),
                    FaultConfig::default(),
                )
            })
            .collect();
        let store = OiRaidStore::with_devices(cfg.clone(), CHUNK, devices).expect("valid devices");
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 131 + j * 17 + 3) as u8).collect();
            store.write_data(idx, &chunk).expect("prefill write");
        }
        for dev in store.devices() {
            dev.set_config(FaultConfig::latency(latency, latency));
        }
        let mgr = Arc::new(VolumeManager::new(Arc::new(store), WORKERS * 2));
        let tenant = mgr.add_tenant("t0", TenantClass::default());
        let records = mgr.store().capacity_bytes() / RECORD as u64;
        let vol = mgr
            .create_volume(tenant, "t0", RECORD, records)
            .expect("volume fits");
        let zipf = Zipf::scrambled(records as usize, 0.99, 0xE20 ^ seed);
        let began = Instant::now();
        let ops_done: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|w| {
                    let zipf = &zipf;
                    let mgr = Arc::clone(&mgr);
                    s.spawn(move || {
                        let per_worker = (total_ops / WORKERS).max(1);
                        let my_clients = (clients / WORKERS).max(1);
                        let mut rngs: Vec<StdRng> = (0..my_clients.min(per_worker))
                            .map(|c| StdRng::seed_from_u64(seed ^ ((w * my_clients + c) as u64)))
                            .collect();
                        let mut next = 0usize;
                        let mut issued = 0usize;
                        while issued < per_worker {
                            let n = GROUP.min(per_worker - issued);
                            let mut ops = Vec::with_capacity(n);
                            for _ in 0..n {
                                let n_clients = rngs.len();
                                let rng = &mut rngs[next];
                                next = (next + 1) % n_clients;
                                let record = zipf.sample(rng) as u64;
                                if rng.gen::<f64>() < READ_FRAC {
                                    ops.push(Op::Read {
                                        volume: vol,
                                        record,
                                    });
                                } else {
                                    let tag = (rng.next_u64() & 0xFF) as u8;
                                    ops.push(Op::Write {
                                        volume: vol,
                                        record,
                                        data: vec![tag; RECORD],
                                    });
                                }
                            }
                            for res in mgr.submit(ops) {
                                res.expect("batched op");
                            }
                            issued += n;
                        }
                        issued
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        let wall = began.elapsed();
        let p99 = mgr
            .tenant_read_latency(tenant)
            .expect("tenant exists")
            .snapshot()
            .p99();
        (ops_done, wall, p99)
    };

    // Best of two runs per setting, interleaved, so scheduler noise does
    // not masquerade as tracing overhead.
    let modes: &[(&str, Option<u32>)] = &[
        ("off", None),
        ("1/64 (default)", Some(64)),
        ("1/1 (every request)", Some(1)),
    ];
    let mut best: Vec<(usize, Duration, u64)> = vec![(0, Duration::MAX, 0); modes.len()];
    for round in 0..2u64 {
        for (i, (_, sample)) in modes.iter().enumerate() {
            let r = measure(*sample, 11 + round);
            if r.1 < best[i].1 {
                best[i] = r;
            }
        }
    }
    telemetry::set_trace_sample(Some(64));

    let off_rate = best[0].0 as f64 / best[0].1.as_secs_f64();
    let mut t = Table::new(&[
        "sampling",
        "ops",
        "wall (ms)",
        "ops/s",
        "read p99 (ms)",
        "overhead vs off (%)",
    ]);
    let mut overhead_default = 0.0f64;
    for (i, (name, _)) in modes.iter().enumerate() {
        let (ops, wall, p99) = best[i];
        let rate = ops as f64 / wall.as_secs_f64();
        let overhead = (off_rate / rate - 1.0) * 100.0;
        if i == 1 {
            overhead_default = overhead;
        }
        t.row_owned(vec![
            (*name).into(),
            ops.to_string(),
            f3(wall.as_secs_f64() * 1e3),
            f3(rate),
            f3(p99 as f64 / 1e6),
            if i == 0 { "-".into() } else { f3(overhead) },
        ]);
    }
    // The acceptance bound: default sampling costs < 5% throughput.
    assert!(
        overhead_default < 5.0,
        "default 1/64 sampling cost {overhead_default:.2}% (bound 5%)"
    );

    vec![(
        format!(
            "E20: end-to-end tracing overhead — {clients} zipf(0.99) clients, \
             70/30 read/write, batched group {GROUP}, 300us spindles"
        ),
        t,
    )]
}

/// E21: what crash consistency costs — and what replay buys back. Two
/// tables over real file-backed devices:
///
/// 1. The E19-style batched closed loop (zipf clients, 70/30 mix) runs
///    over identical fresh arrays of latency-injected file devices
///    (E19's 300us spindle model) with the parity journal off and on —
///    on, every multi-member update writes a checksummed intent with one
///    group-commit `fdatasync` per coalesced wave. Acceptance: journaled
///    throughput within 15% of unjournaled.
/// 2. Crash-storm replay: the journal is loaded with committed-but-
///    unapplied intents (the worst case a kill-anywhere storm can leave
///    behind), one covered chunk is scribbled over, and `open_durable`
///    redoes the log. Reports replay throughput; asserts the scribbled
///    chunk comes back and parity is clean.
pub fn e21_journal_overhead() -> Vec<(String, Table)> {
    use blockdev::{
        BlockDevice, FaultConfig, FaultInjectingDevice, FileDevice, Journal, MemberWrite,
    };
    use oi_raid::OiRaidStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use volume::{Op, TenantClass, VolumeManager, Zipf};

    const CHUNK: usize = 4096;
    const RECORD: usize = 512;
    const WORKERS: usize = 8;
    const GROUP: usize = 256;
    const READ_FRAC: f64 = 0.7;
    let latency = Duration::from_micros(300);
    let total_ops: usize = std::env::var("OI_E21_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6_144)
        .max(WORKERS);
    let cfg = OiRaidConfig::reference();
    let chunks_per_disk = {
        let probe = OiRaidStore::new(cfg.clone(), CHUNK).expect("reference store");
        probe.devices()[0].chunks()
    };
    let base = std::env::temp_dir().join(format!("oi-raid-e21-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // One measured closed loop over a fresh prefilled array of real file
    // devices behind E19's 300us spindle model; the only variable is
    // whether the parity journal (intent write + group-commit fdatasync
    // per wave) is in the update path.
    let measure = |journaled: bool, round: u64| -> (usize, Duration, u64) {
        let seed = 0xE21 ^ round;
        let dir = base.join(format!("{}-{round}", if journaled { "on" } else { "off" }));
        std::fs::create_dir_all(&dir).expect("bench dir");
        let devices: Vec<_> = (0..21)
            .map(|d| {
                let file = FileDevice::create(
                    dir.join(format!("disk-{d:03}.img")),
                    CHUNK,
                    chunks_per_disk,
                )
                .expect("device file");
                FaultInjectingDevice::new(file, FaultConfig::default())
            })
            .collect();
        let mut store =
            OiRaidStore::with_devices(cfg.clone(), CHUNK, devices).expect("valid devices");
        if journaled {
            store.attach_journal(
                Journal::create(dir.join("journal.log")).expect("journal"),
                blockdev::FlushPolicy::Never,
            );
        }
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 131 + j * 17 + 3) as u8).collect();
            store.write_data(idx, &chunk).expect("prefill write");
        }
        for dev in store.devices() {
            dev.set_config(FaultConfig::latency(latency, latency));
        }
        let mgr = Arc::new(VolumeManager::new(Arc::new(store), WORKERS * 2));
        let tenant = mgr.add_tenant("t0", TenantClass::default());
        let records = mgr.store().capacity_bytes() / RECORD as u64;
        let vol = mgr
            .create_volume(tenant, "t0", RECORD, records)
            .expect("volume fits");
        let zipf = Zipf::scrambled(records as usize, 0.99, seed);
        let began = Instant::now();
        let ops_done: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|w| {
                    let zipf = &zipf;
                    let mgr = Arc::clone(&mgr);
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed ^ w as u64);
                        let per_worker = (total_ops / WORKERS).max(1);
                        let mut issued = 0usize;
                        while issued < per_worker {
                            let n = GROUP.min(per_worker - issued);
                            let mut ops = Vec::with_capacity(n);
                            for _ in 0..n {
                                let record = zipf.sample(&mut rng) as u64;
                                if rng.gen::<f64>() < READ_FRAC {
                                    ops.push(Op::Read {
                                        volume: vol,
                                        record,
                                    });
                                } else {
                                    let tag = (rng.next_u64() & 0xFF) as u8;
                                    ops.push(Op::Write {
                                        volume: vol,
                                        record,
                                        data: vec![tag; RECORD],
                                    });
                                }
                            }
                            for res in mgr.submit(ops) {
                                res.expect("batched op");
                            }
                            issued += n;
                        }
                        issued
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        let wall = began.elapsed();
        let p99 = mgr
            .tenant_read_latency(tenant)
            .expect("tenant exists")
            .snapshot()
            .p99();
        let _ = std::fs::remove_dir_all(&dir);
        (ops_done, wall, p99)
    };

    // Best of two interleaved rounds per setting, so filesystem noise
    // does not masquerade as journal overhead.
    let mut best = [(0usize, Duration::MAX, 0u64); 2];
    for round in 0..2u64 {
        for (i, journaled) in [false, true].into_iter().enumerate() {
            let r = measure(journaled, round);
            if r.1 < best[i].1 {
                best[i] = r;
            }
        }
    }
    let off_rate = best[0].0 as f64 / best[0].1.as_secs_f64();
    let on_rate = best[1].0 as f64 / best[1].1.as_secs_f64();
    let overhead = (off_rate / on_rate - 1.0) * 100.0;
    let mut t1 = Table::new(&[
        "journal",
        "ops",
        "wall (ms)",
        "ops/s",
        "read p99 (ms)",
        "overhead vs off (%)",
    ]);
    for (i, name) in ["off", "on (group commit)"].iter().enumerate() {
        let (ops, wall, p99) = best[i];
        t1.row_owned(vec![
            (*name).into(),
            ops.to_string(),
            f3(wall.as_secs_f64() * 1e3),
            f3(ops as f64 / wall.as_secs_f64()),
            f3(p99 as f64 / 1e6),
            if i == 0 { "-".into() } else { f3(overhead) },
        ]);
    }
    // The acceptance bound: crash consistency costs at most 15% of the
    // unjournaled closed-loop throughput.
    assert!(
        overhead <= 15.0,
        "journal cost {overhead:.2}% of closed-loop throughput (bound 15%)"
    );

    // ---- replay: redo a log full of committed-but-unapplied intents ----
    let intents: usize = std::env::var("OI_E21_REPLAY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512)
        .max(1);
    const MEMBERS: usize = 4; // one data chunk + 3 parity chunks per wave
    let dir = base.join("replay");
    let (victim, want) = {
        let store = OiRaidStore::create_durable(cfg.clone(), CHUNK, &dir).expect("durable store");
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 37 + j * 11 + 5) as u8).collect();
            store.write_data(idx, &chunk).expect("prefill write");
        }
        // Intents that rewrite chunks with the bytes they already hold:
        // exactly what a crash after commit-before-apply leaves behind
        // (redo is idempotent because records carry absolute values).
        let journal = store.journal().expect("durable store has a journal");
        let devices = store.devices();
        let chunks_per_disk = devices[0].chunks();
        let mut buf = vec![0u8; CHUNK];
        for i in 0..intents {
            let writes: Vec<MemberWrite> = (0..MEMBERS)
                .map(|m| {
                    let at = i * MEMBERS + m;
                    let disk = at % devices.len();
                    let chunk = (at / devices.len()) % chunks_per_disk;
                    devices[disk].read_chunk(chunk, &mut buf).expect("read");
                    MemberWrite {
                        disk: disk as u32,
                        chunk: chunk as u32,
                        data: buf.clone(),
                    }
                })
                .collect();
            let seq = journal.append_intent(&writes).expect("append");
            journal.commit(seq).expect("commit");
        }
        // Scribble over one covered chunk: the redo pass must undo this.
        let want = {
            devices[0].read_chunk(0, &mut buf).expect("read victim");
            buf.clone()
        };
        devices[0]
            .write_chunk(0, &vec![0xEE; CHUNK])
            .expect("scribble");
        ((0usize, 0usize), want)
    };
    let began = Instant::now();
    let store = OiRaidStore::open_durable(cfg.clone(), CHUNK, &dir).expect("replay");
    let replay_wall = began.elapsed();
    let mut buf = vec![0u8; CHUNK];
    store.devices()[victim.0]
        .read_chunk(victim.1, &mut buf)
        .expect("read back");
    assert_eq!(buf, want, "replay must redo the scribbled chunk");
    assert!(
        store.check_parity().is_empty(),
        "parity clean after crash-storm replay"
    );
    assert_eq!(
        store.journal().expect("journal").outstanding(),
        0,
        "replay leaves no outstanding intents"
    );
    let bytes = (intents * MEMBERS * CHUNK) as f64;
    let mut t2 = Table::new(&[
        "intents",
        "member writes",
        "log (MiB)",
        "replay wall (ms)",
        "intents/s",
        "MiB/s",
    ]);
    t2.row_owned(vec![
        intents.to_string(),
        (intents * MEMBERS).to_string(),
        f3(bytes / (1 << 20) as f64),
        f3(replay_wall.as_secs_f64() * 1e3),
        f3(intents as f64 / replay_wall.as_secs_f64()),
        f3(bytes / (1 << 20) as f64 / replay_wall.as_secs_f64()),
    ]);
    drop(store);
    let _ = std::fs::remove_dir_all(&base);

    vec![
        (
            format!(
                "E21: parity-journal overhead — E19 closed loop on file devices \
                 with 300us spindles, {total_ops} ops, group {GROUP}, journal off vs on"
            ),
            t1,
        ),
        (
            format!(
                "E21: crash-storm replay — {intents} committed-but-unapplied \
                 intents ({MEMBERS} member writes each) redone on open"
            ),
            t2,
        ),
    ]
}

/// E22: member-flush policy cost. The E21 closed loop with the parity
/// journal always on, sweeping [`blockdev::FlushPolicy`]:
///
/// * `Never` — journal-on baseline (process-crash durability, E21's "on"
///   row);
/// * `Timed(2ms)` — a background flusher walks the applied-marker
///   high-water mark, so commits never wait on member fsyncs;
/// * `PerWave` — every commit flushes the wave's touched members before
///   its applied marker (full power-loss durability on the ack path).
///
/// Asserts the acceptance bounds: PerWave costs at most 2.5x of the
/// journal-on closed-loop throughput, Timed at most 1.3x. `OI_E22_OPS`
/// trims the op count for smoke runs.
pub fn e22_flush_policy() -> Vec<(String, Table)> {
    use blockdev::{
        BlockDevice, FaultConfig, FaultInjectingDevice, FileDevice, FlushPolicy, Journal,
    };
    use oi_raid::OiRaidStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use telemetry::Registry;
    use volume::{Op, TenantClass, VolumeManager, Zipf};

    const CHUNK: usize = 4096;
    const RECORD: usize = 512;
    const WORKERS: usize = 8;
    const GROUP: usize = 256;
    const READ_FRAC: f64 = 0.7;
    let latency = Duration::from_micros(300);
    let total_ops: usize = std::env::var("OI_E22_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6_144)
        .max(WORKERS);
    let cfg = OiRaidConfig::reference();
    let chunks_per_disk = {
        let probe = OiRaidStore::new(cfg.clone(), CHUNK).expect("reference store");
        probe.devices()[0].chunks()
    };
    let base = std::env::temp_dir().join(format!("oi-raid-e22-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let policies: [(&str, FlushPolicy); 3] = [
        ("never (journal-on baseline)", FlushPolicy::Never),
        ("timed 2ms", FlushPolicy::Timed(Duration::from_millis(2))),
        ("perwave", FlushPolicy::PerWave),
    ];

    // One measured closed loop per policy, same harness as E21: real file
    // devices behind 300us spindles, Zipf 0.99 keys, 70/30 read/write.
    let measure = |name: &str, policy: FlushPolicy, round: u64| -> (usize, Duration, u64, u64) {
        let seed = 0xE22 ^ round;
        let dir = base.join(format!(
            "{}-{round}",
            name.split_whitespace().next().unwrap()
        ));
        std::fs::create_dir_all(&dir).expect("bench dir");
        let devices: Vec<_> = (0..21)
            .map(|d| {
                let file = FileDevice::create(
                    dir.join(format!("disk-{d:03}.img")),
                    CHUNK,
                    chunks_per_disk,
                )
                .expect("device file");
                FaultInjectingDevice::new(file, FaultConfig::default())
            })
            .collect();
        let mut store =
            OiRaidStore::with_devices(cfg.clone(), CHUNK, devices).expect("valid devices");
        store.attach_journal(
            Journal::create(dir.join("journal.log")).expect("journal"),
            policy,
        );
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..CHUNK).map(|j| (idx * 131 + j * 17 + 3) as u8).collect();
            store.write_data(idx, &chunk).expect("prefill write");
        }
        for dev in store.devices() {
            dev.set_config(FaultConfig::latency(latency, latency));
        }
        let store = Arc::new(store);
        // Timed runs get the background flusher a production deployment
        // would have; the other policies return None here.
        let flusher = store.spawn_flusher();
        let mgr = Arc::new(VolumeManager::new(Arc::clone(&store), WORKERS * 2));
        let tenant = mgr.add_tenant("t0", TenantClass::default());
        let records = mgr.store().capacity_bytes() / RECORD as u64;
        let vol = mgr
            .create_volume(tenant, "t0", RECORD, records)
            .expect("volume fits");
        let zipf = Zipf::scrambled(records as usize, 0.99, seed);
        let began = Instant::now();
        let ops_done: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|w| {
                    let zipf = &zipf;
                    let mgr = Arc::clone(&mgr);
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed ^ w as u64);
                        let per_worker = (total_ops / WORKERS).max(1);
                        let mut issued = 0usize;
                        while issued < per_worker {
                            let n = GROUP.min(per_worker - issued);
                            let mut ops = Vec::with_capacity(n);
                            for _ in 0..n {
                                let record = zipf.sample(&mut rng) as u64;
                                if rng.gen::<f64>() < READ_FRAC {
                                    ops.push(Op::Read {
                                        volume: vol,
                                        record,
                                    });
                                } else {
                                    let tag = (rng.next_u64() & 0xFF) as u8;
                                    ops.push(Op::Write {
                                        volume: vol,
                                        record,
                                        data: vec![tag; RECORD],
                                    });
                                }
                            }
                            for res in mgr.submit(ops) {
                                res.expect("batched op");
                            }
                            issued += n;
                        }
                        issued
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        let wall = began.elapsed();
        drop(flusher);
        let reg = Registry::new();
        store.export_metrics(&reg);
        let waves = reg
            .prometheus()
            .lines()
            .find(|l| l.starts_with("oi_flush_waves_total") && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let p99 = mgr
            .tenant_read_latency(tenant)
            .expect("tenant exists")
            .snapshot()
            .p99();
        drop(mgr);
        let _ = std::fs::remove_dir_all(&dir);
        (ops_done, wall, p99, waves)
    };

    // Best of two interleaved rounds per policy, as in E21, so filesystem
    // noise does not masquerade as flush cost.
    let mut best = [(0usize, Duration::MAX, 0u64, 0u64); 3];
    for round in 0..2u64 {
        for (i, (name, policy)) in policies.iter().enumerate() {
            let r = measure(name, *policy, round);
            if r.1 < best[i].1 {
                best[i] = r;
            }
        }
    }
    let rate = |i: usize| best[i].0 as f64 / best[i].1.as_secs_f64();
    let baseline = rate(0);
    let cost_timed = baseline / rate(1);
    let cost_perwave = baseline / rate(2);

    let mut t = Table::new(&[
        "flush policy",
        "ops",
        "wall (ms)",
        "ops/s",
        "read p99 (ms)",
        "flush waves",
        "cost vs never (x)",
    ]);
    for (i, (name, _)) in policies.iter().enumerate() {
        let (ops, wall, p99, waves) = best[i];
        t.row_owned(vec![
            (*name).into(),
            ops.to_string(),
            f3(wall.as_secs_f64() * 1e3),
            f3(ops as f64 / wall.as_secs_f64()),
            f3(p99 as f64 / 1e6),
            waves.to_string(),
            if i == 0 {
                "1.000".into()
            } else {
                f3(baseline / rate(i))
            },
        ]);
    }
    // Acceptance bounds: whole-host durability on the ack path costs at
    // most 2.5x of the journal-on closed loop; deferred (timed) flushing
    // at most 1.3x.
    assert!(
        cost_perwave <= 2.5,
        "PerWave costs {cost_perwave:.3}x of journal-on throughput (bound 2.5x)"
    );
    assert!(
        cost_timed <= 1.3,
        "Timed costs {cost_timed:.3}x of journal-on throughput (bound 1.3x)"
    );
    let _ = std::fs::remove_dir_all(&base);

    vec![(
        format!(
            "E22: member-flush policy cost — E21 closed loop, journal on, \
             {total_ops} ops, group {GROUP}, FlushPolicy never vs timed(2ms) vs perwave"
        ),
        t,
    )]
}

/// Runs one experiment by id (`e1`..`e22`, `a1`, `a2`), or `all`.
/// Returns the rendered tables; unknown ids return `None`.
pub fn run(id: &str) -> Option<Vec<(String, Table)>> {
    match id {
        "e1" => Some(e1_recovery_speedup()),
        "e2" => Some(e2_capacity_sweep()),
        "e3" => Some(e3_storage_overhead()),
        "e4" => Some(e4_update_complexity()),
        "e5" => Some(e5_loss_probability()),
        "e6" | "a1" => Some(e6_load_distribution()),
        "e7" => Some(e7_mttdl()),
        "e8" => Some(e8_degraded_mode()),
        "e9" => Some(e9_multi_failure()),
        "e10" => Some(e10_catalogue()),
        "e11" => Some(e11_ure_sensitivity()),
        "e12" => Some(e12_dual_parity()),
        "e13" => Some(e13_parallel_rebuild()),
        "e14" => Some(e14_kernel_throughput()),
        "e15" => Some(e15_telemetry_overhead()),
        "e16" => Some(e16_self_healing()),
        "e17" => Some(e17_online_qos()),
        "e18" => Some(e18_dag_scheduler()),
        "e19" => Some(e19_volume_closed_loop()),
        "e20" => Some(e20_tracing_overhead()),
        "e21" => Some(e21_journal_overhead()),
        "e22" => Some(e22_flush_policy()),
        "a2" => Some(a2_strategy_ablation()),
        "all" => {
            let mut out = Vec::new();
            for id in [
                "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
                "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22", "a2",
            ] {
                out.extend(run(id).expect("known id"));
            }
            Some(out)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_configs_all_construct() {
        for (v, k, g) in sweep_parameters() {
            let a = sweep_array(v, k, g);
            assert_eq!(a.disks(), v * g);
        }
    }

    #[test]
    fn fast_tables_have_expected_shape() {
        let e3 = e3_storage_overhead();
        assert_eq!(e3.len(), 1);
        assert!(e3[0].1.render().contains("3-replication"));
        let e4 = e4_update_complexity();
        assert!(e4[0].1.render().contains("OI-RAID"));
        let e10 = e10_catalogue();
        assert!(e10[0].1.render().contains("difference-set"));
    }

    #[test]
    fn e9_runs_on_reference() {
        let t = e9_multi_failure();
        let text = t[0].1.render();
        assert!(text.contains("whole group"));
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("e99").is_none());
    }
}
