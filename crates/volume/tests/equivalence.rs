//! Property tests: the batched submission path is bit-identical to
//! submitting the same operations one at a time — healthy, with one or two
//! failed disks, and while a rebuild is live.
//!
//! The oracle is per-record program order: a read's expected value is the
//! last write to the *same record* earlier in the stream (or the pre-stream
//! contents). Operations on different records are concurrent, so that is
//! the only ordering either path promises — and both paths must agree on
//! it, and on the final store state, bit for bit.

use std::sync::Arc;

use oi_raid::{OiRaidConfig, OiRaidStore, RebuildMode, RecoveryStrategy};
use proptest::prelude::*;
use volume::{Op, TenantClass, VolumeId, VolumeManager};

const RECORD: usize = 24; // straddles the 16-byte chunks on purpose
const RECORDS: u64 = 32;

/// A generated op: `(record, write_tag)`; tag 0 = read, else a write whose
/// payload is derived from the tag.
type GenOp = (u64, u8);

fn payload(record: u64, tag: u8) -> Vec<u8> {
    (0..RECORD as u8)
        .map(|i| tag ^ (record as u8) ^ i)
        .collect()
}

fn fresh(shards: usize) -> (VolumeManager, VolumeId) {
    let store = Arc::new(OiRaidStore::new(OiRaidConfig::reference(), 16).expect("store"));
    let m = VolumeManager::new(store, shards);
    let t = m.add_tenant("prop", TenantClass::default());
    let v = m.create_volume(t, "v", RECORD, RECORDS).expect("volume");
    (m, v)
}

/// Drives `stream` through the batched path on one manager and the direct
/// one-at-a-time path on another, checking every read against the oracle
/// and the final states against each other.
fn check_equivalence(stream: &[GenOp], shards: usize, fail: &[usize], chunk_per_submit: usize) {
    let (batched, vol) = fresh(shards);
    let (direct, _) = fresh(shards);
    for &d in fail {
        batched.store().fail_disk(d).expect("fail batched");
        direct.store().fail_disk(d).expect("fail direct");
    }
    // The oracle: last-written payload per record.
    let mut model: Vec<Vec<u8>> = (0..RECORDS).map(|_| vec![0u8; RECORD]).collect();
    for group in stream.chunks(chunk_per_submit.max(1)) {
        let mut ops = Vec::with_capacity(group.len());
        let mut expect: Vec<Option<Vec<u8>>> = Vec::with_capacity(group.len());
        for &(record, tag) in group {
            let record = record % RECORDS;
            if tag == 0 {
                ops.push(Op::Read {
                    volume: vol,
                    record,
                });
                expect.push(Some(model[record as usize].clone()));
            } else {
                let data = payload(record, tag);
                model[record as usize] = data.clone();
                ops.push(Op::Write {
                    volume: vol,
                    record,
                    data,
                });
                expect.push(None);
            }
        }
        // Direct path: one call per op, in stream order. Reads check
        // against the oracle value captured at their stream position.
        for (op, want) in ops.iter().zip(&expect) {
            match op {
                Op::Read { record, .. } => {
                    let got = direct.read_record(vol, *record).expect("direct read");
                    assert_eq!(Some(got), *want, "direct read r{record}");
                }
                Op::Write { record, data, .. } => {
                    direct
                        .write_record(vol, *record, data)
                        .expect("direct write");
                }
            }
        }
        // Batched path: one submit per group.
        let results = batched.submit(ops);
        for (i, (res, want)) in results.into_iter().zip(expect).enumerate() {
            let got = res.expect("batched op");
            assert_eq!(got, want, "batched slot {i}");
        }
    }
    // Bit-identical final state, record by record, via both read paths.
    for r in 0..RECORDS {
        let b = batched.read_record(vol, r).expect("final batched read");
        let d = direct.read_record(vol, r).expect("final direct read");
        assert_eq!(b, model[r as usize], "batched final r{r}");
        assert_eq!(d, model[r as usize], "direct final r{r}");
    }
    // Healthy stores must also have clean parity (degraded ones hold
    // implied values for lost chunks, checked after rebuild below).
    if fail.is_empty() {
        assert!(batched.store().check_parity().is_empty());
        assert!(direct.store().check_parity().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_equals_sequential_healthy(
        stream in proptest::collection::vec((0u64..RECORDS, 0u8..8), 1..60),
        shards in 1usize..6,
        group in 1usize..24,
    ) {
        check_equivalence(&stream, shards, &[], group);
    }

    #[test]
    fn batched_equals_sequential_degraded(
        stream in proptest::collection::vec((0u64..RECORDS, 0u8..8), 1..48),
        shards in 1usize..5,
        group in 1usize..16,
        fail_a in 0usize..21,
        fail_b in 0usize..21,
        two in any::<bool>(),
    ) {
        let mut fail = vec![fail_a];
        if two && fail_b != fail_a {
            fail.push(fail_b);
        }
        check_equivalence(&stream, shards, &fail, group);
    }

    #[test]
    fn degraded_writes_rebuild_to_clean_parity(
        stream in proptest::collection::vec((0u64..RECORDS, 1u8..8), 1..32),
        fail_a in 0usize..21,
        fail_b in 0usize..21,
    ) {
        let (m, vol) = fresh(4);
        m.store().fail_disk(fail_a).expect("fail a");
        if fail_b != fail_a {
            m.store().fail_disk(fail_b).expect("fail b");
        }
        let ops: Vec<Op> = stream
            .iter()
            .map(|&(record, tag)| Op::Write {
                volume: vol,
                record,
                data: payload(record, tag),
            })
            .collect();
        for res in m.submit(ops) {
            res.expect("degraded batched write");
        }
        let report = m
            .store()
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .expect("rebuild");
        prop_assert_eq!(report.outcome, oi_raid::RebuildOutcome::Complete);
        prop_assert!(m.store().check_parity().is_empty());
        let mut model: Vec<Vec<u8>> = (0..RECORDS).map(|_| vec![0u8; RECORD]).collect();
        for &(record, tag) in &stream {
            model[(record % RECORDS) as usize] = payload(record % RECORDS, tag);
        }
        for r in 0..RECORDS {
            prop_assert_eq!(m.read_record(vol, r).expect("post-rebuild read"), model[r as usize].clone());
        }
    }
}

/// Batches submitted *while a rebuild runs* land correctly: the final state
/// matches the model, and parity is clean once the rebuild (plus one more
/// pass for anything the first one raced past) completes.
#[test]
fn batches_during_live_rebuild_window() {
    for seed in 0u8..3 {
        let (m, vol) = fresh(4);
        let m = Arc::new(m);
        // Seed every record, then fail two disks.
        let seed_ops: Vec<Op> = (0..RECORDS)
            .map(|r| Op::Write {
                volume: vol,
                record: r,
                data: payload(r, 0x40 | seed),
            })
            .collect();
        for res in m.submit(seed_ops) {
            res.expect("seed write");
        }
        m.store().fail_disk(3 + seed as usize).expect("fail a");
        m.store().fail_disk(12 + seed as usize).expect("fail b");
        // Rebuild on one thread, batched writes on another.
        let rebuilder = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                m.store()
                    .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
                    .expect("rebuild")
            })
        };
        let writer = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                for round in 0..8u8 {
                    let ops: Vec<Op> = (0..RECORDS)
                        .step_by(3)
                        .map(|r| Op::Write {
                            volume: vol,
                            record: r,
                            data: payload(r, 0x80 | (seed << 3) | round),
                        })
                        .collect();
                    for res in m.submit(ops) {
                        res.expect("mid-rebuild write");
                    }
                }
            })
        };
        writer.join().expect("writer");
        let report = rebuilder.join().expect("rebuilder");
        assert_eq!(report.outcome, oi_raid::RebuildOutcome::Complete);
        // Every record holds its last write.
        for r in 0..RECORDS {
            let want = if r % 3 == 0 {
                payload(r, 0x80 | (seed << 3) | 7)
            } else {
                payload(r, 0x40 | seed)
            };
            assert_eq!(
                m.read_record(vol, r).expect("final read"),
                want,
                "record {r}"
            );
        }
        assert!(
            m.store().check_parity().is_empty(),
            "parity dirty after rebuild (seed {seed})"
        );
    }
}
