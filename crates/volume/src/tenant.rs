//! Tenant QoS classes and per-tenant accounting.
//!
//! A tenant owns volumes and carries a [`TenantClass`]: a *weight* that
//! shapes how the per-shard drain interleaves tenants when queues are
//! contended, and an optional *rate cap* enforced by a token bucket at
//! submission time. Capped tenants pace **themselves** (the submitting
//! thread sleeps before its ops enter the shard queues), so a throttled
//! tenant can never hold a drain slot hostage — the isolation model E19c
//! measures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use telemetry::Histogram;

use crate::slo::{SloPolicy, SloTracker};

/// Identifies a tenant within one [`VolumeManager`](crate::VolumeManager).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub(crate) usize);

impl TenantId {
    /// The tenant's index (registration order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A tenant's QoS class: drain weight plus optional rate cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantClass {
    /// Relative share of each drain wave when shard queues are contended
    /// (a weight-3 tenant gets three queue slots per round-robin cycle for
    /// every one a weight-1 tenant gets). Clamped to at least 1.
    pub weight: u32,
    /// Optional hard cap on submitted operations per second, enforced by a
    /// token bucket at submission time. `None` = uncapped.
    pub rate_ops_per_sec: Option<f64>,
    /// Bucket depth for capped tenants: how many ops may burst through
    /// before pacing engages.
    pub burst_ops: f64,
    /// Optional latency SLO. When set, every completed request is
    /// classified good/bad against the objective and exported as the
    /// `oi_slo_*` series (see [`crate::slo`]).
    pub slo: Option<SloPolicy>,
}

impl Default for TenantClass {
    fn default() -> Self {
        Self {
            weight: 1,
            rate_ops_per_sec: None,
            burst_ops: 64.0,
            slo: None,
        }
    }
}

impl TenantClass {
    /// An uncapped class with the given drain weight.
    pub fn weighted(weight: u32) -> Self {
        Self {
            weight,
            ..Self::default()
        }
    }

    /// A weight-1 class capped at `ops_per_sec`.
    pub fn capped(ops_per_sec: f64) -> Self {
        Self {
            rate_ops_per_sec: Some(ops_per_sec),
            ..Self::default()
        }
    }

    /// Attaches a latency SLO to this class.
    pub fn with_slo(mut self, slo: SloPolicy) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// Token-bucket state for one capped tenant.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// One registered tenant: class, token bucket, and live metrics.
#[derive(Debug)]
pub(crate) struct Tenant {
    /// Registration index, used as the flight-event payload when the rate
    /// cap forces a wait.
    pub(crate) id: usize,
    pub(crate) name: String,
    pub(crate) class: TenantClass,
    bucket: Mutex<Bucket>,
    pub(crate) reads: AtomicU64,
    pub(crate) writes: AtomicU64,
    pub(crate) absorbed_reads: AtomicU64,
    pub(crate) throttle_waits: AtomicU64,
    pub(crate) throttle_wait_ns: AtomicU64,
    pub(crate) read_latency: Arc<Histogram>,
    pub(crate) write_latency: Arc<Histogram>,
    pub(crate) slo: Option<SloTracker>,
}

impl Tenant {
    pub(crate) fn new(id: usize, name: &str, class: TenantClass) -> Self {
        Self {
            id,
            name: name.to_string(),
            class,
            bucket: Mutex::new(Bucket {
                tokens: class.burst_ops,
                last: Instant::now(),
            }),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            absorbed_reads: AtomicU64::new(0),
            throttle_waits: AtomicU64::new(0),
            throttle_wait_ns: AtomicU64::new(0),
            read_latency: Arc::new(Histogram::new()),
            write_latency: Arc::new(Histogram::new()),
            slo: class.slo.map(SloTracker::new),
        }
    }

    /// Pays `n` ops out of the rate cap, sleeping the submitting thread
    /// until the bucket can cover them. No-op for uncapped tenants.
    pub(crate) fn pay(&self, n: u64) {
        let Some(rate) = self.class.rate_ops_per_sec else {
            return;
        };
        if rate <= 0.0 || n == 0 {
            return;
        }
        let need = n as f64;
        let wait = {
            let mut b = self.bucket.lock().expect("tenant bucket lock");
            let now = Instant::now();
            let dt = now.duration_since(b.last).as_secs_f64();
            b.last = now;
            b.tokens = (b.tokens + dt * rate).min(self.class.burst_ops.max(need));
            // The bucket may go negative (we borrow); the sleep below covers
            // exactly the borrowed amount, and the next refill starts from
            // the debt — otherwise the slept time would be credited twice.
            b.tokens -= need;
            if b.tokens >= 0.0 {
                Duration::ZERO
            } else {
                Duration::from_secs_f64(-b.tokens / rate)
            }
        };
        if !wait.is_zero() {
            self.throttle_waits.fetch_add(1, Ordering::Relaxed);
            self.throttle_wait_ns
                .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
            telemetry::flight_event(
                telemetry::EventKind::TenantCapWait,
                self.id as u64,
                wait.as_nanos().min(u64::MAX as u128) as u64,
            );
            std::thread::sleep(wait);
        }
    }

    pub(crate) fn record_read(&self, took: Duration) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.read_latency.record_duration(took);
        if let Some(slo) = &self.slo {
            slo.record_read(took);
        }
    }

    pub(crate) fn record_write(&self, took: Duration) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.write_latency.record_duration(took);
        if let Some(slo) = &self.slo {
            slo.record_write(took);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncapped_tenant_never_sleeps() {
        let t = Tenant::new(0, "free", TenantClass::default());
        let start = Instant::now();
        t.pay(1_000_000);
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(t.throttle_waits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn capped_tenant_paces_to_its_rate() {
        // 1000 ops/s, burst 10: paying 60 ops must take roughly 50ms.
        let t = Tenant::new(
            0,
            "slow",
            TenantClass {
                rate_ops_per_sec: Some(1000.0),
                burst_ops: 10.0,
                ..TenantClass::default()
            },
        );
        let start = Instant::now();
        for _ in 0..6 {
            t.pay(10);
        }
        let took = start.elapsed();
        assert!(took >= Duration::from_millis(35), "took {took:?}");
        assert!(t.throttle_waits.load(Ordering::Relaxed) > 0);
    }
}
