//! Multi-tenant volume layer over an [`OiRaidStore`](oi_raid::OiRaidStore).
//!
//! OI-RAID's store exposes one flat chunk/byte space. Real deployments
//! carve that space into many *volumes* owned by *tenants*, and the
//! foreground path lives or dies by how well concurrent small requests
//! batch against the array. This crate adds that layer:
//!
//! * [`VolumeManager`] — maps volumes onto the store and runs the
//!   batch-first submission path: per-shard queues, a combining drain
//!   (one submitter serves everyone's pending ops), read coalescing and
//!   read-after-write absorption, and write coalescing down to one
//!   read-modify-write per touched chunk (see [`manager`] docs).
//! * [`TenantClass`] — per-tenant QoS: drain weights plus optional
//!   token-bucket rate caps that make tenants pace themselves.
//! * [`Zipf`] — the skewed key sampler the closed-loop benchmark (E19)
//!   and the equivalence property tests drive the layer with.
//!
//! Batched execution is bit-identical to one-at-a-time submission — the
//! store-level batch primitives preserve RAID invariants by XOR/GF
//! linearity, and the manager preserves per-record program order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manager;
pub mod slo;
pub mod tenant;
pub mod workload;

pub use manager::{Op, OpResult, VolumeError, VolumeId, VolumeManager};
pub use slo::{SloPolicy, SloSnapshot, SLO_WINDOW_SECS};
pub use tenant::{TenantClass, TenantId};
pub use workload::Zipf;
