//! Per-tenant latency SLOs with windowed burn-rate tracking.
//!
//! A tenant's [`crate::TenantClass`] may carry an [`SloPolicy`]: a
//! latency objective per op kind plus an error budget. Every completed
//! request is classified *good* (within objective) or *bad* (over it)
//! into two places at once:
//!
//! * cumulative good/bad counters — live [`Counter`] handles exported
//!   as `oi_slo_good_total` / `oi_slo_bad_total`, the raw series an
//!   external SLO pipeline would consume;
//! * a ring of per-second window buckets — summed on demand into the
//!   recent good/bad counts and a **burn rate**: the fraction of recent
//!   requests that were bad, divided by the error budget. Burn rate 1000
//!   (milli) means the tenant is consuming budget exactly as fast as the
//!   objective allows; above it, the SLO is burning down and an operator
//!   should look at `/traces` for the requests paying the price.
//!
//! Recording is a few relaxed atomic adds; bucket rotation is a CAS that
//! tolerates racing writers (both land in the same fresh bucket).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use telemetry::Counter;

/// Seconds of history the burn-rate window covers.
pub const SLO_WINDOW_SECS: u64 = 30;

/// A latency objective pair plus error budget for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Reads completing within this are *good*.
    pub read_objective: Duration,
    /// Writes completing within this are *good*.
    pub write_objective: Duration,
    /// Permitted bad fraction, in thousandths: 1 = 99.9 % objective,
    /// 10 = 99 %. Clamped to at least 1 when computing burn rate.
    pub error_budget_milli: u64,
}

impl SloPolicy {
    /// A 99.9 % policy (`error_budget_milli = 1`) with the given
    /// objectives.
    pub fn new(read_objective: Duration, write_objective: Duration) -> Self {
        Self {
            read_objective,
            write_objective,
            error_budget_milli: 1,
        }
    }
}

/// One second of window history.
#[derive(Debug, Default)]
struct WindowBucket {
    /// Second index + 1 (0 = never used).
    stamp: AtomicU64,
    good: AtomicU64,
    bad: AtomicU64,
}

/// Good/bad accounting for one op kind (reads or writes).
#[derive(Debug)]
struct OpSlo {
    objective_ns: u64,
    good: Counter,
    bad: Counter,
    window: Vec<WindowBucket>,
}

impl OpSlo {
    fn new(objective: Duration) -> Self {
        Self {
            objective_ns: objective.as_nanos().min(u64::MAX as u128) as u64,
            good: Counter::default(),
            bad: Counter::default(),
            window: (0..SLO_WINDOW_SECS)
                .map(|_| WindowBucket::default())
                .collect(),
        }
    }

    fn record(&self, took_ns: u64, now_sec: u64) {
        let good = took_ns <= self.objective_ns;
        if good {
            self.good.inc();
        } else {
            self.bad.inc();
        }
        let bucket = &self.window[(now_sec % SLO_WINDOW_SECS) as usize];
        let stamp = now_sec + 1;
        let seen = bucket.stamp.load(Ordering::Relaxed);
        if seen != stamp {
            // Rotate the bucket into the new second. Losing the CAS means
            // another recorder already rotated it — just count into it.
            if bucket
                .stamp
                .compare_exchange(seen, stamp, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                bucket.good.store(0, Ordering::Relaxed);
                bucket.bad.store(0, Ordering::Relaxed);
            }
        }
        if good {
            bucket.good.fetch_add(1, Ordering::Relaxed);
        } else {
            bucket.bad.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn window_totals(&self, now_sec: u64) -> (u64, u64) {
        let oldest_valid = (now_sec + 1).saturating_sub(SLO_WINDOW_SECS);
        let mut good = 0;
        let mut bad = 0;
        for b in &self.window {
            let stamp = b.stamp.load(Ordering::Relaxed);
            if stamp > oldest_valid {
                good += b.good.load(Ordering::Relaxed);
                bad += b.bad.load(Ordering::Relaxed);
            }
        }
        (good, bad)
    }
}

/// A point-in-time view of one tenant/op SLO series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSnapshot {
    /// The latency objective, in nanoseconds.
    pub objective_ns: u64,
    /// Requests within objective since the tracker was created.
    pub good: u64,
    /// Requests over objective since the tracker was created.
    pub bad: u64,
    /// Requests within objective in the last [`SLO_WINDOW_SECS`] seconds.
    pub window_good: u64,
    /// Requests over objective in the last [`SLO_WINDOW_SECS`] seconds.
    pub window_bad: u64,
    /// Windowed bad fraction divided by the error budget, in
    /// thousandths: 1000 = burning budget exactly at the permitted rate.
    pub burn_rate_milli: u64,
}

/// Live good/bad tracking for one tenant under one [`SloPolicy`].
#[derive(Debug)]
pub(crate) struct SloTracker {
    epoch: Instant,
    budget_milli: u64,
    read: OpSlo,
    write: OpSlo,
}

impl SloTracker {
    pub(crate) fn new(policy: SloPolicy) -> Self {
        Self {
            epoch: Instant::now(),
            budget_milli: policy.error_budget_milli.max(1),
            read: OpSlo::new(policy.read_objective),
            write: OpSlo::new(policy.write_objective),
        }
    }

    fn now_sec(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    pub(crate) fn record_read(&self, took: Duration) {
        let ns = took.as_nanos().min(u64::MAX as u128) as u64;
        self.read.record(ns, self.now_sec());
    }

    pub(crate) fn record_write(&self, took: Duration) {
        let ns = took.as_nanos().min(u64::MAX as u128) as u64;
        self.write.record(ns, self.now_sec());
    }

    /// Live cumulative counters for `(read good, read bad, write good,
    /// write bad)` — attach these to a registry.
    pub(crate) fn counters(&self) -> (Counter, Counter, Counter, Counter) {
        (
            self.read.good.clone(),
            self.read.bad.clone(),
            self.write.good.clone(),
            self.write.bad.clone(),
        )
    }

    pub(crate) fn snapshot(&self, op_is_read: bool) -> SloSnapshot {
        let op = if op_is_read { &self.read } else { &self.write };
        let (window_good, window_bad) = op.window_totals(self.now_sec());
        let total = window_good + window_bad;
        // bad_fraction_milli / (budget_milli / 1000); empty window burns 0.
        let burn_rate_milli = (window_bad * 1_000_000)
            .checked_div(total)
            .map_or(0, |f| f / self.budget_milli);
        SloSnapshot {
            objective_ns: op.objective_ns,
            good: op.good.get(),
            bad: op.bad.get(),
            window_good,
            window_bad,
            burn_rate_milli,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(read_us: u64, write_us: u64) -> SloPolicy {
        SloPolicy::new(
            Duration::from_micros(read_us),
            Duration::from_micros(write_us),
        )
    }

    #[test]
    fn classification_against_objectives() {
        let t = SloTracker::new(policy(100, 50));
        t.record_read(Duration::from_micros(99));
        t.record_read(Duration::from_micros(100));
        t.record_read(Duration::from_micros(101));
        t.record_write(Duration::from_micros(200));
        let r = t.snapshot(true);
        assert_eq!(r.good, 2, "at-objective counts as good");
        assert_eq!(r.bad, 1);
        assert_eq!(r.window_good, 2);
        assert_eq!(r.window_bad, 1);
        let w = t.snapshot(false);
        assert_eq!((w.good, w.bad), (0, 1));
        assert_eq!(w.objective_ns, 50_000);
    }

    #[test]
    fn burn_rate_scales_with_bad_fraction_and_budget() {
        // 10% bad under a 99.9% objective: burning 100x the budget.
        let t = SloTracker::new(policy(100, 100));
        for _ in 0..90 {
            t.record_read(Duration::from_micros(1));
        }
        for _ in 0..10 {
            t.record_read(Duration::from_millis(5));
        }
        let s = t.snapshot(true);
        assert_eq!(s.burn_rate_milli, 100_000, "100x budget, in milli");
        // Same traffic, a 10x larger budget: 10x the burn.
        let mut p = policy(100, 100);
        p.error_budget_milli = 10;
        let t = SloTracker::new(p);
        for _ in 0..90 {
            t.record_read(Duration::from_micros(1));
        }
        for _ in 0..10 {
            t.record_read(Duration::from_millis(5));
        }
        assert_eq!(t.snapshot(true).burn_rate_milli, 10_000);
    }

    #[test]
    fn empty_window_reads_zero_burn() {
        let t = SloTracker::new(policy(100, 100));
        let s = t.snapshot(true);
        assert_eq!(s.burn_rate_milli, 0);
        assert_eq!((s.window_good, s.window_bad), (0, 0));
    }

    #[test]
    fn concurrent_recording_loses_nothing_cumulatively() {
        let t = std::sync::Arc::new(SloTracker::new(policy(100, 100)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..1000 {
                        let d = if i % 10 == 0 {
                            Duration::from_millis(1)
                        } else {
                            Duration::from_micros(1)
                        };
                        t.record_read(d);
                    }
                });
            }
        });
        let s = t.snapshot(true);
        assert_eq!(s.good + s.bad, 4000, "cumulative counters are exact");
        assert_eq!(s.bad, 400);
    }
}
