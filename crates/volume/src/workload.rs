//! Synthetic workload helpers: zipfian key popularity.
//!
//! The closed-loop benchmark (E19) and the equivalence tests both need a
//! skewed key distribution; the vendored `rand` shim has no zipf sampler,
//! so this one precomputes the CDF over the (small) record space and
//! samples by binary search — O(log n) per draw, exact for any `theta`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A zipfian sampler over `0..n`: rank `i` is drawn with probability
/// proportional to `(i + 1)^-theta`. `theta = 0` degenerates to uniform;
/// YCSB's default skew is `theta ≈ 0.99`.
///
/// With `scrambled`, ranks are mapped through a seeded permutation so the
/// hot keys spread across the key space (and therefore across chunks and
/// shards) instead of clustering at the low addresses.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    perm: Option<Vec<u32>>,
}

impl Zipf {
    /// A sampler over `0..n` with skew `theta`, hot ranks at low indices.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        assert!(theta.is_finite() && theta >= 0.0, "bad theta {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf, perm: None }
    }

    /// Like [`Zipf::new`] but ranks are scattered over the key space by a
    /// seeded Fisher–Yates permutation.
    pub fn scrambled(n: usize, theta: f64, seed: u64) -> Self {
        let mut z = Self::new(n, theta);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        z.perm = Some(perm);
        z
    }

    /// The domain size `n`.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let rank = match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cdf.len() - 1);
        match &self.perm {
            Some(p) => p[rank] as usize,
            None => rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let k = z.sample(&mut rng);
            counts[k] += 1;
        }
        // Rank 0 should dominate: zipf(0.99, n=1000) gives it ~13% mass.
        assert!(counts[0] > 8_000, "rank0={}", counts[0]);
        assert!(counts[0] > counts[500] * 10);
    }

    #[test]
    fn uniform_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u64; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn scrambled_permutes_but_keeps_skew() {
        let plain = Zipf::new(100, 1.2);
        let scr = Zipf::scrambled(100, 1.2, 42);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            counts[scr.sample(&mut rng)] += 1;
        }
        // Same skew: some single key dominates, but it is (almost surely)
        // not key 0 anymore.
        let hot = counts.iter().copied().max().unwrap();
        assert!(hot > 10_000, "hot={hot}");
        let _ = plain;
    }

    #[test]
    fn deterministic_for_a_seed() {
        let z = Zipf::scrambled(64, 0.9, 5);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let xs: Vec<usize> = (0..100).map(|_| z.sample(&mut a)).collect();
        let ys: Vec<usize> = (0..100).map(|_| z.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
