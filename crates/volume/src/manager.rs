//! The volume manager: many virtual volumes over one [`OiRaidStore`],
//! batch-first.
//!
//! # Batching model
//!
//! Requests enter per-shard submission queues (a shard is a slice of the
//! store's chunk space; a record's shard is the chunk its first byte lives
//! on, so all operations on one record always meet in the same shard).
//! Whichever submitting thread acquires a shard's *drain lock* becomes the
//! drainer and serves **everyone's** pending operations — a combining
//! funnel: concurrent submitters to a hot shard merge their work into one
//! store batch instead of contending chunk-by-chunk.
//!
//! Each drain wave (up to `max_wave` operations, tenants interleaved by
//! their QoS weight) is issued to the store as at most **one coalesced read
//! batch plus one coalesced write batch**:
//!
//! * a read that *follows* a write to the same record within the wave is
//!   absorbed — answered from the pending write's bytes with no I/O at all;
//! * the remaining reads execute first via
//!   [`OiRaidStore::read_data_batch`] (they precede any same-record write
//!   in submission order, so they must observe the pre-wave state);
//! * all writes then commit via [`OiRaidStore::write_bytes_batch`], which
//!   coalesces them into one read-modify-write per touched chunk.
//!
//! This preserves per-record program order, so a batched execution is
//! bit-identical to submitting the same operations one at a time (the
//! property tests in `tests/equivalence.rs` check exactly that, including
//! under failed disks and live rebuild windows).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

use blockdev::{BlockDevice, MemDevice};
use oi_raid::{OiRaidStore, StoreError};
use telemetry::{Histogram, Registry};

use crate::tenant::{Tenant, TenantClass, TenantId};

/// Identifies a volume within one [`VolumeManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VolumeId(usize);

impl VolumeId {
    /// The volume's index (creation order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors from the volume layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VolumeError {
    /// The volume id does not name a volume of this manager.
    UnknownVolume {
        /// The offending id.
        volume: usize,
    },
    /// The tenant id does not name a tenant of this manager.
    UnknownTenant {
        /// The offending id.
        tenant: usize,
    },
    /// The record index exceeds the volume's record count.
    RecordOutOfRange {
        /// Requested record.
        record: u64,
        /// Records in the volume.
        records: u64,
    },
    /// A write's payload length does not match the volume's record size.
    WrongRecordSize {
        /// Bytes supplied.
        found: usize,
        /// The volume's record size.
        expected: usize,
    },
    /// The store has too little capacity left for the requested volume.
    CapacityExhausted {
        /// Bytes the volume needs.
        needed: u64,
        /// Bytes still unallocated.
        available: u64,
    },
    /// The underlying store failed.
    Store(StoreError),
}

impl fmt::Display for VolumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownVolume { volume } => write!(f, "unknown volume id {volume}"),
            Self::UnknownTenant { tenant } => write!(f, "unknown tenant id {tenant}"),
            Self::RecordOutOfRange { record, records } => {
                write!(f, "record {record} out of range (volume holds {records})")
            }
            Self::WrongRecordSize { found, expected } => {
                write!(f, "record payload of {found} bytes, volume uses {expected}")
            }
            Self::CapacityExhausted { needed, available } => write!(
                f,
                "volume needs {needed} bytes, store has {available} unallocated"
            ),
            Self::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for VolumeError {}

impl From<StoreError> for VolumeError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

/// One operation against a volume, submitted through
/// [`VolumeManager::submit`].
#[derive(Debug, Clone)]
pub enum Op {
    /// Read one whole record.
    Read {
        /// Target volume.
        volume: VolumeId,
        /// Record index within the volume.
        record: u64,
    },
    /// Overwrite one whole record (payload must be exactly the volume's
    /// record size).
    Write {
        /// Target volume.
        volume: VolumeId,
        /// Record index within the volume.
        record: u64,
        /// The new record contents.
        data: Vec<u8>,
    },
}

/// Per-operation outcome: `Some(bytes)` for reads, `None` for writes.
pub type OpResult = Result<Option<Vec<u8>>, VolumeError>;

/// One named volume: a record array carved out of the store's byte space.
#[derive(Debug)]
struct Volume {
    #[allow(dead_code)]
    name: String,
    tenant: TenantId,
    base: u64,
    record_size: usize,
    records: u64,
}

/// A planned (validated, address-resolved) operation waiting in a shard
/// queue.
struct Pending {
    tenant: usize,
    slot: usize,
    batch: Arc<BatchState>,
    /// Volume-and-record key — same-record ordering within a wave.
    key: (usize, u64),
    /// Absolute byte offset in the store.
    offset: u64,
    len: usize,
    /// `Some` for writes, `None` for reads.
    data: Option<Vec<u8>>,
    /// Root trace id when this request was sampled, else 0. Whichever
    /// thread drains the wave links the wave node back to this root.
    trace: u64,
}

/// Shared completion state of one `submit` call.
struct BatchState {
    inner: Mutex<BatchInner>,
    done: Condvar,
    began: Instant,
}

struct BatchInner {
    results: Vec<Option<OpResult>>,
    remaining: usize,
}

impl BatchState {
    fn new(slots: usize, pending: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(BatchInner {
                results: (0..slots).map(|_| None).collect(),
                remaining: pending,
            }),
            done: Condvar::new(),
            began: Instant::now(),
        })
    }

    fn fill(&self, slot: usize, result: OpResult) {
        let mut inner = self.inner.lock().expect("batch state lock");
        debug_assert!(inner.results[slot].is_none(), "slot filled twice");
        inner.results[slot] = Some(result);
        inner.remaining -= 1;
        if inner.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_complete(&self) -> bool {
        self.inner.lock().expect("batch state lock").remaining == 0
    }

    fn wait(&self) -> Vec<OpResult> {
        let mut inner = self.inner.lock().expect("batch state lock");
        while inner.remaining > 0 {
            inner = self.done.wait(inner).expect("batch state wait");
        }
        inner
            .results
            .iter_mut()
            .map(|r| r.take().expect("all slots filled"))
            .collect()
    }
}

/// One shard: per-tenant FIFO queues plus the combining drain lock.
struct Shard {
    queues: Mutex<Vec<VecDeque<Pending>>>,
    drain: Mutex<()>,
}

/// Maps many virtual volumes onto one [`OiRaidStore`] with per-tenant QoS
/// and a batch-first foreground path (see the module docs for the model).
///
/// All methods take `&self`; the manager is meant to be shared across
/// client threads behind an [`Arc`].
pub struct VolumeManager<B: BlockDevice = MemDevice> {
    store: Arc<OiRaidStore<B>>,
    shards: Vec<Shard>,
    max_wave: usize,
    tenants: RwLock<Vec<Arc<Tenant>>>,
    volumes: RwLock<Vec<Volume>>,
    /// Next unallocated store byte.
    alloc: Mutex<u64>,
    batches: AtomicU64,
    waves: AtomicU64,
    batch_ops: AtomicU64,
}

impl<B: BlockDevice> VolumeManager<B> {
    /// Wraps `store` with `shards` submission shards (clamped to at least
    /// one). Shard count bounds drain concurrency: submitters to different
    /// shards batch independently.
    pub fn new(store: Arc<OiRaidStore<B>>, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            store,
            shards: (0..shards)
                .map(|_| Shard {
                    queues: Mutex::new(Vec::new()),
                    drain: Mutex::new(()),
                })
                .collect(),
            max_wave: 2048,
            tenants: RwLock::new(Vec::new()),
            volumes: RwLock::new(Vec::new()),
            alloc: Mutex::new(0),
            batches: AtomicU64::new(0),
            waves: AtomicU64::new(0),
            batch_ops: AtomicU64::new(0),
        }
    }

    /// Caps operations per drain wave (clamped to at least 1). Larger waves
    /// amortize better; smaller waves bound per-wave memory and tail
    /// latency.
    pub fn set_max_wave(&mut self, max_wave: usize) {
        self.max_wave = max_wave.max(1);
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<OiRaidStore<B>> {
        &self.store
    }

    /// Registers a tenant; its id is stable for the manager's lifetime.
    pub fn add_tenant(&self, name: &str, class: TenantClass) -> TenantId {
        let mut tenants = self.tenants.write().expect("tenants lock");
        let id = TenantId(tenants.len());
        tenants.push(Arc::new(Tenant::new(id.0, name, class)));
        for shard in &self.shards {
            shard
                .queues
                .lock()
                .expect("shard queues lock")
                .push(VecDeque::new());
        }
        id
    }

    /// Creates a volume of `records` fixed-size records for `tenant`,
    /// carved from the next unallocated store bytes.
    ///
    /// # Errors
    ///
    /// [`VolumeError::UnknownTenant`], [`VolumeError::CapacityExhausted`],
    /// or [`VolumeError::WrongRecordSize`] for a zero record size.
    pub fn create_volume(
        &self,
        tenant: TenantId,
        name: &str,
        record_size: usize,
        records: u64,
    ) -> Result<VolumeId, VolumeError> {
        if record_size == 0 {
            return Err(VolumeError::WrongRecordSize {
                found: 0,
                expected: 1,
            });
        }
        if tenant.0 >= self.tenants.read().expect("tenants lock").len() {
            return Err(VolumeError::UnknownTenant { tenant: tenant.0 });
        }
        let needed = record_size as u64 * records;
        let mut alloc = self.alloc.lock().expect("alloc lock");
        let available = self.store.capacity_bytes().saturating_sub(*alloc);
        if needed > available {
            return Err(VolumeError::CapacityExhausted { needed, available });
        }
        let base = *alloc;
        *alloc += needed;
        drop(alloc);
        let mut volumes = self.volumes.write().expect("volumes lock");
        let id = VolumeId(volumes.len());
        volumes.push(Volume {
            name: name.to_string(),
            tenant,
            base,
            record_size,
            records,
        });
        Ok(id)
    }

    /// Resolves an op to `(tenant, key, offset, len)`.
    fn plan(&self, volume: VolumeId, record: u64, write_len: Option<usize>) -> OpPlan {
        let volumes = self.volumes.read().expect("volumes lock");
        let Some(v) = volumes.get(volume.0) else {
            return Err(VolumeError::UnknownVolume { volume: volume.0 });
        };
        if record >= v.records {
            return Err(VolumeError::RecordOutOfRange {
                record,
                records: v.records,
            });
        }
        if let Some(len) = write_len {
            if len != v.record_size {
                return Err(VolumeError::WrongRecordSize {
                    found: len,
                    expected: v.record_size,
                });
            }
        }
        Ok((
            v.tenant.0,
            (volume.0, record),
            v.base + record * v.record_size as u64,
            v.record_size,
        ))
    }

    /// The shard owning the store byte `offset` (the chunk its record
    /// starts on, so every op on one record lands in the same shard).
    fn shard_of(&self, offset: u64) -> usize {
        (offset / self.store.chunk_size() as u64) as usize % self.shards.len()
    }

    /// Submits a group of operations through the batched path and waits for
    /// all of them. Results are returned in submission order; each slot
    /// carries its own [`OpResult`], so one bad op fails alone.
    ///
    /// Per-record program order is preserved within the submission;
    /// operations on *different* records may be reordered relative to each
    /// other (they are concurrent — any interleaving is a valid
    /// serialization).
    pub fn submit(&self, ops: Vec<Op>) -> Vec<OpResult> {
        self.submit_traced(ops).0
    }

    /// [`Self::submit`], additionally returning each slot's root trace id
    /// (0 where the request was not sampled or failed validation). The ids
    /// key into the global trace ring ([`telemetry::traces`]) — with
    /// sampling at 1 (`OI_RAID_TRACE_SAMPLE=1`) every request's causal
    /// tree down to individual device I/Os is reconstructible from them.
    pub fn submit_traced(&self, ops: Vec<Op>) -> (Vec<OpResult>, Vec<u64>) {
        if ops.is_empty() {
            return (Vec::new(), Vec::new());
        }
        // Validate and resolve every op up front; invalid slots complete
        // immediately.
        let mut planned: Vec<(usize, OpSpec)> = Vec::with_capacity(ops.len());
        let mut early: Vec<(usize, VolumeError)> = Vec::new();
        let mut per_tenant: BTreeMap<usize, u64> = BTreeMap::new();
        let mut trace_ids: Vec<u64> = vec![0; ops.len()];
        for (slot, op) in ops.into_iter().enumerate() {
            let (volume, record, data) = match op {
                Op::Read { volume, record } => (volume, record, None),
                Op::Write {
                    volume,
                    record,
                    data,
                } => (volume, record, Some(data)),
            };
            match self.plan(volume, record, data.as_ref().map(Vec::len)) {
                Ok((tenant, key, offset, len)) => {
                    let trace = telemetry::sample_trace();
                    if trace != 0 {
                        telemetry::trace_event(
                            if data.is_some() {
                                telemetry::EventKind::VolumeWrite
                            } else {
                                telemetry::EventKind::VolumeRead
                            },
                            trace,
                            0,
                            volume.0 as u64,
                            record,
                        );
                        trace_ids[slot] = trace;
                    }
                    *per_tenant.entry(tenant).or_insert(0) += 1;
                    planned.push((
                        slot,
                        OpSpec {
                            tenant,
                            key,
                            offset,
                            len,
                            data,
                            trace,
                        },
                    ));
                }
                Err(e) => early.push((slot, e)),
            }
        }
        let slots = planned.len() + early.len();
        let batch = BatchState::new(slots, planned.len());
        {
            let mut inner = batch.inner.lock().expect("batch state lock");
            for (slot, e) in early {
                inner.results[slot] = Some(Err(e));
            }
        }
        // Rate caps: each capped tenant pays for its ops *before* they
        // enter the shard queues — a throttled tenant paces itself without
        // holding any shared resource.
        {
            let tenants = self.tenants.read().expect("tenants lock");
            for (&t, &n) in &per_tenant {
                tenants[t].pay(n);
            }
        }
        // Enqueue, then drain every touched shard. The drain lock makes one
        // thread the combiner for everyone's pending ops, so our ops are
        // served even if another submitter drains them first.
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for (slot, spec) in planned {
            let shard = self.shard_of(spec.offset);
            touched.insert(shard);
            self.shards[shard].queues.lock().expect("shard queues lock")[spec.tenant].push_back(
                Pending {
                    tenant: spec.tenant,
                    slot,
                    batch: Arc::clone(&batch),
                    key: spec.key,
                    offset: spec.offset,
                    len: spec.len,
                    data: spec.data,
                    trace: spec.trace,
                },
            );
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        for shard in touched {
            self.drain_shard(shard, &batch);
            if batch.is_complete() {
                break;
            }
        }
        (batch.wait(), trace_ids)
    }

    /// Becomes the draining combiner for one shard: pulls weighted waves
    /// and issues each as one coalesced store batch, stopping when the
    /// shard is empty or the caller's own batch has completed.
    ///
    /// The early exit bounds servitude — under sustained load a drainer is
    /// never stuck serving other submitters' streams forever — without
    /// stranding anything: when we release the lock, either this shard is
    /// empty or every remaining op's own submitter is still on its way
    /// here (each submitter visits every shard it touched, and only skips
    /// the visit once all its ops are done).
    fn drain_shard(&self, shard: usize, own: &BatchState) {
        let s = &self.shards[shard];
        let _drain = s.drain.lock().expect("shard drain lock");
        while !own.is_complete() {
            let wave = self.take_wave(s);
            if wave.is_empty() {
                return;
            }
            self.waves.fetch_add(1, Ordering::Relaxed);
            self.batch_ops
                .fetch_add(wave.len() as u64, Ordering::Relaxed);
            self.execute_wave(wave);
        }
    }

    /// Pops up to `max_wave` ops from a shard's tenant queues, interleaved
    /// by QoS weight (a weight-w tenant contributes up to w ops per
    /// round-robin cycle while its queue lasts).
    fn take_wave(&self, s: &Shard) -> Vec<Pending> {
        let weights: Vec<u32> = {
            let tenants = self.tenants.read().expect("tenants lock");
            tenants.iter().map(|t| t.class.weight.max(1)).collect()
        };
        let mut queues = s.queues.lock().expect("shard queues lock");
        let mut wave = Vec::new();
        let mut any = true;
        while any && wave.len() < self.max_wave {
            any = false;
            for (t, q) in queues.iter_mut().enumerate() {
                let take =
                    (weights.get(t).copied().unwrap_or(1) as usize).min(self.max_wave - wave.len());
                for _ in 0..take {
                    match q.pop_front() {
                        Some(p) => {
                            wave.push(p);
                            any = true;
                        }
                        None => break,
                    }
                }
                if wave.len() >= self.max_wave {
                    break;
                }
            }
        }
        wave
    }

    /// Executes one wave: absorb reads-after-writes, batch the remaining
    /// reads, batch all writes, complete every slot.
    fn execute_wave(&self, wave: Vec<Pending>) {
        let tenants: Vec<Arc<Tenant>> = {
            let guard = self.tenants.read().expect("tenants lock");
            guard.clone()
        };
        // Fan-in: every sampled request in the wave gets an edge to one
        // shared wave node, and the store batches below execute under that
        // node's context — so a request's tree shows exactly which
        // combined wave served it and what I/O that wave did.
        let wave_node = if wave.iter().any(|p| p.trace != 0) {
            let node = telemetry::alloc_trace_id();
            for (i, p) in wave.iter().enumerate() {
                if p.trace != 0 {
                    telemetry::trace_event(
                        telemetry::EventKind::Wave,
                        node,
                        p.trace,
                        i as u64,
                        wave.len() as u64,
                    );
                }
            }
            node
        } else {
            0
        };
        let _wave_guard = (wave_node != 0).then(|| telemetry::enter_trace(wave_node));
        let cs = self.store.chunk_size() as u64;
        // Pass 1 (submission order): a read that follows a write to the
        // same record is absorbed from the pending write's bytes; earlier
        // reads must see the pre-wave store state.
        let mut last_write: BTreeMap<(usize, u64), usize> = BTreeMap::new();
        let mut absorbed: Vec<(usize, Vec<u8>)> = Vec::new(); // wave idx -> bytes
        let mut pre_reads: Vec<usize> = Vec::new();
        let mut write_order: Vec<usize> = Vec::new();
        for (i, p) in wave.iter().enumerate() {
            if p.data.is_some() {
                last_write.insert(p.key, i);
                write_order.push(i);
            } else if let Some(&w) = last_write.get(&p.key) {
                absorbed.push((i, wave[w].data.clone().expect("write has data")));
            } else {
                pre_reads.push(i);
            }
        }
        // Pass 2: one coalesced chunk-read batch for the pre-reads.
        let mut read_results: BTreeMap<usize, OpResult> = BTreeMap::new();
        if !pre_reads.is_empty() {
            let mut chunk_idxs: Vec<usize> = Vec::new();
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            for &i in &pre_reads {
                let p = &wave[i];
                let first = p.offset / cs;
                let last = (p.offset + p.len as u64 - 1) / cs;
                for c in first..=last {
                    if seen.insert(c as usize) {
                        chunk_idxs.push(c as usize);
                    }
                }
            }
            match self.store.read_data_batch(&chunk_idxs) {
                Ok(chunks) => {
                    let by_idx: BTreeMap<usize, Vec<u8>> =
                        chunk_idxs.into_iter().zip(chunks).collect();
                    for &i in &pre_reads {
                        let p = &wave[i];
                        let mut out = Vec::with_capacity(p.len);
                        let mut pos = p.offset;
                        let end = p.offset + p.len as u64;
                        while pos < end {
                            let c = (pos / cs) as usize;
                            let within = (pos % cs) as usize;
                            let take = ((cs as usize) - within).min((end - pos) as usize);
                            let chunk = &by_idx[&c];
                            out.extend_from_slice(&chunk[within..within + take]);
                            pos += take as u64;
                        }
                        read_results.insert(i, Ok(Some(out)));
                    }
                }
                Err(e) => {
                    for &i in &pre_reads {
                        read_results.insert(i, Err(VolumeError::Store(e.clone())));
                    }
                }
            }
        }
        // Pass 3: one coalesced write batch, in submission order (the store
        // applies overlapping ranges last-wins, matching sequential issue).
        let mut write_result: Result<(), StoreError> = Ok(());
        if !write_order.is_empty() {
            let ranges: Vec<(u64, &[u8])> = write_order
                .iter()
                .map(|&i| {
                    let p = &wave[i];
                    (p.offset, p.data.as_deref().expect("write has data"))
                })
                .collect();
            write_result = self.store.write_bytes_batch(&ranges).map(|_| ());
        }
        // Complete every slot and record per-tenant latency/counters.
        let took = |p: &Pending| p.batch.began.elapsed();
        for (i, p) in wave.iter().enumerate() {
            let tenant = &tenants[p.tenant];
            let result: OpResult = if p.data.is_some() {
                tenant.record_write(took(p));
                match &write_result {
                    Ok(()) => Ok(None),
                    Err(e) => Err(VolumeError::Store(e.clone())),
                }
            } else if let Some(r) = read_results.remove(&i) {
                tenant.record_read(took(p));
                r
            } else {
                // Absorbed read.
                tenant.record_read(took(p));
                tenant.absorbed_reads.fetch_add(1, Ordering::Relaxed);
                let bytes = absorbed
                    .iter()
                    .find(|(j, _)| *j == i)
                    .map(|(_, b)| b.clone())
                    .expect("read is pre-read, absorbed, or batched");
                Ok(Some(bytes))
            };
            p.batch.fill(p.slot, result);
        }
    }

    /// Reads one record through the **unbatched** path (one store call per
    /// op) — the baseline the closed-loop benchmark compares against. QoS
    /// caps and tenant telemetry apply exactly as on the batched path.
    ///
    /// # Errors
    ///
    /// Validation errors as in [`Self::submit`]; store errors pass through.
    pub fn read_record(&self, volume: VolumeId, record: u64) -> Result<Vec<u8>, VolumeError> {
        let (tenant, _, offset, len) = self.plan(volume, record, None)?;
        let trace = telemetry::sample_trace();
        let _guard = (trace != 0).then(|| {
            telemetry::trace_event(
                telemetry::EventKind::VolumeRead,
                trace,
                0,
                volume.0 as u64,
                record,
            );
            telemetry::enter_trace(trace)
        });
        let t = Arc::clone(&self.tenants.read().expect("tenants lock")[tenant]);
        t.pay(1);
        let began = Instant::now();
        let mut buf = vec![0u8; len];
        let result = self.store.read_bytes(offset, &mut buf);
        t.record_read(began.elapsed());
        result.map_err(VolumeError::Store)?;
        Ok(buf)
    }

    /// Writes one record through the **unbatched** path (one store RMW
    /// sequence per op). See [`Self::read_record`].
    ///
    /// # Errors
    ///
    /// Validation errors as in [`Self::submit`]; store errors pass through.
    pub fn write_record(
        &self,
        volume: VolumeId,
        record: u64,
        data: &[u8],
    ) -> Result<(), VolumeError> {
        let (tenant, _, offset, _) = self.plan(volume, record, Some(data.len()))?;
        let trace = telemetry::sample_trace();
        let _guard = (trace != 0).then(|| {
            telemetry::trace_event(
                telemetry::EventKind::VolumeWrite,
                trace,
                0,
                volume.0 as u64,
                record,
            );
            telemetry::enter_trace(trace)
        });
        let t = Arc::clone(&self.tenants.read().expect("tenants lock")[tenant]);
        t.pay(1);
        let began = Instant::now();
        let result = self.store.write_bytes(offset, data);
        t.record_write(began.elapsed());
        result.map_err(VolumeError::Store)
    }

    /// Live handle to a tenant's read-latency histogram (nanoseconds).
    pub fn tenant_read_latency(&self, tenant: TenantId) -> Option<Arc<Histogram>> {
        self.tenants
            .read()
            .expect("tenants lock")
            .get(tenant.0)
            .map(|t| Arc::clone(&t.read_latency))
    }

    /// Live handle to a tenant's write-latency histogram (nanoseconds).
    pub fn tenant_write_latency(&self, tenant: TenantId) -> Option<Arc<Histogram>> {
        self.tenants
            .read()
            .expect("tenants lock")
            .get(tenant.0)
            .map(|t| Arc::clone(&t.write_latency))
    }

    /// Submissions accepted through [`Self::submit`].
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Drain waves issued to the store.
    pub fn waves(&self) -> u64 {
        self.waves.load(Ordering::Relaxed)
    }

    /// Operations that went through the batched path.
    pub fn batch_ops(&self) -> u64 {
        self.batch_ops.load(Ordering::Relaxed)
    }

    /// Registers the volume layer's observable state with a metric
    /// registry as `oi_volume_*` series (snapshot counters + live latency
    /// histograms; call again to refresh the counters).
    pub fn export_metrics(&self, reg: &Registry) {
        reg.gauge("oi_volume_shards", "Submission shards", &[])
            .set(self.shards.len() as i64);
        reg.gauge("oi_volume_volumes", "Volumes carved from the store", &[])
            .set(self.volumes.read().expect("volumes lock").len() as i64);
        for (name, help, value) in [
            (
                "oi_volume_batches_total",
                "Submissions accepted by the batched path",
                self.batches(),
            ),
            (
                "oi_volume_waves_total",
                "Drain waves issued to the store",
                self.waves(),
            ),
            (
                "oi_volume_batch_ops_total",
                "Operations served by the batched path",
                self.batch_ops(),
            ),
        ] {
            reg.counter(name, help, &[]).set(value);
        }
        let tenants = self.tenants.read().expect("tenants lock");
        for t in tenants.iter() {
            let name = t.name.as_str();
            for (metric, help, op, value) in [
                (
                    "oi_volume_requests_total",
                    "Requests served per tenant and op",
                    "read",
                    t.reads.load(Ordering::Relaxed),
                ),
                (
                    "oi_volume_requests_total",
                    "Requests served per tenant and op",
                    "write",
                    t.writes.load(Ordering::Relaxed),
                ),
            ] {
                reg.counter(metric, help, &[("tenant", name), ("op", op)])
                    .set(value);
            }
            for (metric, help, value) in [
                (
                    "oi_volume_absorbed_reads_total",
                    "Reads answered from a pending batched write without I/O",
                    t.absorbed_reads.load(Ordering::Relaxed),
                ),
                (
                    "oi_volume_throttle_waits_total",
                    "Submissions delayed by the tenant's rate cap",
                    t.throttle_waits.load(Ordering::Relaxed),
                ),
                (
                    "oi_volume_throttle_wait_ns_total",
                    "Total time submissions slept for the tenant's rate cap",
                    t.throttle_wait_ns.load(Ordering::Relaxed),
                ),
            ] {
                reg.counter(metric, help, &[("tenant", name)]).set(value);
            }
            reg.register_histogram(
                "oi_volume_request_latency_ns",
                "End-to-end request latency per tenant and op",
                &[("tenant", name), ("op", "read")],
                Arc::clone(&t.read_latency),
            );
            reg.register_histogram(
                "oi_volume_request_latency_ns",
                "End-to-end request latency per tenant and op",
                &[("tenant", name), ("op", "write")],
                Arc::clone(&t.write_latency),
            );
            if let Some(slo) = &t.slo {
                let (rg, rb, wg, wb) = slo.counters();
                for (op, good, bad, snap) in [
                    ("read", rg, rb, slo.snapshot(true)),
                    ("write", wg, wb, slo.snapshot(false)),
                ] {
                    let labels = &[("tenant", name), ("op", op)];
                    reg.register_counter(
                        "oi_slo_good_total",
                        "Requests completing within the tenant's latency objective",
                        labels,
                        good,
                    );
                    reg.register_counter(
                        "oi_slo_bad_total",
                        "Requests completing over the tenant's latency objective",
                        labels,
                        bad,
                    );
                    reg.gauge(
                        "oi_slo_objective_ns",
                        "The tenant's latency objective",
                        labels,
                    )
                    .set(snap.objective_ns.min(i64::MAX as u64) as i64);
                    reg.gauge(
                        "oi_slo_window_good",
                        "Within-objective requests in the burn-rate window",
                        labels,
                    )
                    .set(snap.window_good.min(i64::MAX as u64) as i64);
                    reg.gauge(
                        "oi_slo_window_bad",
                        "Over-objective requests in the burn-rate window",
                        labels,
                    )
                    .set(snap.window_bad.min(i64::MAX as u64) as i64);
                    reg.gauge(
                        "oi_slo_burn_rate_milli",
                        "Windowed bad fraction over error budget, in thousandths",
                        labels,
                    )
                    .set(snap.burn_rate_milli.min(i64::MAX as u64) as i64);
                }
            }
        }
    }

    /// A point-in-time SLO view for one tenant and op kind (`true` =
    /// reads), or `None` if the tenant is unknown or has no SLO policy.
    pub fn slo_snapshot(&self, tenant: TenantId, read: bool) -> Option<crate::slo::SloSnapshot> {
        self.tenants
            .read()
            .expect("tenants lock")
            .get(tenant.0)?
            .slo
            .as_ref()
            .map(|s| s.snapshot(read))
    }
}

/// A validated op before enqueue.
struct OpSpec {
    tenant: usize,
    key: (usize, u64),
    offset: u64,
    len: usize,
    data: Option<Vec<u8>>,
    trace: u64,
}

/// `plan` result alias, for clippy's sake.
type OpPlan = Result<(usize, (usize, u64), u64, usize), VolumeError>;

#[cfg(test)]
mod tests {
    use super::*;
    use oi_raid::OiRaidConfig;

    fn manager(shards: usize) -> VolumeManager {
        let store = Arc::new(OiRaidStore::new(OiRaidConfig::reference(), 16).unwrap());
        VolumeManager::new(store, shards)
    }

    #[test]
    fn create_volume_accounts_capacity_and_validates() {
        let m = manager(4);
        let t = m.add_tenant("a", TenantClass::default());
        assert_eq!(
            m.create_volume(TenantId(9), "x", 8, 1),
            Err(VolumeError::UnknownTenant { tenant: 9 })
        );
        assert!(matches!(
            m.create_volume(t, "x", 0, 1),
            Err(VolumeError::WrongRecordSize { .. })
        ));
        let cap = m.store().capacity_bytes();
        let v = m.create_volume(t, "big", 8, cap / 8).unwrap();
        assert_eq!(v.index(), 0);
        assert!(matches!(
            m.create_volume(t, "overflow", 8, 1),
            Err(VolumeError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn direct_path_roundtrip_and_validation() {
        let m = manager(2);
        let t = m.add_tenant("a", TenantClass::default());
        // Record size 24 straddles the 16-byte chunks.
        let v = m.create_volume(t, "v", 24, 8).unwrap();
        let rec: Vec<u8> = (0..24u8).collect();
        m.write_record(v, 3, &rec).unwrap();
        assert_eq!(m.read_record(v, 3).unwrap(), rec);
        assert_eq!(m.read_record(v, 0).unwrap(), vec![0u8; 24]);
        assert_eq!(
            m.read_record(v, 8),
            Err(VolumeError::RecordOutOfRange {
                record: 8,
                records: 8
            })
        );
        assert_eq!(
            m.write_record(v, 0, &[1, 2, 3]),
            Err(VolumeError::WrongRecordSize {
                found: 3,
                expected: 24
            })
        );
        assert_eq!(
            m.read_record(VolumeId(7), 0),
            Err(VolumeError::UnknownVolume { volume: 7 })
        );
    }

    #[test]
    fn submit_matches_direct_path_bit_for_bit() {
        let batched = manager(3);
        let direct = manager(3);
        let ops_for = |m: &VolumeManager| {
            let t = m.add_tenant("a", TenantClass::default());
            m.create_volume(t, "v", 24, 16).unwrap()
        };
        let vb = ops_for(&batched);
        let vd = ops_for(&direct);
        let rec = |r: u64, tag: u8| -> Vec<u8> { (0..24).map(|i| tag ^ (r as u8) ^ i).collect() };
        // Same op stream down both paths: overlapping records, rewrites.
        let stream: Vec<(u64, u8)> = vec![(0, 1), (5, 2), (0, 3), (11, 4), (5, 5), (15, 6)];
        let mut ops = Vec::new();
        for &(r, tag) in &stream {
            direct.write_record(vd, r, &rec(r, tag)).unwrap();
            ops.push(Op::Write {
                volume: vb,
                record: r,
                data: rec(r, tag),
            });
        }
        for res in batched.submit(ops) {
            assert_eq!(res.unwrap(), None);
        }
        for r in 0..16 {
            assert_eq!(
                batched.read_record(vb, r).unwrap(),
                direct.read_record(vd, r).unwrap(),
                "record {r}"
            );
        }
        assert!(batched.store().check_parity().is_empty());
    }

    #[test]
    fn submit_preserves_per_record_program_order() {
        let m = manager(2);
        let t = m.add_tenant("a", TenantClass::default());
        let v = m.create_volume(t, "v", 16, 4).unwrap();
        // read(0) before any write sees the pre-batch state; read(0) after
        // the second write absorbs the *latest* pending write.
        m.write_record(v, 0, &[7u8; 16]).unwrap();
        let results = m.submit(vec![
            Op::Read {
                volume: v,
                record: 0,
            },
            Op::Write {
                volume: v,
                record: 0,
                data: vec![1u8; 16],
            },
            Op::Write {
                volume: v,
                record: 0,
                data: vec![2u8; 16],
            },
            Op::Read {
                volume: v,
                record: 0,
            },
        ]);
        assert_eq!(results[0].clone().unwrap(), Some(vec![7u8; 16]));
        assert_eq!(results[1].clone().unwrap(), None);
        assert_eq!(results[2].clone().unwrap(), None);
        assert_eq!(results[3].clone().unwrap(), Some(vec![2u8; 16]));
        // The final read was absorbed from the pending write: no extra I/O.
        let tenants = m.tenants.read().unwrap();
        assert_eq!(tenants[0].absorbed_reads.load(Ordering::Relaxed), 1);
        // And the store really holds the last write.
        drop(tenants);
        assert_eq!(m.read_record(v, 0).unwrap(), vec![2u8; 16]);
    }

    #[test]
    fn invalid_slots_fail_alone() {
        let m = manager(2);
        let t = m.add_tenant("a", TenantClass::default());
        let v = m.create_volume(t, "v", 16, 2).unwrap();
        let results = m.submit(vec![
            Op::Write {
                volume: v,
                record: 0,
                data: vec![9u8; 16],
            },
            Op::Read {
                volume: v,
                record: 99,
            },
            Op::Write {
                volume: v,
                record: 1,
                data: vec![1, 2, 3],
            },
            Op::Read {
                volume: v,
                record: 0,
            },
        ]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(VolumeError::RecordOutOfRange { record: 99, .. })
        ));
        assert!(matches!(
            results[2],
            Err(VolumeError::WrongRecordSize { found: 3, .. })
        ));
        assert_eq!(results[3].clone().unwrap(), Some(vec![9u8; 16]));
    }

    #[test]
    fn batched_path_survives_failed_disks() {
        let m = manager(4);
        let t = m.add_tenant("a", TenantClass::default());
        let v = m.create_volume(t, "v", 16, 32).unwrap();
        let seed: Vec<Op> = (0..32)
            .map(|r| Op::Write {
                volume: v,
                record: r,
                data: vec![r as u8 + 1; 16],
            })
            .collect();
        for res in m.submit(seed) {
            res.unwrap();
        }
        m.store().fail_disk(0).unwrap();
        m.store().fail_disk(7).unwrap();
        let mixed: Vec<Op> = (0..32)
            .flat_map(|r| {
                [
                    Op::Write {
                        volume: v,
                        record: r,
                        data: vec![0xA0 | (r as u8 & 0xF); 16],
                    },
                    Op::Read {
                        volume: v,
                        record: r,
                    },
                ]
            })
            .collect();
        let results = m.submit(mixed);
        for (i, res) in results.into_iter().enumerate() {
            let res = res.unwrap();
            if i % 2 == 1 {
                let r = i / 2;
                assert_eq!(res, Some(vec![0xA0 | (r as u8 & 0xF); 16]), "record {r}");
            }
        }
        for r in 0..32 {
            assert_eq!(
                m.read_record(v, r).unwrap(),
                vec![0xA0 | (r as u8 & 0xF); 16]
            );
        }
    }

    #[test]
    fn concurrent_submitters_combine() {
        let store = Arc::new(OiRaidStore::new(OiRaidConfig::reference(), 16).unwrap());
        let m = Arc::new(VolumeManager::new(store, 2));
        let t = m.add_tenant("a", TenantClass::default());
        let v = m.create_volume(t, "v", 16, 64).unwrap();
        let threads: Vec<_> = (0..4u8)
            .map(|w| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let ops: Vec<Op> = (0..16u64)
                        .map(|i| Op::Write {
                            volume: v,
                            record: w as u64 * 16 + i,
                            data: vec![w * 16 + i as u8 + 1; 16],
                        })
                        .collect();
                    for res in m.submit(ops) {
                        res.unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        for r in 0..64u64 {
            assert_eq!(m.read_record(v, r).unwrap(), vec![r as u8 + 1; 16]);
        }
        assert!(m.store().check_parity().is_empty());
        assert_eq!(m.batch_ops(), 64);
    }

    #[test]
    fn metrics_export_has_volume_series() {
        let reg = Registry::new();
        let m = manager(2);
        let t = m.add_tenant("tenant-a", TenantClass::weighted(3));
        let v = m.create_volume(t, "v", 16, 4).unwrap();
        m.write_record(v, 0, &[5u8; 16]).unwrap();
        for res in m.submit(vec![Op::Read {
            volume: v,
            record: 0,
        }]) {
            res.unwrap();
        }
        m.export_metrics(&reg);
        let text = reg.prometheus();
        for series in [
            "oi_volume_shards",
            "oi_volume_batches_total",
            "oi_volume_waves_total",
            "oi_volume_batch_ops_total",
            "oi_volume_requests_total",
            "oi_volume_request_latency_ns",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
        assert!(text.contains("tenant-a"));
    }
}
