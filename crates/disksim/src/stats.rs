//! Result statistics: per-disk counters and latency summaries.

use std::fmt;

use crate::disk::DiskId;
use crate::time::SimTime;

/// Per-disk counters accumulated over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskStats {
    /// The disk.
    pub disk: DiskId,
    /// Total time the disk spent serving requests.
    pub busy: SimTime,
    /// Number of requests served.
    pub requests: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// `busy / makespan` — 1.0 means the disk was the bottleneck throughout.
    pub utilization: f64,
}

/// Latency (or any sample) summary: count, mean, and selected percentiles.
///
/// # Example
///
/// ```
/// use disksim::{SimTime, Summary};
///
/// let samples: Vec<SimTime> = (1..=100).map(SimTime::from_millis).collect();
/// let s = Summary::from_samples(&samples);
/// assert_eq!(s.count, 100);
/// assert_eq!(s.max, SimTime::from_millis(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: SimTime,
    /// Median (p50).
    pub p50: SimTime,
    /// 95th percentile.
    pub p95: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Maximum.
    pub max: SimTime,
}

impl Summary {
    /// Summarises a sample set. Returns an all-zero summary for an empty
    /// input (count 0).
    pub fn from_samples(samples: &[SimTime]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: SimTime::ZERO,
                p50: SimTime::ZERO,
                p95: SimTime::ZERO,
                p99: SimTime::ZERO,
                max: SimTime::ZERO,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let total: u128 = sorted.iter().map(|t| t.as_nanos() as u128).sum();
        let mean = SimTime::from_nanos((total / sorted.len() as u128) as u64);
        Self {
            count: sorted.len(),
            mean,
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
            max: *sorted.last().expect("nonempty"),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Nearest-rank percentile of an already **sorted** sample set.
///
/// Delegates to [`telemetry::exact_percentile_sorted`] — the same
/// implementation the telemetry histograms are property-tested against —
/// so the simulator's summaries and the live histograms cannot drift.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `0.0..=100.0`.
pub fn percentile(sorted: &[SimTime], p: f64) -> SimTime {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let ns: Vec<u64> = sorted.iter().map(|t| t.as_nanos()).collect();
    SimTime::from_nanos(telemetry::exact_percentile_sorted(&ns, p / 100.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<SimTime> = (1..=10).map(ms).collect();
        assert_eq!(percentile(&s, 0.0), ms(1));
        assert_eq!(percentile(&s, 10.0), ms(1));
        assert_eq!(percentile(&s, 50.0), ms(5));
        assert_eq!(percentile(&s, 95.0), ms(10));
        assert_eq!(percentile(&s, 100.0), ms(10));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn summary_of_uniform_samples() {
        let s: Vec<SimTime> = (1..=100).map(ms).collect();
        let sum = Summary::from_samples(&s);
        assert_eq!(sum.count, 100);
        assert_eq!(sum.mean, SimTime::from_micros(50_500));
        assert_eq!(sum.p50, ms(50));
        assert_eq!(sum.p95, ms(95));
        assert_eq!(sum.p99, ms(99));
        assert_eq!(sum.max, ms(100));
    }

    #[test]
    fn summary_empty_is_zero() {
        let sum = Summary::from_samples(&[]);
        assert_eq!(sum.count, 0);
        assert_eq!(sum.mean, SimTime::ZERO);
    }

    #[test]
    fn summary_display() {
        let sum = Summary::from_samples(&[ms(2)]);
        assert!(sum.to_string().contains("n=1"));
    }
}
