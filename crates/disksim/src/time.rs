//! Simulation time as integer nanoseconds — exact, totally ordered, and
//! immune to floating-point accumulation drift in long runs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of simulated time, in nanoseconds.
///
/// ```
/// use disksim::SimTime;
///
/// let t = SimTime::from_secs_f64(1.5);
/// assert_eq!(t.as_nanos(), 1_500_000_000);
/// assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from fractional seconds (rounding to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid sim time {secs} s");
        let ns = secs * 1e9;
        assert!(ns <= u64::MAX as f64, "sim time overflow: {secs} s");
        SimTime(ns.round() as u64)
    }

    /// Integer nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("sim time overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("sim time underflow"))
    }
}

impl fmt::Display for SimTime {
    /// Renders with adaptive human units (ns/us/ms/s).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        let t = SimTime::from_secs_f64(0.25);
        assert_eq!(t.as_nanos(), 250_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 140);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs_f64(1.2).to_string(), "1.200s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_nanos(3),
                SimTime::from_nanos(5)
            ]
        );
    }
}
