//! Disk service model.

use std::fmt;

use crate::time::SimTime;
use crate::AccessKind;

/// Identifier of a disk within one [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskId(pub(crate) usize);

impl DiskId {
    /// The underlying index (disks are numbered densely from 0 in creation
    /// order, so this is usable as an array index).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk{}", self.0)
    }
}

/// Performance/capacity parameters of one disk.
///
/// The service model is deliberately simple and measurable:
/// `service = positioning (if Random) + size / bandwidth`. Positioning
/// lumps seek and rotational latency into one constant, which is the level
/// of detail the recovery-time comparisons need (they are bandwidth- and
/// parallelism-bound, not head-schedule-bound).
///
/// # Example
///
/// ```
/// use disksim::{AccessKind, DiskSpec};
///
/// let spec = DiskSpec::hdd_7200(4 << 40); // 4 TB
/// let t = spec.service_time(1 << 20, AccessKind::Sequential);
/// assert!(t.as_secs_f64() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSpec {
    capacity: u64,
    bandwidth: f64,
    positioning: SimTime,
}

impl DiskSpec {
    /// Creates a spec from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_sec` is not strictly positive and
    /// finite, or `capacity_bytes == 0`.
    pub fn new(capacity_bytes: u64, bandwidth_bytes_per_sec: f64, positioning: SimTime) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        assert!(
            bandwidth_bytes_per_sec.is_finite() && bandwidth_bytes_per_sec > 0.0,
            "bandwidth must be positive"
        );
        Self {
            capacity: capacity_bytes,
            bandwidth: bandwidth_bytes_per_sec,
            positioning,
        }
    }

    /// A 7200 rpm nearline HDD: 100 MB/s sustained, 12.7 ms positioning
    /// (8.5 ms average seek + 4.2 ms half-rotation) — the disk class the
    /// 2016 evaluation era assumed.
    pub fn hdd_7200(capacity_bytes: u64) -> Self {
        Self::new(capacity_bytes, 100e6, SimTime::from_micros(12_700))
    }

    /// A SATA SSD: 400 MB/s, 80 us access overhead. Used by the capacity
    /// sweep to show the recovery-speedup shape is medium-independent.
    pub fn ssd_sata(capacity_bytes: u64) -> Self {
        Self::new(capacity_bytes, 400e6, SimTime::from_micros(80))
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Sustained bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Positioning overhead charged to each [`AccessKind::Random`] request.
    pub fn positioning(&self) -> SimTime {
        self.positioning
    }

    /// Service time for one request of `size` bytes.
    pub fn service_time(&self, size: u64, kind: AccessKind) -> SimTime {
        let transfer = SimTime::from_secs_f64(size as f64 / self.bandwidth);
        match kind {
            AccessKind::Sequential => transfer,
            AccessKind::Random => self.positioning + transfer,
        }
    }

    /// Time to read or write the entire disk sequentially — the floor for
    /// any single-disk rebuild, and the RAID5 baseline recovery time.
    pub fn full_scan_time(&self) -> SimTime {
        self.service_time(self.capacity, AccessKind::Sequential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_components() {
        let spec = DiskSpec::new(1000, 100.0, SimTime::from_millis(10));
        // 500 bytes at 100 B/s = 5 s transfer.
        let seq = spec.service_time(500, AccessKind::Sequential);
        assert_eq!(seq, SimTime::from_secs_f64(5.0));
        let rnd = spec.service_time(500, AccessKind::Random);
        assert_eq!(rnd, SimTime::from_secs_f64(5.0) + SimTime::from_millis(10));
    }

    #[test]
    fn full_scan_is_capacity_over_bandwidth() {
        let spec = DiskSpec::hdd_7200(1_000_000_000); // 1 GB at 100 MB/s = 10 s
        assert_eq!(spec.full_scan_time(), SimTime::from_secs_f64(10.0));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DiskSpec::new(10, 0.0, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DiskSpec::new(0, 1.0, SimTime::ZERO);
    }

    #[test]
    fn disk_id_display() {
        assert_eq!(DiskId(3).to_string(), "disk3");
        assert_eq!(DiskId(3).index(), 3);
    }
}
