//! The discrete-event engine: executes a dependency graph of disk tasks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::disk::{DiskId, DiskSpec};
use crate::stats::DiskStats;
use crate::time::SimTime;
use crate::AccessKind;

/// Identifier of a task within one [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(usize);

impl TaskId {
    /// Dense index of the task (creation order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Default scheduling priority of a task (midpoint of the `u8` range).
pub const DEFAULT_PRIORITY: u8 = 128;

/// Specification of one disk I/O task.
///
/// Built with [`TaskSpec::read`]/[`TaskSpec::write`] plus the chained
/// configurators, then registered via [`Simulation::add_task`].
///
/// ```
/// use disksim::{DiskSpec, Simulation, TaskSpec, SimTime};
///
/// let mut sim = Simulation::new();
/// let d = sim.add_disk(DiskSpec::hdd_7200(1 << 30));
/// let a = sim.add_task(TaskSpec::read(d, 4096).released_at(SimTime::from_millis(5)));
/// let _b = sim.add_task(TaskSpec::write(d, 4096).after(a).tagged(7));
/// ```
#[derive(Debug, Clone)]
pub struct TaskSpec {
    disk: DiskId,
    size: u64,
    kind: AccessKind,
    is_write: bool,
    release: SimTime,
    deps: Vec<TaskId>,
    tag: u64,
    priority: u8,
}

impl TaskSpec {
    /// A read of `size` bytes from `disk` (random access by default).
    pub fn read(disk: DiskId, size: u64) -> Self {
        Self {
            disk,
            size,
            kind: AccessKind::Random,
            is_write: false,
            release: SimTime::ZERO,
            deps: Vec::new(),
            tag: 0,
            priority: DEFAULT_PRIORITY,
        }
    }

    /// A write of `size` bytes to `disk` (random access by default).
    pub fn write(disk: DiskId, size: u64) -> Self {
        Self {
            is_write: true,
            ..Self::read(disk, size)
        }
    }

    /// Marks the access sequential (no positioning charge).
    pub fn sequential(mut self) -> Self {
        self.kind = AccessKind::Sequential;
        self
    }

    /// Sets the earliest start time.
    pub fn released_at(mut self, t: SimTime) -> Self {
        self.release = t;
        self
    }

    /// Adds a dependency: this task starts only after `dep` completes.
    pub fn after(mut self, dep: TaskId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Adds several dependencies.
    pub fn after_all(mut self, deps: impl IntoIterator<Item = TaskId>) -> Self {
        self.deps.extend(deps);
        self
    }

    /// Attaches an opaque tag surfaced in the results (workload generators
    /// use it to classify foreground vs rebuild traffic).
    pub fn tagged(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Sets the scheduling priority (lower value = served first; default
    /// [`DEFAULT_PRIORITY`]). Within a priority level, service is FIFO by
    /// ready time. Background rebuild traffic typically runs at a *higher*
    /// numeric value than foreground I/O so user requests overtake it in
    /// the disk queues.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// The target disk.
    pub fn disk(&self) -> DiskId {
        self.disk
    }

    /// Transfer size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        self.is_write
    }
}

/// Errors from building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A task references a disk that was never added.
    UnknownDisk(usize),
    /// A task depends on a task id not yet created.
    UnknownTask(usize),
    /// The dependency graph has a cycle (or depends on a never-created id),
    /// so some tasks can never start.
    Deadlock {
        /// Number of tasks that never became ready.
        stuck: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownDisk(d) => write!(f, "task references unknown disk {d}"),
            Self::UnknownTask(t) => write!(f, "dependency on unknown task {t}"),
            Self::Deadlock { stuck } => {
                write!(f, "{stuck} task(s) never became ready (dependency cycle)")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug)]
struct TaskState {
    spec: TaskSpec,
    unmet_deps: usize,
    dependents: Vec<usize>,
    ready_at: Option<SimTime>,
    start: Option<SimTime>,
    finish: Option<SimTime>,
}

/// A deterministic discrete-event simulation of a disk array executing a
/// task graph. See the [crate docs](crate) for the model.
#[derive(Debug, Default)]
pub struct Simulation {
    disks: Vec<DiskSpec>,
    tasks: Vec<TaskState>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Disk finished its current task (processed before same-time releases).
    Complete(usize),
    /// A task's release time arrived.
    Release(usize),
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a disk, returning its id.
    pub fn add_disk(&mut self, spec: DiskSpec) -> DiskId {
        self.disks.push(spec);
        DiskId(self.disks.len() - 1)
    }

    /// Number of disks.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// The spec of `disk`.
    ///
    /// # Panics
    ///
    /// Panics if `disk` does not belong to this simulation.
    pub fn disk_spec(&self, disk: DiskId) -> &DiskSpec {
        &self.disks[disk.0]
    }

    /// Registers a task, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the task references an unknown disk or depends on a task id
    /// that has not been created yet (dependencies must point backwards,
    /// which also guarantees the graph is acyclic).
    pub fn add_task(&mut self, spec: TaskSpec) -> TaskId {
        assert!(
            spec.disk.0 < self.disks.len(),
            "task references unknown {}",
            spec.disk
        );
        let id = self.tasks.len();
        for dep in &spec.deps {
            assert!(dep.0 < id, "dependency {} not created yet", dep);
        }
        let unmet = spec.deps.len();
        for dep in spec.deps.clone() {
            self.tasks[dep.0].dependents.push(id);
        }
        self.tasks.push(TaskState {
            spec,
            unmet_deps: unmet,
            dependents: Vec::new(),
            ready_at: None,
            start: None,
            finish: None,
        });
        TaskId(id)
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Runs the simulation to completion and returns the results.
    ///
    /// Deterministic: ties are broken by task id. Consumes the simulation.
    pub fn run(mut self) -> RunResult {
        let n_disks = self.disks.len();
        // Per-disk ready queues (priority, then FIFO by arrival) and busy
        // state.
        let mut ready: Vec<BinaryHeap<Reverse<(u8, u64, usize)>>> =
            vec![BinaryHeap::new(); n_disks];
        let mut ready_seq: u64 = 0;
        let mut busy: Vec<Option<usize>> = vec![None; n_disks];
        let mut busy_time = vec![SimTime::ZERO; n_disks];
        let mut served = vec![0u64; n_disks];
        let mut bytes = vec![0u64; n_disks];

        // Event queue ordered by (time, event): at equal times completions
        // process before releases, then by task id — fully deterministic.
        let mut heap: BinaryHeap<Reverse<(SimTime, Event)>> = BinaryHeap::new();

        // Seed: tasks with no deps get Release events at their release time.
        for i in 0..self.tasks.len() {
            if self.tasks[i].unmet_deps == 0 {
                let t = self.tasks[i].spec.release;
                heap.push(Reverse((t, Event::Release(i))));
            }
        }

        let mut now = SimTime::ZERO;
        let mut completed = 0usize;
        while let Some(Reverse((t, event))) = heap.pop() {
            now = t;
            match event {
                Event::Release(task) => {
                    self.tasks[task].ready_at = Some(now);
                    let d = self.tasks[task].spec.disk.0;
                    ready[d].push(Reverse((self.tasks[task].spec.priority, ready_seq, task)));
                    ready_seq += 1;
                    Self::start_next(
                        &mut self.tasks,
                        &self.disks,
                        d,
                        now,
                        &mut ready,
                        &mut busy,
                        &mut busy_time,
                        &mut served,
                        &mut bytes,
                        &mut heap,
                    );
                }
                Event::Complete(task) => {
                    completed += 1;
                    let d = self.tasks[task].spec.disk.0;
                    busy[d] = None;
                    // Wake dependents.
                    let dependents = std::mem::take(&mut self.tasks[task].dependents);
                    for &dep in &dependents {
                        let st = &mut self.tasks[dep];
                        st.unmet_deps -= 1;
                        if st.unmet_deps == 0 {
                            let rel = st.spec.release.max(now);
                            heap.push(Reverse((rel, Event::Release(dep))));
                        }
                    }
                    self.tasks[task].dependents = dependents;
                    Self::start_next(
                        &mut self.tasks,
                        &self.disks,
                        d,
                        now,
                        &mut ready,
                        &mut busy,
                        &mut busy_time,
                        &mut served,
                        &mut bytes,
                        &mut heap,
                    );
                }
            }
        }

        let stuck = self.tasks.len() - completed;
        let disk_stats = (0..n_disks)
            .map(|d| DiskStats {
                disk: DiskId(d),
                busy: busy_time[d],
                requests: served[d],
                bytes: bytes[d],
                utilization: if now == SimTime::ZERO {
                    0.0
                } else {
                    busy_time[d].as_secs_f64() / now.as_secs_f64()
                },
            })
            .collect();
        RunResult {
            makespan: now,
            tasks: self.tasks,
            disk_stats,
            stuck,
        }
    }

    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn start_next(
        tasks: &mut [TaskState],
        disks: &[DiskSpec],
        d: usize,
        now: SimTime,
        ready: &mut [BinaryHeap<Reverse<(u8, u64, usize)>>],
        busy: &mut [Option<usize>],
        busy_time: &mut [SimTime],
        served: &mut [u64],
        bytes: &mut [u64],
        heap: &mut BinaryHeap<Reverse<(SimTime, Event)>>,
    ) {
        if busy[d].is_some() {
            return;
        }
        let Some(Reverse((_, _, task))) = ready[d].pop() else {
            return;
        };
        let st = &mut tasks[task];
        let service = disks[d].service_time(st.spec.size, st.spec.kind);
        st.start = Some(now);
        st.finish = Some(now + service);
        busy[d] = Some(task);
        busy_time[d] += service;
        served[d] += 1;
        bytes[d] += st.spec.size;
        heap.push(Reverse((now + service, Event::Complete(task))));
    }
}

/// Results of a completed simulation run.
#[derive(Debug)]
pub struct RunResult {
    makespan: SimTime,
    tasks: Vec<TaskState>,
    disk_stats: Vec<DiskStats>,
    stuck: usize,
}

impl RunResult {
    /// Completion time of the last task (time zero if there were no tasks).
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Per-disk statistics, indexed by [`DiskId::index`].
    pub fn disk_stats(&self) -> &[DiskStats] {
        &self.disk_stats
    }

    /// Number of tasks that never ran (nonzero only for cyclic graphs, which
    /// [`Simulation::add_task`] prevents; kept as a safety net).
    pub fn stuck_tasks(&self) -> usize {
        self.stuck
    }

    /// Completion time of `task`, if it ran.
    pub fn finish_time(&self, task: TaskId) -> Option<SimTime> {
        self.tasks.get(task.0).and_then(|t| t.finish)
    }

    /// Start time of `task`, if it ran.
    pub fn start_time(&self, task: TaskId) -> Option<SimTime> {
        self.tasks.get(task.0).and_then(|t| t.start)
    }

    /// Time `task` spent waiting in its disk queue (start − ready), if it
    /// ran. Separates contention from service time in degraded-mode studies.
    pub fn queue_delay(&self, task: TaskId) -> Option<SimTime> {
        let t = self.tasks.get(task.0)?;
        Some(t.start? - t.ready_at?)
    }

    /// Latency of `task` (finish − release), if it ran.
    pub fn latency(&self, task: TaskId) -> Option<SimTime> {
        let t = self.tasks.get(task.0)?;
        Some(t.finish? - t.spec.release)
    }

    /// Latencies of every completed task with tag `tag`, in task order.
    pub fn latencies_tagged(&self, tag: u64) -> Vec<SimTime> {
        self.tasks
            .iter()
            .filter(|t| t.spec.tag == tag)
            .filter_map(|t| Some(t.finish? - t.spec.release))
            .collect()
    }

    /// The maximum per-disk busy time — the rebuild bottleneck measure.
    pub fn max_disk_busy(&self) -> SimTime {
        self.disk_stats
            .iter()
            .map(|s| s.busy)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskSpec {
        // 100 B/s, 1 ms positioning, 1000 B capacity: easy mental math.
        DiskSpec::new(1000, 100.0, SimTime::from_millis(1))
    }

    #[test]
    fn single_task_timing() {
        let mut sim = Simulation::new();
        let d = sim.add_disk(disk());
        let t = sim.add_task(TaskSpec::read(d, 100).sequential());
        let r = sim.run();
        assert_eq!(r.finish_time(t), Some(SimTime::from_secs_f64(1.0)));
        assert_eq!(r.makespan(), SimTime::from_secs_f64(1.0));
        assert_eq!(r.disk_stats()[0].requests, 1);
        assert_eq!(r.disk_stats()[0].bytes, 100);
        assert!((r.disk_stats()[0].utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_queueing_on_one_disk() {
        let mut sim = Simulation::new();
        let d = sim.add_disk(disk());
        let a = sim.add_task(TaskSpec::read(d, 100).sequential());
        let b = sim.add_task(TaskSpec::read(d, 100).sequential());
        let r = sim.run();
        assert_eq!(r.finish_time(a), Some(SimTime::from_secs_f64(1.0)));
        assert_eq!(r.finish_time(b), Some(SimTime::from_secs_f64(2.0)));
    }

    #[test]
    fn parallel_disks_overlap() {
        let mut sim = Simulation::new();
        let d0 = sim.add_disk(disk());
        let d1 = sim.add_disk(disk());
        sim.add_task(TaskSpec::read(d0, 100).sequential());
        sim.add_task(TaskSpec::read(d1, 100).sequential());
        let r = sim.run();
        assert_eq!(r.makespan(), SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn dependency_serializes_across_disks() {
        let mut sim = Simulation::new();
        let d0 = sim.add_disk(disk());
        let d1 = sim.add_disk(disk());
        let a = sim.add_task(TaskSpec::read(d0, 100).sequential());
        let b = sim.add_task(TaskSpec::write(d1, 200).sequential().after(a));
        let r = sim.run();
        assert_eq!(r.start_time(b), Some(SimTime::from_secs_f64(1.0)));
        assert_eq!(r.finish_time(b), Some(SimTime::from_secs_f64(3.0)));
    }

    #[test]
    fn release_time_respected() {
        let mut sim = Simulation::new();
        let d = sim.add_disk(disk());
        let t = sim.add_task(
            TaskSpec::read(d, 100)
                .sequential()
                .released_at(SimTime::from_secs_f64(5.0)),
        );
        let r = sim.run();
        assert_eq!(r.start_time(t), Some(SimTime::from_secs_f64(5.0)));
        // Latency is measured from release: exactly the service time.
        assert_eq!(r.latency(t), Some(SimTime::from_secs_f64(1.0)));
    }

    #[test]
    fn random_access_pays_positioning() {
        let mut sim = Simulation::new();
        let d = sim.add_disk(disk());
        let t = sim.add_task(TaskSpec::read(d, 100));
        let r = sim.run();
        assert_eq!(
            r.finish_time(t),
            Some(SimTime::from_secs_f64(1.0) + SimTime::from_millis(1))
        );
    }

    #[test]
    fn tags_filter_latencies() {
        let mut sim = Simulation::new();
        let d = sim.add_disk(disk());
        sim.add_task(TaskSpec::read(d, 100).sequential().tagged(1));
        sim.add_task(TaskSpec::read(d, 100).sequential().tagged(2));
        sim.add_task(TaskSpec::read(d, 100).sequential().tagged(1));
        let r = sim.run();
        assert_eq!(r.latencies_tagged(1).len(), 2);
        assert_eq!(r.latencies_tagged(2).len(), 1);
        assert_eq!(r.latencies_tagged(9).len(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown disk1")]
    fn unknown_disk_rejected() {
        let mut sim = Simulation::new();
        let _d = sim.add_disk(disk());
        sim.add_task(TaskSpec::read(DiskId(1), 10));
    }

    #[test]
    #[should_panic(expected = "not created yet")]
    fn forward_dependency_rejected() {
        let mut sim = Simulation::new();
        let d = sim.add_disk(disk());
        sim.add_task(TaskSpec::read(d, 10).after(TaskId(5)));
    }

    #[test]
    fn empty_simulation_runs() {
        let sim = Simulation::new();
        let r = sim.run();
        assert_eq!(r.makespan(), SimTime::ZERO);
        assert_eq!(r.stuck_tasks(), 0);
    }

    #[test]
    fn deterministic_ordering_by_id_on_ties() {
        // Two tasks released at the same instant on one disk run in id order.
        let mut sim = Simulation::new();
        let d = sim.add_disk(disk());
        let a = sim.add_task(TaskSpec::read(d, 100).sequential());
        let b = sim.add_task(TaskSpec::read(d, 50).sequential());
        let r = sim.run();
        assert!(r.finish_time(a).unwrap() < r.finish_time(b).unwrap());
    }

    #[test]
    fn priority_overtakes_fifo() {
        // Three tasks ready simultaneously: priority decides queue order
        // once the disk frees up.
        let mut sim = Simulation::new();
        let d = sim.add_disk(disk());
        let bg1 = sim.add_task(TaskSpec::read(d, 100).sequential().with_priority(200));
        let bg2 = sim.add_task(TaskSpec::read(d, 100).sequential().with_priority(200));
        let fg = sim.add_task(TaskSpec::read(d, 100).sequential().with_priority(10));
        let r = sim.run();
        // bg1 seizes the idle disk (non-preemptive); among the *queued*
        // tasks the high-priority fg overtakes bg2.
        assert_eq!(r.finish_time(bg1), Some(SimTime::from_secs_f64(1.0)));
        assert_eq!(r.finish_time(fg), Some(SimTime::from_secs_f64(2.0)));
        assert_eq!(r.finish_time(bg2), Some(SimTime::from_secs_f64(3.0)));
    }

    #[test]
    fn priority_is_non_preemptive() {
        // A running background task is not interrupted; the foreground task
        // waits for it but jumps ahead of queued background work.
        let mut sim = Simulation::new();
        let d = sim.add_disk(disk());
        let bg1 = sim.add_task(TaskSpec::read(d, 100).sequential().with_priority(200)); // starts at 0
        let bg2 = sim.add_task(TaskSpec::read(d, 100).sequential().with_priority(200));
        let fg = sim.add_task(
            TaskSpec::read(d, 100)
                .sequential()
                .with_priority(10)
                .released_at(SimTime::from_millis(500)),
        );
        let r = sim.run();
        // bg1 finishes at 1s (not preempted); fg at 2s; bg2 at 3s.
        assert_eq!(r.finish_time(bg1), Some(SimTime::from_secs_f64(1.0)));
        assert_eq!(r.finish_time(fg), Some(SimTime::from_secs_f64(2.0)));
        assert_eq!(r.finish_time(bg2), Some(SimTime::from_secs_f64(3.0)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random DAG workloads over a few disks: structural invariants
        /// that must hold for any schedule.
        fn build(seed: u64, n_disks: usize, n_tasks: usize) -> (Simulation, Vec<TaskId>) {
            let mut sim = Simulation::new();
            let disks: Vec<DiskId> = (0..n_disks)
                .map(|_| sim.add_disk(DiskSpec::new(1000, 1000.0, SimTime::from_micros(100))))
                .collect();
            let mut s = seed | 1;
            let mut rnd = move || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 33) as usize
            };
            let mut ids = Vec::new();
            for i in 0..n_tasks {
                let mut spec = TaskSpec::read(disks[rnd() % n_disks], (rnd() % 5000 + 1) as u64)
                    .released_at(SimTime::from_micros((rnd() % 10_000) as u64))
                    .with_priority((rnd() % 256) as u8);
                // Up to 2 backward dependencies.
                for _ in 0..rnd() % 3 {
                    if i > 0 {
                        spec = spec.after(ids[rnd() % i]);
                    }
                }
                ids.push(sim.add_task(spec));
            }
            (sim, ids)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn schedules_are_causal_and_complete(seed in any::<u64>()) {
                let (sim, ids) = build(seed, 4, 30);
                let deps: Vec<Vec<TaskId>> = ids.iter().map(|_| Vec::new()).collect();
                let _ = deps;
                let (sim2, _) = build(seed, 4, 30);
                let r = sim.run();
                let r2 = sim2.run();
                prop_assert_eq!(r.stuck_tasks(), 0);
                // Determinism: identical construction => identical outcome.
                prop_assert_eq!(r.makespan(), r2.makespan());
                for &t in &ids {
                    let start = r.start_time(t).expect("ran");
                    let finish = r.finish_time(t).expect("ran");
                    prop_assert!(start <= finish);
                    prop_assert!(finish <= r.makespan());
                }
                // Busy time never exceeds the makespan on any disk.
                for d in r.disk_stats() {
                    prop_assert!(d.busy <= r.makespan());
                    prop_assert!(d.utilization <= 1.0 + 1e-9);
                }
            }

            #[test]
            fn dependencies_precede_dependents(seed in any::<u64>()) {
                // Rebuild the same graph, remembering dependencies, and
                // check finish(dep) <= start(task).
                let mut sim = Simulation::new();
                let disks: Vec<DiskId> = (0..3)
                    .map(|_| sim.add_disk(DiskSpec::new(1000, 1000.0, SimTime::ZERO)))
                    .collect();
                let mut s = seed | 1;
                let mut rnd = move || {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
                    (s >> 33) as usize
                };
                let mut ids: Vec<TaskId> = Vec::new();
                let mut edges: Vec<(TaskId, TaskId)> = Vec::new();
                for i in 0..25 {
                    let mut spec = TaskSpec::write(disks[rnd() % 3], (rnd() % 2000 + 1) as u64);
                    if i > 0 && rnd() % 2 == 0 {
                        let dep = ids[rnd() % i];
                        spec = spec.after(dep);
                        edges.push((dep, TaskId(i)));
                    }
                    ids.push(sim.add_task(spec));
                }
                let r = sim.run();
                for (dep, task) in edges {
                    prop_assert!(
                        r.finish_time(dep).unwrap() <= r.start_time(task).unwrap(),
                        "dep {dep} must finish before {task} starts"
                    );
                }
            }
        }
    }

    #[test]
    fn fan_in_dependency_waits_for_all() {
        let mut sim = Simulation::new();
        let d0 = sim.add_disk(disk());
        let d1 = sim.add_disk(disk());
        let d2 = sim.add_disk(disk());
        let a = sim.add_task(TaskSpec::read(d0, 100).sequential()); // 1 s
        let b = sim.add_task(TaskSpec::read(d1, 300).sequential()); // 3 s
        let c = sim.add_task(TaskSpec::write(d2, 100).sequential().after_all([a, b]));
        let r = sim.run();
        assert_eq!(r.start_time(c), Some(SimTime::from_secs_f64(3.0)));
    }
}
