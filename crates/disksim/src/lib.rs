//! A discrete-event disk-array simulator.
//!
//! The OI-RAID paper's recovery-speed results come from an analytical model
//! backed by array measurements we cannot rerun; this crate is the
//! substitute substrate (see `DESIGN.md` §4): a deterministic discrete-event
//! simulator with per-disk service times and FIFO queueing. Recovery speed in
//! the declustered-RAID design space is bandwidth/parallelism-bound, so a
//! simulator that models who the bottleneck disk is — rather than platter
//! physics — preserves the comparisons the paper makes.
//!
//! # Model
//!
//! * A [`DiskSpec`] gives capacity, sequential bandwidth and a per-request
//!   positioning overhead (seek + rotational) charged to random accesses.
//! * A [`TaskSpec`] is one disk I/O: a disk, a size, an access kind, an
//!   optional release time, and dependencies on other tasks (e.g. a rebuild
//!   write depends on its source reads).
//! * [`Simulation::run`] executes the task graph: each disk serves one task
//!   at a time in ready order (FIFO, deterministic tie-break by task id) and
//!   a task becomes ready when released and all dependencies are complete.
//! * Results report per-task completion/latency and per-disk busy time and
//!   utilisation, from which the experiments derive rebuild makespans and
//!   degraded-mode latencies.
//!
//! # Example
//!
//! ```
//! use disksim::{AccessKind, DiskSpec, Simulation, TaskSpec};
//!
//! let mut sim = Simulation::new();
//! let spec = DiskSpec::hdd_7200(1 << 30); // 1 GiB toy disk
//! let d0 = sim.add_disk(spec.clone());
//! let d1 = sim.add_disk(spec);
//! // Read 64 MiB from d0, then write it to d1.
//! let read = sim.add_task(TaskSpec::read(d0, 64 << 20));
//! let _write = sim.add_task(TaskSpec::write(d1, 64 << 20).after(read));
//! let result = sim.run();
//! assert!(result.makespan() > disksim::SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
mod engine;
mod stats;
mod time;
mod workload;

pub use disk::{DiskId, DiskSpec};
pub use engine::{RunResult, SimError, Simulation, TaskId, TaskSpec, DEFAULT_PRIORITY};
pub use stats::{percentile, DiskStats, Summary};
pub use time::SimTime;
pub use workload::{ArrivalProcess, Workload, WorkloadKind, FOREGROUND_TAG};

/// Access pattern of a task, deciding whether positioning overhead applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Sequential transfer: bandwidth-bound, no positioning charge.
    Sequential,
    /// Random access: positioning overhead plus transfer.
    Random,
}
