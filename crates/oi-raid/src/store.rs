//! A byte-level OI-RAID array: real data, real XOR parity in both layers,
//! real reconstruction. This is the end-to-end proof that the geometry and
//! the codes compose correctly — the integration tests write data, kill
//! three disks, and get every byte back.
//!
//! The store is generic over its backing [`BlockDevice`]: [`MemDevice`]
//! (RAM, the default), [`FileDevice`] (one file per disk, for arrays larger
//! than RAM), or [`FaultInjectingDevice`](blockdev::FaultInjectingDevice)
//! (seeded fault/latency injection for robustness tests and rebuild
//! experiments). Recovery runs either through the legacy whole-array decode
//! fixpoint ([`OiRaidStore::rebuild_disk`]) or through the plan-driven
//! executor in [`crate::rebuild`], which drains all surviving disks in
//! parallel.
//!
//! The store is **online**: every I/O entry point takes `&self` (devices
//! are interior-mutable), reads *and writes* keep working while disks are
//! failed or a rebuild is in flight, and a rebuild window (see
//! [`crate::online`]) keeps mid-rebuild chunks reading as missing until
//! they are written back. Degraded writes reconstruct the old value under
//! the update lock, apply the XOR delta to every *available* member of the
//! update set, and leave the missing members to the rebuilder — the parity
//! relations then imply the *new* values, so nothing is lost.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use blockdev::{
    crash_point, write_chunk_retrying, BlockDevice, DeviceError, FileDevice, FlushPolicy, Journal,
    MemDevice, MemberWrite, RetryCounters, RetryPolicy, RetryReader, RetryStats,
};
use ecc::{ErasureCode, Raid6, XorParity};
use gf::Gf256;
use layout::{ChunkAddr, Layout, LayoutError};
use telemetry::{Histogram, Registry};

use crate::array::OiRaid;
use crate::bufpool::BufPool;
use crate::config::OiRaidConfig;
use crate::geometry::{Geometry, PayloadPos};
use crate::observe::RebuildObserver;
use crate::online::{OnlineState, Region};
use crate::qos::{QosConfig, QosCounters, QosState};

/// Errors from the byte-level store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A data index is out of range.
    IndexOutOfRange {
        /// The offending logical index.
        index: usize,
        /// Number of data chunks.
        capacity: usize,
    },
    /// A write buffer has the wrong length.
    WrongChunkSize {
        /// Bytes supplied.
        found: usize,
        /// Chunk size of the store.
        expected: usize,
    },
    /// The operation needs a disk that is currently failed.
    DiskFailed {
        /// The failed disk.
        disk: usize,
    },
    /// A disk index is out of range.
    DiskOutOfRange {
        /// The offending disk index.
        disk: usize,
    },
    /// The current failure pattern is unrecoverable.
    DataLoss,
    /// A backend device reported an error (injected fault, I/O failure, or
    /// a geometry mismatch at construction).
    Device {
        /// The disk whose device errored.
        disk: usize,
        /// The underlying device error.
        error: DeviceError,
    },
    /// A layout-level query rejected the operation (e.g. the update set of
    /// a parity address).
    Layout {
        /// The underlying layout error.
        error: LayoutError,
    },
    /// The write-ahead journal failed (append, flush, or truncate) — the
    /// update was not made durable and no member was written.
    Journal {
        /// The underlying I/O error kind.
        kind: std::io::ErrorKind,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IndexOutOfRange { index, capacity } => {
                write!(f, "data index {index} out of range ({capacity} chunks)")
            }
            Self::WrongChunkSize { found, expected } => {
                write!(f, "chunk has {found} bytes, store uses {expected}")
            }
            Self::DiskFailed { disk } => write!(f, "disk {disk} is failed"),
            Self::DiskOutOfRange { disk } => write!(f, "disk {disk} out of range"),
            Self::DataLoss => write!(f, "failure pattern is unrecoverable"),
            Self::Device { disk, error } => write!(f, "device {disk}: {error}"),
            Self::Layout { error } => write!(f, "layout: {error}"),
            Self::Journal { message, .. } => write!(f, "journal: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What one [`OiRaidStore::scrub`] pass found and fixed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Chunks probed on online disks (latent pass).
    pub scanned: u64,
    /// Silently-corrupted chunks repaired from the redundancy.
    pub repaired_corruption: Vec<ChunkAddr>,
    /// Latent sector errors (unreadable after retries) re-derived through
    /// alternate read sets and repaired by rewriting in place.
    pub repaired_latent: Vec<ChunkAddr>,
    /// Unreadable chunks the scrub could not repair (no decodable read
    /// set, or the rewrite failed) — left for rebuild or operator action.
    pub unrecoverable: Vec<ChunkAddr>,
    /// Read/write attempts retried after transient faults during the pass.
    pub retries: u64,
    /// Wall-clock time of the whole pass.
    pub wall: Duration,
}

impl ScrubReport {
    /// Whether the pass found nothing wrong (no repairs, nothing
    /// unrecoverable).
    pub fn is_clean(&self) -> bool {
        self.repaired_corruption.is_empty()
            && self.repaired_latent.is_empty()
            && self.unrecoverable.is_empty()
    }
}

impl fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scrub: {} chunks scanned in {:?}, {} corruption repairs, \
             {} latent repairs, {} unrecoverable, {} retries",
            self.scanned,
            self.wall,
            self.repaired_corruption.len(),
            self.repaired_latent.len(),
            self.unrecoverable.len(),
            self.retries,
        )
    }
}

/// Store-level telemetry: foreground and degraded I/O visibility.
///
/// Every [`OiRaidStore`] owns one. All foreground requests
/// ([`OiRaidStore::read_data`] / [`OiRaidStore::write_data`] and the byte
/// paths) record per-class latency; requests that had to reconstruct
/// through the redundancy additionally bump the degraded counters. The
/// foreground histograms are what experiment E17 reads its p99 from.
#[derive(Debug, Default)]
pub struct StoreTelemetry {
    degraded_reads: AtomicU64,
    degraded_latency: Arc<Histogram>,
    degraded_writes: AtomicU64,
    degraded_write_latency: Arc<Histogram>,
    foreground_reads: AtomicU64,
    foreground_read_latency: Arc<Histogram>,
    foreground_writes: AtomicU64,
    foreground_write_latency: Arc<Histogram>,
    batch_read_requests: AtomicU64,
    batch_read_chunks: AtomicU64,
    batch_write_requests: AtomicU64,
    batch_write_chunks: AtomicU64,
}

impl Clone for StoreTelemetry {
    /// Cloned stores start with fresh telemetry — counters describe one
    /// store instance's history, not its lineage.
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl StoreTelemetry {
    /// Reads served by reconstruction because the chunk's disk was failed.
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads.load(Ordering::Relaxed)
    }

    /// End-to-end latency of degraded reads, in nanoseconds.
    pub fn degraded_read_latency(&self) -> Arc<Histogram> {
        Arc::clone(&self.degraded_latency)
    }

    /// Writes that found part of their update set unavailable and went
    /// through the degraded (reconstruct + partial-patch) path.
    pub fn degraded_writes(&self) -> u64 {
        self.degraded_writes.load(Ordering::Relaxed)
    }

    /// End-to-end latency of degraded writes, in nanoseconds.
    pub fn degraded_write_latency(&self) -> Arc<Histogram> {
        Arc::clone(&self.degraded_write_latency)
    }

    /// All foreground chunk reads served (healthy and degraded).
    pub fn foreground_reads(&self) -> u64 {
        self.foreground_reads.load(Ordering::Relaxed)
    }

    /// End-to-end foreground read latency, in nanoseconds.
    pub fn foreground_read_latency(&self) -> Arc<Histogram> {
        Arc::clone(&self.foreground_read_latency)
    }

    /// All foreground chunk writes served (healthy and degraded).
    pub fn foreground_writes(&self) -> u64 {
        self.foreground_writes.load(Ordering::Relaxed)
    }

    /// End-to-end foreground write latency, in nanoseconds.
    pub fn foreground_write_latency(&self) -> Arc<Histogram> {
        Arc::clone(&self.foreground_write_latency)
    }

    fn record(&self, took: Duration) {
        self.degraded_reads.fetch_add(1, Ordering::Relaxed);
        self.degraded_latency.record_duration(took);
    }

    fn record_degraded_write(&self, took: Duration) {
        self.degraded_writes.fetch_add(1, Ordering::Relaxed);
        self.degraded_write_latency.record_duration(took);
    }

    fn record_foreground_read(&self, took: Duration) {
        self.foreground_reads.fetch_add(1, Ordering::Relaxed);
        self.foreground_read_latency.record_duration(took);
    }

    fn record_foreground_write(&self, took: Duration) {
        self.foreground_writes.fetch_add(1, Ordering::Relaxed);
        self.foreground_write_latency.record_duration(took);
    }

    /// Logical read requests submitted through
    /// [`OiRaidStore::read_data_batch`].
    pub fn batch_read_requests(&self) -> u64 {
        self.batch_read_requests.load(Ordering::Relaxed)
    }

    /// Distinct chunks actually fetched for those batched reads — the gap
    /// to [`Self::batch_read_requests`] is the dedup win.
    pub fn batch_read_chunks(&self) -> u64 {
        self.batch_read_chunks.load(Ordering::Relaxed)
    }

    /// Logical byte-range requests submitted through
    /// [`OiRaidStore::write_bytes_batch`].
    pub fn batch_write_requests(&self) -> u64 {
        self.batch_write_requests.load(Ordering::Relaxed)
    }

    /// Distinct chunk read-modify-writes performed for those batched
    /// writes — the gap to [`Self::batch_write_requests`] is the
    /// coalescing win.
    pub fn batch_write_chunks(&self) -> u64 {
        self.batch_write_chunks.load(Ordering::Relaxed)
    }

    fn record_batch_read(&self, requests: u64, chunks: u64) {
        self.batch_read_requests
            .fetch_add(requests, Ordering::Relaxed);
        self.batch_read_chunks.fetch_add(chunks, Ordering::Relaxed);
    }

    fn record_batch_write(&self, stats: BatchStats) {
        self.batch_write_requests
            .fetch_add(stats.requests as u64, Ordering::Relaxed);
        self.batch_write_chunks
            .fetch_add(stats.chunks as u64, Ordering::Relaxed);
    }
}

/// Aggregate outcome of one [`OiRaidStore::write_bytes_batch`] submission:
/// how many logical byte-range requests collapsed into how many physical
/// chunk read-modify-writes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Logical byte-range requests submitted.
    pub requests: usize,
    /// Distinct chunks touched (read-modify-write cycles performed).
    pub chunks: usize,
}

/// Upper bound on chunks per batched-write commit group: caps the region
/// lock footprint and in-flight scratch while still amortizing parity
/// read-modify-writes across the group. A journal-attached store widens
/// this to the whole batch so one coalesced volume wave costs exactly one
/// journal flush (see [`OiRaidStore::write_bytes_batch`]).
const MAX_WRITE_GROUP: usize = 32;

fn journal_err(e: std::io::Error) -> StoreError {
    StoreError::Journal {
        kind: e.kind(),
        message: e.to_string(),
    }
}

/// Chunk credits between mid-round rebuild checkpoints
/// (`OI_RAID_CKPT_INTERVAL`, default 128).
fn ckpt_interval_from_env() -> u64 {
    std::env::var("OI_RAID_CKPT_INTERVAL")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(128)
}

/// One touched chunk in a batched write: its data index and the
/// `(offset-within-chunk, bytes)` patches targeting it, in submission order.
type ChunkPatches<'a> = (usize, Vec<(usize, &'a [u8])>);

/// One member's computed new value awaiting commit: `(address, absolute
/// new bytes, is-data-chunk)` — data chunks become window-valid at commit,
/// parity chunks do not.
type MemberNew = (ChunkAddr, Vec<u8>, bool);

/// An OI-RAID array storing real bytes on pluggable block devices.
///
/// Writes maintain both parity layers incrementally (1 data + 3 parity chunk
/// writes — the update-optimal path); reads reconstruct transparently while
/// disks are failed; writes against failed disks take the degraded path
/// (reconstruct old value, patch the surviving members);
/// [`OiRaidStore::rebuild_disk`] performs actual recovery. All I/O entry
/// points take `&self` and are safe to call concurrently — including while
/// [`OiRaidStore::rebuild`] runs on another thread.
///
/// # Example
///
/// ```
/// use oi_raid::{OiRaidConfig, OiRaidStore};
///
/// let store = OiRaidStore::new(OiRaidConfig::reference(), 64).unwrap();
/// store.write_data(0, &[7u8; 64]).unwrap();
/// store.fail_disk(store.locate(0).disk).unwrap();
/// // Degraded read reconstructs through the redundancy:
/// assert_eq!(store.read_data(0).unwrap(), vec![7u8; 64]);
/// // Degraded write: the lost chunk's new value is implied by the
/// // updated parities and materialises on rebuild.
/// store.write_data(0, &[9u8; 64]).unwrap();
/// assert_eq!(store.read_data(0).unwrap(), vec![9u8; 64]);
/// ```
#[derive(Debug)]
pub struct OiRaidStore<B: BlockDevice = MemDevice> {
    array: OiRaid,
    chunk_size: usize,
    /// One device per disk; failed disks are failed *devices*.
    devices: Vec<B>,
    telem: StoreTelemetry,
    /// Retry policy for rebuild/scrub device I/O. Behind a lock so it can
    /// be swapped through `&self` during a live benchmark or rebuild.
    retry: Mutex<RetryPolicy>,
    /// Rebuild-window availability + dirty tracking for online rebuilds.
    online: OnlineState,
    /// Foreground/rebuild bandwidth arbitration.
    qos: QosState,
    /// Pool-size override for [`RebuildMode::Dag`](crate::RebuildMode::Dag)
    /// rounds; `usize::MAX` is the "unset" sentinel (= size the pool from
    /// the plan's queue count).
    dag_workers: AtomicUsize,
    /// Recycled chunk-sized scratch buffers for the RMW delta/parity legs.
    pool: BufPool,
    /// Write-ahead parity journal: when attached, every multi-member
    /// update logs its absolute member new-values as one intent record and
    /// group-commits it before any device write (see `commit_members`).
    durable: Option<Arc<DurableState>>,
    /// Rebuild checkpoint policy: when set, the rebuild engine serializes
    /// its valid-set every `interval` chunk credits (and each round) so a
    /// restarted process can resume instead of starting over.
    ckpt: Mutex<Option<CheckpointPolicy>>,
}

/// Journal handle plus the recovery counters from the open that created it.
#[derive(Debug)]
struct DurableState {
    journal: Journal,
    /// When member devices are flushed relative to applied markers: the
    /// process-crash vs power-loss durability knob (see [`FlushPolicy`]).
    policy: FlushPolicy,
    /// Intents redone at `open_durable` (0 for a fresh store).
    replayed: AtomicU64,
    /// Torn journal tails truncated at `open_durable`.
    rolled_back: AtomicU64,
    /// Corrupt mid-log regions skipped during recovery.
    skipped: AtomicU64,
    /// `FlushPolicy::Timed` bookkeeping: applied markers deferred until
    /// the covering member flush completes.
    pending: Mutex<PendingFlush>,
    /// Member-flush counters and histograms (`oi_flush_*`).
    flush_stats: FlushStats,
}

impl DurableState {
    fn new(journal: Journal, policy: FlushPolicy) -> Self {
        Self {
            journal,
            policy,
            replayed: AtomicU64::new(0),
            rolled_back: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            pending: Mutex::new(PendingFlush::new()),
            flush_stats: FlushStats::default(),
        }
    }
}

/// Applied markers waiting for their covering member flush under
/// [`FlushPolicy::Timed`]: the high-water mark of sequence numbers whose
/// member writes have completed but not yet been flushed, plus the disks
/// those writes dirtied.
#[derive(Debug)]
struct PendingFlush {
    /// Intent sequence numbers whose applied markers are deferred.
    seqs: Vec<u64>,
    /// Disks dirtied by those intents' member writes.
    dirty: BTreeSet<usize>,
    /// When the last flush cycle started (deadline baseline).
    last_flush: Instant,
}

impl PendingFlush {
    fn new() -> Self {
        Self {
            seqs: Vec::new(),
            dirty: BTreeSet::new(),
            last_flush: Instant::now(),
        }
    }
}

/// Counters a store exports as `oi_flush_*` metrics.
#[derive(Debug)]
struct FlushStats {
    /// Member-flush barriers performed (one per wave or timed cycle).
    waves: AtomicU64,
    /// Individual device flushes issued across all barriers.
    devices: AtomicU64,
    /// Devices flushed per barrier (the flush batch size).
    batch: Arc<Histogram>,
    /// Wall time a commit stalled behind one barrier, in nanoseconds.
    stall: Arc<Histogram>,
}

impl Default for FlushStats {
    fn default() -> Self {
        Self {
            waves: AtomicU64::new(0),
            devices: AtomicU64::new(0),
            batch: Arc::new(Histogram::new()),
            stall: Arc::new(Histogram::new()),
        }
    }
}

/// Handle to the background flusher thread of a [`FlushPolicy::Timed`]
/// store (see [`OiRaidStore::spawn_flusher`]). Dropping it stops the
/// thread after one final flush cycle.
#[derive(Debug)]
pub struct FlusherHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for FlusherHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Where and how often the rebuild engine checkpoints (see
/// [`OiRaidStore::set_checkpoint_policy`]).
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (written atomically via temp + rename).
    pub path: std::path::PathBuf,
    /// Chunk credits between mid-round checkpoints; each round boundary
    /// also checkpoints regardless.
    pub interval: u64,
}

impl<B: BlockDevice + Clone> Clone for OiRaidStore<B> {
    /// Clones the array geometry, devices, and policies. Telemetry starts
    /// fresh (counters describe one store instance's history) and the
    /// scratch pool starts empty.
    fn clone(&self) -> Self {
        Self {
            array: self.array.clone(),
            chunk_size: self.chunk_size,
            devices: self.devices.clone(),
            telem: self.telem.clone(),
            retry: Mutex::new(self.retry_policy()),
            online: self.online.clone(),
            qos: self.qos.clone(),
            dag_workers: AtomicUsize::new(self.dag_workers.load(Ordering::Relaxed)),
            pool: BufPool::new(self.chunk_size),
            durable: self.durable.clone(),
            ckpt: Mutex::new(self.ckpt.lock().expect("ckpt lock").clone()),
        }
    }
}

impl OiRaidStore<MemDevice> {
    /// Creates a zero-filled memory-backed store with `chunk_size` bytes
    /// per chunk.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from [`OiRaid::new`]; fails on
    /// `chunk_size == 0` via [`StoreError::WrongChunkSize`].
    pub fn new(cfg: OiRaidConfig, chunk_size: usize) -> Result<Self, StoreError> {
        if chunk_size == 0 {
            return Err(StoreError::WrongChunkSize {
                found: 0,
                expected: 1,
            });
        }
        let array = OiRaid::new(cfg).expect("validated config constructs");
        let devices = MemDevice::array(chunk_size, array.chunks_per_disk(), array.disks());
        Ok(Self {
            array,
            chunk_size,
            devices,
            telem: StoreTelemetry::default(),
            retry: Mutex::new(RetryPolicy::default()),
            online: OnlineState::default(),
            qos: QosState::new(QosConfig::from_env()),
            dag_workers: AtomicUsize::new(usize::MAX),
            pool: BufPool::new(chunk_size),
            durable: None,
            ckpt: Mutex::new(None),
        })
    }
}

impl OiRaidStore<FileDevice> {
    /// Creates a zero-filled file-backed store: one `disk-NNN.img` file per
    /// disk under `dir` (created if absent). Arrays larger than RAM work;
    /// contents persist until the files are deleted.
    ///
    /// # Errors
    ///
    /// [`StoreError::WrongChunkSize`] for `chunk_size == 0`,
    /// [`StoreError::Device`] on filesystem errors.
    pub fn create_in_dir(
        cfg: OiRaidConfig,
        chunk_size: usize,
        dir: impl AsRef<Path>,
    ) -> Result<Self, StoreError> {
        if chunk_size == 0 {
            return Err(StoreError::WrongChunkSize {
                found: 0,
                expected: 1,
            });
        }
        let array = OiRaid::new(cfg).expect("validated config constructs");
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Device {
            disk: 0,
            error: DeviceError::Io {
                kind: e.kind(),
                message: e.to_string(),
            },
        })?;
        let devices = (0..array.disks())
            .map(|d| {
                FileDevice::create(
                    dir.join(format!("disk-{d:03}.img")),
                    chunk_size,
                    array.chunks_per_disk(),
                )
                .map_err(|error| StoreError::Device { disk: d, error })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            array,
            chunk_size,
            devices,
            telem: StoreTelemetry::default(),
            retry: Mutex::new(RetryPolicy::default()),
            online: OnlineState::default(),
            qos: QosState::new(QosConfig::from_env()),
            dag_workers: AtomicUsize::new(usize::MAX),
            pool: BufPool::new(chunk_size),
            durable: None,
            ckpt: Mutex::new(None),
        })
    }

    /// Creates a *crash-consistent* file-backed store under `dir`: device
    /// files as [`Self::create_in_dir`], plus a write-ahead parity journal
    /// (`journal.log`) threaded through every multi-member update and a
    /// rebuild checkpoint policy (`rebuild.ckpt`, interval from
    /// `OI_RAID_CKPT_INTERVAL`, default 128 chunk credits).
    ///
    /// Use [`Self::open_durable`] to reopen the same directory after a
    /// crash or clean shutdown.
    ///
    /// The member-flush policy comes from `OI_RAID_FLUSH_POLICY`
    /// (default [`FlushPolicy::Never`] — process-crash durability); use
    /// [`Self::create_durable_with`] to pass one explicitly.
    ///
    /// # Errors
    ///
    /// As [`Self::create_in_dir`], plus [`StoreError::Journal`] if the
    /// journal file cannot be created.
    pub fn create_durable(
        cfg: OiRaidConfig,
        chunk_size: usize,
        dir: impl AsRef<Path>,
    ) -> Result<Self, StoreError> {
        Self::create_durable_with(cfg, chunk_size, dir, FlushPolicy::from_env())
    }

    /// [`Self::create_durable`] with an explicit [`FlushPolicy`] instead
    /// of the environment default.
    pub fn create_durable_with(
        cfg: OiRaidConfig,
        chunk_size: usize,
        dir: impl AsRef<Path>,
        policy: FlushPolicy,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        let store = Self::create_in_dir(cfg, chunk_size, dir)?;
        store.into_durable_created(dir, policy)
    }

    /// Reopens a durable store created by [`Self::create_durable`] —
    /// the crash-recovery path. Device files are opened *without*
    /// truncation, the journal is scanned, committed-but-unapplied intents
    /// are redone onto the devices (absolute values, so replay is
    /// idempotent), torn tails are rolled back, and the journal is reset.
    /// A [`telemetry::EventKind::JournalReplay`] flight event records the
    /// counts; `oi_journal_replayed_total` / `oi_journal_rolled_back_total`
    /// export them.
    ///
    /// All devices come back *healthy*: disk-failure state is not
    /// persistent. Callers tracking failed disks across the crash must
    /// re-fail the ones that are genuinely dead (healing later swaps in a
    /// blank replacement) and may then [`Self::resume_rebuild`] from the
    /// checkpoint. Do *not* re-fail a disk whose device file survived the
    /// crash intact mid-rebuild — `resume_rebuild` reopens the rebuild
    /// window from the checkpoint and keeps its restored chunks.
    ///
    /// # Errors
    ///
    /// [`StoreError::Device`] if any device file is missing or has the
    /// wrong size, [`StoreError::Journal`] on journal I/O errors.
    ///
    /// The member-flush policy comes from `OI_RAID_FLUSH_POLICY` (default
    /// [`FlushPolicy::Never`]); use [`Self::open_durable_with`] to pass
    /// one explicitly.
    pub fn open_durable(
        cfg: OiRaidConfig,
        chunk_size: usize,
        dir: impl AsRef<Path>,
    ) -> Result<Self, StoreError> {
        Self::open_durable_with(cfg, chunk_size, dir, FlushPolicy::from_env())
    }

    /// [`Self::open_durable`] with an explicit [`FlushPolicy`] instead of
    /// the environment default.
    pub fn open_durable_with(
        cfg: OiRaidConfig,
        chunk_size: usize,
        dir: impl AsRef<Path>,
        policy: FlushPolicy,
    ) -> Result<Self, StoreError> {
        if chunk_size == 0 {
            return Err(StoreError::WrongChunkSize {
                found: 0,
                expected: 1,
            });
        }
        let dir = dir.as_ref();
        let array = OiRaid::new(cfg.clone()).expect("validated config constructs");
        let devices = (0..array.disks())
            .map(|d| {
                FileDevice::open(
                    dir.join(format!("disk-{d:03}.img")),
                    chunk_size,
                    array.chunks_per_disk(),
                )
                .map_err(|error| StoreError::Device { disk: d, error })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::open_durable_on(cfg, chunk_size, devices, dir, policy)
    }
}

impl<B: BlockDevice> OiRaidStore<B> {
    /// Wraps caller-provided devices (one per disk, in disk order). Devices
    /// must all use `chunk_size`-byte chunks and hold exactly
    /// `chunks_per_disk` chunks.
    ///
    /// # Errors
    ///
    /// [`StoreError::Device`] with [`DeviceError::WrongBufferSize`] /
    /// [`DeviceError::OutOfRange`] on geometry mismatches,
    /// [`StoreError::DiskOutOfRange`] when the device count differs from
    /// the array's disk count.
    pub fn with_devices(
        cfg: OiRaidConfig,
        chunk_size: usize,
        devices: Vec<B>,
    ) -> Result<Self, StoreError> {
        if chunk_size == 0 {
            return Err(StoreError::WrongChunkSize {
                found: 0,
                expected: 1,
            });
        }
        let array = OiRaid::new(cfg).expect("validated config constructs");
        if devices.len() != array.disks() {
            return Err(StoreError::DiskOutOfRange {
                disk: devices.len(),
            });
        }
        for (d, dev) in devices.iter().enumerate() {
            if dev.chunk_size() != chunk_size {
                return Err(StoreError::Device {
                    disk: d,
                    error: DeviceError::WrongBufferSize {
                        found: dev.chunk_size(),
                        expected: chunk_size,
                    },
                });
            }
            if dev.chunks() != array.chunks_per_disk() {
                return Err(StoreError::Device {
                    disk: d,
                    error: DeviceError::OutOfRange {
                        chunk: dev.chunks(),
                        chunks: array.chunks_per_disk(),
                    },
                });
            }
        }
        Ok(Self {
            array,
            chunk_size,
            devices,
            telem: StoreTelemetry::default(),
            retry: Mutex::new(RetryPolicy::default()),
            online: OnlineState::default(),
            qos: QosState::new(QosConfig::from_env()),
            dag_workers: AtomicUsize::new(usize::MAX),
            pool: BufPool::new(chunk_size),
            durable: None,
            ckpt: Mutex::new(None),
        })
    }

    /// The underlying array.
    pub fn array(&self) -> &OiRaid {
        &self.array
    }

    /// The backing devices, in disk order (counters, fault state).
    pub fn devices(&self) -> &[B] {
        &self.devices
    }

    pub(crate) fn online(&self) -> &OnlineState {
        &self.online
    }

    pub(crate) fn qos(&self) -> &QosState {
        &self.qos
    }

    /// The current rebuild-bandwidth policy.
    pub fn qos_config(&self) -> QosConfig {
        self.qos.config()
    }

    /// Replaces the rebuild-bandwidth policy (rate cap, burst size,
    /// foreground-activity window). Takes effect on the next rebuild
    /// batch, including mid-rebuild.
    pub fn set_qos(&self, cfg: QosConfig) {
        self.qos.set_config(cfg);
    }

    /// Cumulative rebuild-throttle counters for this store instance.
    pub fn qos_counters(&self) -> QosCounters {
        self.qos.counters()
    }

    /// Bytes per chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The retry policy rebuild and scrub use for device I/O.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.lock().expect("retry policy lock")
    }

    /// Replaces the retry policy for subsequent rebuilds and scrubs (e.g.
    /// `RetryPolicy::none()` to fail fast, or a wider budget for flaky
    /// media). Takes `&self` — safe to call while I/O or a rebuild is in
    /// flight; operations pick up the new policy on their next device op.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock().expect("retry policy lock") = policy;
    }

    /// Pool-size override for [`RebuildMode::Dag`](crate::RebuildMode::Dag)
    /// rounds, if one was set.
    pub fn dag_workers(&self) -> Option<usize> {
        match self.dag_workers.load(Ordering::Relaxed) {
            usize::MAX => None,
            n => Some(n),
        }
    }

    /// Overrides the DAG-mode worker-pool size. `None` (the default) sizes
    /// the pool at twice the plan's per-disk queue count, enough to keep
    /// every surviving disk's queue busy while combines and writebacks
    /// overlap. Takes `&self` — the next DAG round picks up the new size.
    /// (`Some(usize::MAX)` is reserved as the "unset" sentinel and reads
    /// back as `None`.)
    pub fn set_dag_workers(&self, workers: Option<usize>) {
        self.dag_workers
            .store(workers.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// Number of logical data chunks.
    pub fn data_chunks(&self) -> usize {
        self.array.data_chunks()
    }

    /// Physical address of logical data chunk `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn locate(&self, idx: usize) -> ChunkAddr {
        self.array.locate_data(idx)
    }

    /// Currently failed disks (ascending).
    pub fn failed_disks(&self) -> Vec<usize> {
        self.devices
            .iter()
            .enumerate()
            .filter_map(|(d, dev)| dev.is_failed().then_some(d))
            .collect()
    }

    fn disk_down(&self, disk: usize) -> bool {
        self.devices[disk].is_failed()
    }

    /// Whether `addr` currently holds trustworthy bytes: its device is up
    /// and it is not an un-rebuilt chunk inside an open rebuild window.
    fn chunk_available(&self, addr: ChunkAddr) -> bool {
        !self.disk_down(addr.disk) && !self.online.chunk_invalid(addr)
    }

    /// The parity relations `addr` participates in (its inner row, plus
    /// its outer stripe for payload chunks) — the granularity of the
    /// online dirty tracker.
    pub(crate) fn regions_for(&self, addr: ChunkAddr) -> Vec<Region> {
        let geo = self.array.geometry();
        let mut regions = vec![Region::Row(geo.group_of(addr.disk), addr.offset)];
        if !geo.is_inner_parity(addr) {
            let p = geo.payload_pos(addr);
            regions.push(Region::Stripe(p.block, p.stripe));
        }
        regions
    }

    /// Reads one chunk. `Ok(None)` when the disk is failed or the chunk is
    /// inside an open rebuild window and not yet restored. Transient
    /// device faults are retried under the store policy; errors that
    /// outlast it (latent sectors, exhausted retries) surface as
    /// [`StoreError::Device`].
    pub(crate) fn chunk(&self, addr: ChunkAddr) -> Result<Option<Vec<u8>>, StoreError> {
        if self.online.chunk_invalid(addr) {
            return Ok(None);
        }
        let dev = &self.devices[addr.disk];
        if dev.is_failed() {
            return Ok(None);
        }
        let mut buf = vec![0u8; self.chunk_size];
        match RetryReader::new(dev, self.retry_policy()).read_chunk(addr.offset, &mut buf) {
            Ok(()) => Ok(Some(buf)),
            Err(DeviceError::Failed) => Ok(None),
            Err(error) => Err(StoreError::Device {
                disk: addr.disk,
                error,
            }),
        }
    }

    /// Reads one chunk, mapping *any* persistent unavailability (failed
    /// disk, un-rebuilt window chunk, latent sector, exhausted retries) to
    /// `None`. Transient errors are retried under the store policy first,
    /// so scrubbing/verification — which skip relations they cannot fully
    /// read — see a stable view of flaky media.
    fn readable_chunk(&self, addr: ChunkAddr) -> Option<Vec<u8>> {
        if self.online.chunk_invalid(addr) {
            return None;
        }
        let dev = &self.devices[addr.disk];
        if dev.is_failed() {
            return None;
        }
        let mut buf = vec![0u8; self.chunk_size];
        RetryReader::new(dev, self.retry_policy())
            .read_chunk(addr.offset, &mut buf)
            .ok()
            .map(|()| buf)
    }

    /// The inner-layer row code: RAID5 for `p_in = 1`, RAID6 for `p_in = 2`
    /// (payload width `g − p_in`).
    pub(crate) fn inner_code(&self) -> Box<dyn ErasureCode> {
        let geo = self.array.geometry();
        match geo.p_in {
            1 => Box::new(XorParity::new(geo.g - 1).expect("g >= 2")),
            2 => Box::new(Raid6::new(geo.g - 2).expect("g >= 3")),
            p => unreachable!("config validates p_in, got {p}"),
        }
    }

    /// Writes one chunk, retrying transient device faults under the store
    /// policy so a flaky sector does not abort a multi-chunk parity update
    /// half-way through.
    pub(crate) fn write_chunk(&self, addr: ChunkAddr, data: &[u8]) -> Result<(), StoreError> {
        let stats = RetryStats::default();
        match write_chunk_retrying(
            &self.devices[addr.disk],
            &self.retry_policy(),
            &stats,
            addr.offset,
            data,
        ) {
            Ok(()) => Ok(()),
            Err(DeviceError::Failed) => Err(StoreError::DiskFailed { disk: addr.disk }),
            Err(error) => Err(StoreError::Device {
                disk: addr.disk,
                error,
            }),
        }
    }

    fn xor_into(&self, addr: ChunkAddr, delta: &[u8]) -> Result<(), StoreError> {
        let mut bytes = self
            .chunk_pooled(addr)?
            .ok_or(StoreError::DiskFailed { disk: addr.disk })?;
        gf::kernels::xor_acc(&mut bytes, delta);
        let done = self.write_chunk(addr, &bytes);
        self.pool.put(bytes);
        done
    }

    /// Like [`Self::chunk`] but reads into a recycled scratch buffer from
    /// the store's pool. Callers hand the buffer back with
    /// `self.pool.put` once the bytes are dead (dropping it is safe, just
    /// unpooled).
    fn chunk_pooled(&self, addr: ChunkAddr) -> Result<Option<Vec<u8>>, StoreError> {
        if self.online.chunk_invalid(addr) {
            return Ok(None);
        }
        let dev = &self.devices[addr.disk];
        if dev.is_failed() {
            return Ok(None);
        }
        // `read_chunk` overwrites every byte on success, so the buffer
        // needs no zeroing.
        let mut buf = self.pool.take_dirty();
        match RetryReader::new(dev, self.retry_policy()).read_chunk(addr.offset, &mut buf) {
            Ok(()) => Ok(Some(buf)),
            Err(DeviceError::Failed) => {
                self.pool.put(buf);
                Ok(None)
            }
            Err(error) => {
                self.pool.put(buf);
                Err(StoreError::Device {
                    disk: addr.disk,
                    error,
                })
            }
        }
    }

    /// Writes logical data chunk `idx`, updating both parity layers
    /// incrementally (4 chunk writes on 4 distinct disks on the healthy
    /// path).
    ///
    /// **Degraded writes work.** When members of the update set are
    /// unavailable (failed disk, or not yet restored by an in-flight
    /// rebuild), the old value is reconstructed through the redundancy and
    /// the XOR delta is applied to every *available* member; the missing
    /// members' implied values then already reflect the new data, so a
    /// subsequent rebuild materialises the write rather than losing it.
    ///
    /// # Errors
    ///
    /// [`StoreError::DataLoss`] if the failure pattern makes the old value
    /// unrecoverable, [`StoreError::IndexOutOfRange`] /
    /// [`StoreError::WrongChunkSize`] on malformed input.
    pub fn write_data(&self, idx: usize, data: &[u8]) -> Result<(), StoreError> {
        if idx >= self.data_chunks() {
            return Err(StoreError::IndexOutOfRange {
                index: idx,
                capacity: self.data_chunks(),
            });
        }
        if data.len() != self.chunk_size {
            return Err(StoreError::WrongChunkSize {
                found: data.len(),
                expected: self.chunk_size,
            });
        }
        self.qos.note_foreground();
        let began = Instant::now();
        let addr = self.array.locate_data(idx);
        let targets = self
            .array
            .update_set(addr)
            .map_err(|error| StoreError::Layout { error })?;
        let outer = targets[1 + self.array.geometry().p_in];
        debug_assert_eq!(self.array.chunk_role(outer), layout::Role::Parity);
        // The whole read-modify-write runs under the relations it touches:
        // parity deltas from concurrent writers to *intersecting* relation
        // sets must not interleave, and the rebuilder's writebacks must not
        // race the patches — but writers to disjoint relations proceed in
        // parallel on their own lock stripes.
        let mut regions = self.regions_for(addr);
        regions.extend(self.regions_for(outer));
        {
            let guard = self.online.lock_regions(&regions);
            let degraded = targets.iter().any(|t| !self.chunk_available(*t));
            let old = match self.chunk(addr)? {
                Some(bytes) => Some(bytes),
                None => self.reconstruct_chunk_local(addr),
            };
            if let Some(old) = old {
                self.apply_write(addr, outer, data, &old)?;
                drop(guard);
                if degraded {
                    self.telem.record_degraded_write(began.elapsed());
                }
                self.telem.record_foreground_write(began.elapsed());
                return Ok(());
            }
        }
        // The failure pattern is too dense for the local decode: the old
        // value needs the whole-array fixpoint, whose read set no bounded
        // region footprint covers. Re-run under the exclusive lock, which
        // excludes every region holder and gives the decode a stable view.
        let _guard = self.online.lock_updates();
        let old = match self.chunk(addr)? {
            Some(bytes) => bytes,
            None => self.reconstruct_chunk(addr)?,
        };
        self.apply_write(addr, outer, data, &old)?;
        drop(_guard);
        self.telem.record_degraded_write(began.elapsed());
        self.telem.record_foreground_write(began.elapsed());
        Ok(())
    }

    /// The locked body of [`Self::write_data`]: applies `data` over the
    /// already-read `old` value at `addr`. Callers hold either the region
    /// guards covering `addr` and `outer` or the exclusive update lock.
    ///
    /// Compute-then-commit: every member's absolute new value is derived
    /// *before* any device is touched (outer parity absorbs Δ directly,
    /// each affected row's inner parities the code-weighted Δ; unavailable
    /// members are skipped — their implied values track the update through
    /// the surviving relations), then the whole set commits through
    /// [`Self::commit_members`] — journaled as one intent record when a
    /// journal is attached. Same reads and writes per device as patching
    /// members one at a time; only the ordering moves.
    fn apply_write(
        &self,
        addr: ChunkAddr,
        outer: ChunkAddr,
        data: &[u8],
        old: &[u8],
    ) -> Result<(), StoreError> {
        let mut delta = self.pool.take_dirty();
        for ((d, o), n) in delta.iter_mut().zip(old).zip(data) {
            *d = o ^ n;
        }
        let mut parity: BTreeMap<ChunkAddr, Vec<u8>> = BTreeMap::new();
        Self::acc_parity(&mut parity, &self.pool, outer, &delta, 1);
        self.acc_row_parities(&mut parity, addr, &delta);
        self.acc_row_parities(&mut parity, outer, &delta);
        self.pool.put(delta);
        let mut news: Vec<MemberNew> = Vec::with_capacity(1 + parity.len());
        // Data chunk: we hold the full new value, so any writable device
        // takes it — including a mid-rebuild disk, whose chunk becomes
        // valid at commit.
        if !self.disk_down(addr.disk) {
            let mut buf = self.pool.take_dirty();
            buf.copy_from_slice(data);
            news.push((addr, buf, true));
        }
        self.resolve_parity_news(parity, &mut news)?;
        self.commit_members(&news)?;
        for (_, buf, _) in news {
            self.pool.put(buf);
        }
        // Tell an in-flight rebuild that these relations changed under it:
        // reconstructions read from them this round are stale.
        let mut regions = self.regions_for(addr);
        regions.extend(self.regions_for(outer));
        self.online.mark_dirty(regions);
        Ok(())
    }

    /// Converts accumulated parity deltas into absolute member new values:
    /// one read per available parity member, XORed with its delta.
    /// Unavailable members are skipped exactly as the one-at-a-time path
    /// skipped them.
    fn resolve_parity_news(
        &self,
        parity: BTreeMap<ChunkAddr, Vec<u8>>,
        news: &mut Vec<MemberNew>,
    ) -> Result<(), StoreError> {
        for (paddr, pdelta) in parity {
            if self.chunk_available(paddr) {
                if let Some(mut bytes) = self.chunk_pooled(paddr)? {
                    gf::kernels::xor_acc(&mut bytes, &pdelta);
                    news.push((paddr, bytes, false));
                }
            }
            self.pool.put(pdelta);
        }
        Ok(())
    }

    /// Commits one update's member new-values crash-consistently:
    /// journal intent (absolute bytes) → group-commit flush → member
    /// writes → applied marker. The journal flush is the commit point:
    /// after it, a crash anywhere leaves the update redoable from the log;
    /// before it, no member has been touched, so the update atomically
    /// never happened. Redo uses absolute values, so replaying an update
    /// whose members were partially (or fully) written is idempotent.
    /// Without a journal attached this is just the member writes.
    fn commit_members(&self, news: &[MemberNew]) -> Result<(), StoreError> {
        let seq = match &self.durable {
            Some(d) => {
                let writes: Vec<MemberWrite> = news
                    .iter()
                    .map(|(a, bytes, _)| MemberWrite {
                        disk: a.disk as u32,
                        chunk: a.offset as u32,
                        data: bytes.clone(),
                    })
                    .collect();
                let seq = d.journal.append_intent(&writes).map_err(journal_err)?;
                d.journal.commit(seq).map_err(journal_err)?;
                Some(seq)
            }
            None => None,
        };
        for (maddr, bytes, is_data) in news {
            self.write_chunk(*maddr, bytes)?;
            crash_point("member_write");
            if *is_data {
                self.online.mark_valid(*maddr);
            }
        }
        if let Some(seq) = seq {
            let d = self.durable.as_ref().expect("journaled above");
            match d.policy {
                // Process-crash model: the page cache keeps member writes
                // alive through the abort, so the marker needs no barrier.
                FlushPolicy::Never => d.journal.mark_applied(seq).map_err(journal_err)?,
                // Power-loss model: the applied marker may only be
                // appended once the member flush completed, and truncation
                // is safe because every earlier marker obeyed the same
                // rule — the whole log's member writes are on stable
                // storage by the time it drains.
                FlushPolicy::PerWave => {
                    let disks = news.iter().map(|(a, _, _)| a.disk).collect::<BTreeSet<_>>();
                    self.flush_disks_inner(&d.flush_stats, disks)?;
                    crash_point("member_flush");
                    if d.journal
                        .mark_applied_no_truncate(seq)
                        .map_err(journal_err)?
                    {
                        d.journal.try_truncate().map_err(journal_err)?;
                    }
                }
                // Deferred barrier: park the marker behind the flush
                // high-water mark; a commit past the deadline runs the
                // flush cycle inline (a background flusher can run it too,
                // see `spawn_flusher`).
                FlushPolicy::Timed(interval) => {
                    let due = {
                        let mut p = d.pending.lock().expect("pending flush lock");
                        p.seqs.push(seq);
                        p.dirty.extend(news.iter().map(|(a, _, _)| a.disk));
                        p.last_flush.elapsed() >= interval
                    };
                    if due {
                        self.flush_pending()?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs one `FlushPolicy::Timed` flush cycle now: flushes every disk
    /// dirtied since the last cycle, then appends the deferred applied
    /// markers those flushes cover (and truncates the drained log).
    /// Returns how many intents were marked applied. A no-op `Ok(0)` for
    /// non-durable stores, other policies, and empty cycles. Call before
    /// dropping a `Timed` store for a clean shutdown — skipping it is
    /// *safe* (the intents replay from the log on the next open) but makes
    /// reopening do redundant redo work.
    pub fn flush_pending(&self) -> Result<usize, StoreError> {
        let Some(d) = &self.durable else {
            return Ok(0);
        };
        let (seqs, dirty) = {
            let mut p = d.pending.lock().expect("pending flush lock");
            p.last_flush = Instant::now();
            if p.seqs.is_empty() {
                return Ok(0);
            }
            (std::mem::take(&mut p.seqs), std::mem::take(&mut p.dirty))
        };
        if let Err(e) = self.flush_disks_inner(&d.flush_stats, dirty.iter().copied()) {
            // Markers were never appended, so the intents stay redoable;
            // re-park them for the next cycle's retry.
            let mut p = d.pending.lock().expect("pending flush lock");
            p.seqs.extend(seqs);
            p.dirty.extend(dirty);
            return Err(e);
        }
        crash_point("member_flush");
        for &seq in &seqs {
            d.journal
                .mark_applied_no_truncate(seq)
                .map_err(journal_err)?;
        }
        d.journal.try_truncate().map_err(journal_err)?;
        Ok(seqs.len())
    }

    /// Flushes `disks` through [`BlockDevice::flush`], retrying transient
    /// failures (a lost cache-flush command must be reissued before the
    /// barrier counts), and records the `oi_flush_*` stats for the
    /// barrier. Failed disks are skipped — their contents are gone either
    /// way.
    fn flush_disks_inner(
        &self,
        stats: &FlushStats,
        disks: impl IntoIterator<Item = usize>,
    ) -> Result<(), StoreError> {
        let began = Instant::now();
        let mut flushed = 0u64;
        for disk in disks {
            if self.disk_down(disk) {
                continue;
            }
            let mut attempts = 0u32;
            loop {
                match self.devices[disk].flush() {
                    Ok(()) => break,
                    Err(error) if error.is_transient() && attempts < 8 => attempts += 1,
                    Err(error) => return Err(StoreError::Device { disk, error }),
                }
            }
            flushed += 1;
        }
        stats.waves.fetch_add(1, Ordering::Relaxed);
        stats.devices.fetch_add(flushed, Ordering::Relaxed);
        stats.batch.record(flushed);
        stats.stall.record_duration(began.elapsed());
        Ok(())
    }

    /// Flushes the rebuild target disks before a checkpoint save when the
    /// flush policy models power loss: the checkpoint file is fsynced, so
    /// it must not vouch for writeback chunks still sitting in a volatile
    /// device cache. A no-op under [`FlushPolicy::Never`] or without a
    /// journal.
    pub(crate) fn flush_for_checkpoint(&self, targets: &[usize]) -> Result<(), StoreError> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        if d.policy == FlushPolicy::Never {
            return Ok(());
        }
        self.flush_disks_inner(&d.flush_stats, targets.iter().copied())
    }

    /// Spawns the background flusher for a [`FlushPolicy::Timed`] store:
    /// a thread waking every half-interval to run [`Self::flush_pending`],
    /// so applied markers advance even when no foreground commit crosses
    /// the deadline. Returns `None` for non-durable stores and other
    /// policies. Dropping the handle stops the thread after one final
    /// flush cycle.
    pub fn spawn_flusher(self: &Arc<Self>) -> Option<FlusherHandle>
    where
        B: 'static,
    {
        let Some(FlushPolicy::Timed(interval)) = self.flush_policy() else {
            return None;
        };
        let stop = Arc::new(AtomicBool::new(false));
        let store = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("oi-flusher".into())
            .spawn(move || {
                let tick = (interval / 2).max(Duration::from_millis(1));
                while !flag.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    // Transient flush errors re-park the pending markers;
                    // the next tick retries them.
                    let _ = store.flush_pending();
                }
                let _ = store.flush_pending();
            })
            .expect("spawn flusher thread");
        Some(FlusherHandle {
            stop,
            thread: Some(thread),
        })
    }

    /// Reads logical data chunk `idx`, reconstructing through the
    /// redundancy if its disk is failed (or mid-rebuild).
    ///
    /// # Errors
    ///
    /// [`StoreError::DataLoss`] if the current failure pattern makes the
    /// chunk unrecoverable; [`StoreError::IndexOutOfRange`] on bad input.
    pub fn read_data(&self, idx: usize) -> Result<Vec<u8>, StoreError> {
        if idx >= self.data_chunks() {
            return Err(StoreError::IndexOutOfRange {
                index: idx,
                capacity: self.data_chunks(),
            });
        }
        self.qos.note_foreground();
        let began = Instant::now();
        let addr = self.array.locate_data(idx);
        if let Some(bytes) = self.chunk(addr)? {
            self.telem.record_foreground_read(began.elapsed());
            return Ok(bytes);
        }
        // The request is about to take the reconstruct path: hang a
        // degraded-read node under whatever asked for this chunk so the
        // redundancy reads below attribute to it.
        let _trace = telemetry::trace_scope(
            telemetry::EventKind::DegradedRead,
            idx as u64,
            addr.disk as u64,
        );
        {
            let guard = self.online.lock_regions(&self.regions_for(addr));
            // Re-check under the lock: the rebuilder (or a degraded write)
            // may have restored the chunk while we waited.
            if let Some(bytes) = self.chunk(addr)? {
                self.telem.record_foreground_read(began.elapsed());
                return Ok(bytes);
            }
            if let Some(value) = self.reconstruct_chunk_local(addr) {
                drop(guard);
                self.telem.record(began.elapsed());
                self.telem.record_foreground_read(began.elapsed());
                return Ok(value);
            }
        }
        // Local relations cannot decode it: fall back to the whole-array
        // fixpoint under the exclusive lock (see `write_data`).
        let _guard = self.online.lock_updates();
        if let Some(bytes) = self.chunk(addr)? {
            self.telem.record_foreground_read(began.elapsed());
            return Ok(bytes);
        }
        let value = self.reconstruct_chunk(addr)?;
        drop(_guard);
        self.telem.record(began.elapsed());
        self.telem.record_foreground_read(began.elapsed());
        Ok(value)
    }

    /// Reconstructs the current value of a single unavailable chunk using
    /// only relations `addr` itself participates in: its inner row
    /// (`g − 1` reads, up to `p_in` erasures), else its outer stripe
    /// (`k − 1` reads; payload chunks only). These reads are exactly what
    /// [`OnlineState::lock_regions`] over [`Self::regions_for`] covers, so
    /// callers holding those guards see a consistent view. `None` means
    /// the failure pattern is too dense for a local decode and the caller
    /// must escalate to [`Self::reconstruct_chunk`] under the exclusive
    /// update lock.
    fn reconstruct_chunk_local(&self, addr: ChunkAddr) -> Option<Vec<u8>> {
        let geo = self.array.geometry();
        let grp = geo.group_of(addr.disk);
        let row = addr.offset;
        // Inner row: units in code order (payload ascending, parities by
        // role), the target counted as an erasure.
        let ordered: Vec<ChunkAddr> = geo
            .row_payload(grp, row)
            .into_iter()
            .chain(geo.inner_parities_of_row(grp, row))
            .collect();
        let mut units: Vec<Option<Vec<u8>>> = ordered
            .iter()
            .map(|a| (*a != addr).then(|| self.readable_chunk(*a)).flatten())
            .collect();
        if units.iter().filter(|u| u.is_none()).count() <= geo.p_in {
            let pos = ordered
                .iter()
                .position(|a| *a == addr)
                .expect("chunk is in its own row");
            if self.inner_code().reconstruct(&mut units).is_ok() {
                if let Some(bytes) = units.swap_remove(pos) {
                    return Some(bytes);
                }
            }
        }
        // Outer stripe: XOR of the other k − 1 chunks.
        if !geo.is_inner_parity(addr) {
            let p = geo.payload_pos(addr);
            let mut acc = vec![0u8; self.chunk_size];
            let mut complete = true;
            for a in geo.stripe_chunks(p.block, p.stripe) {
                if a == addr {
                    continue;
                }
                match self.readable_chunk(a) {
                    Some(v) => gf::kernels::xor_acc(&mut acc, &v),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                return Some(acc);
            }
        }
        None
    }

    /// Reconstructs the current value of a single unavailable chunk
    /// through the cheapest decodable relation — its inner row, else its
    /// outer stripe, else the whole-array decode fixpoint. Because the
    /// fixpoint's read set spans the array, callers must hold the update
    /// lock *exclusively* ([`OnlineState::lock_updates`]); region guards
    /// are not enough.
    fn reconstruct_chunk(&self, addr: ChunkAddr) -> Result<Vec<u8>, StoreError> {
        if let Some(bytes) = self.reconstruct_chunk_local(addr) {
            return Ok(bytes);
        }
        // Dense failure patterns need multi-hop decoding across relations.
        let recovered = self.reconstruct_missing()?;
        recovered.get(&addr).cloned().ok_or(StoreError::DataLoss)
    }

    /// Store-level telemetry (degraded-read counter and latency).
    pub fn telemetry(&self) -> &StoreTelemetry {
        &self.telem
    }

    /// Finishes durable creation over an already-built store: fresh
    /// journal in `dir`, checkpoint policy, flush policy.
    fn into_durable_created(mut self, dir: &Path, policy: FlushPolicy) -> Result<Self, StoreError> {
        let journal = Journal::create(dir.join("journal.log")).map_err(journal_err)?;
        self.durable = Some(Arc::new(DurableState::new(journal, policy)));
        *self.ckpt.lock().expect("ckpt lock") = Some(CheckpointPolicy {
            path: dir.join("rebuild.ckpt"),
            interval: ckpt_interval_from_env(),
        });
        Ok(self)
    }

    /// [`OiRaidStore::create_durable_with`] over a caller-built device
    /// stack: wraps `devices` (one per disk, as
    /// [`OiRaidStore::with_devices`]) and creates a fresh journal plus
    /// checkpoint policy in `dir`. The caller owns device persistence —
    /// the crash harness uses this to journal
    /// [`blockdev::WriteBackDevice`]-wrapped file devices whose unflushed
    /// buffers model a volatile write cache.
    pub fn create_durable_on(
        cfg: OiRaidConfig,
        chunk_size: usize,
        devices: Vec<B>,
        dir: impl AsRef<Path>,
        policy: FlushPolicy,
    ) -> Result<Self, StoreError> {
        let store = Self::with_devices(cfg, chunk_size, devices)?;
        store.into_durable_created(dir.as_ref(), policy)
    }

    /// [`OiRaidStore::open_durable_with`] over a caller-built device
    /// stack: wraps `devices`, scans the journal in `dir`, redoes
    /// committed-but-unapplied intents onto them, and resets the log.
    /// Under a power-loss policy ([`FlushPolicy::PerWave`] or
    /// [`FlushPolicy::Timed`]) every device is flushed *before* the reset:
    /// truncation destroys the redo records, so the member writes they
    /// re-created must be on stable storage first.
    pub fn open_durable_on(
        cfg: OiRaidConfig,
        chunk_size: usize,
        devices: Vec<B>,
        dir: impl AsRef<Path>,
        policy: FlushPolicy,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        let mut store = Self::with_devices(cfg, chunk_size, devices)?;

        let (journal, summary) = Journal::open(dir.join("journal.log")).map_err(journal_err)?;
        let replayed = summary.redo.len() as u64;
        for (_seq, writes) in &summary.redo {
            for w in writes {
                if w.data.len() != chunk_size {
                    return Err(StoreError::Journal {
                        kind: std::io::ErrorKind::InvalidData,
                        message: format!(
                            "intent member has {} bytes, store uses {chunk_size}",
                            w.data.len()
                        ),
                    });
                }
                store.write_chunk(ChunkAddr::new(w.disk as usize, w.chunk as usize), &w.data)?;
            }
        }
        let durable = DurableState::new(journal, policy);
        if policy != FlushPolicy::Never && replayed > 0 {
            // Push the redo writes through the devices' volatile caches
            // before the journal forgets them. A crash mid-flush is fine:
            // the log is still intact, so the next open replays again.
            let disks: BTreeSet<usize> = summary
                .redo
                .iter()
                .flat_map(|(_, ws)| ws.iter().map(|w| w.disk as usize))
                .collect();
            store.flush_disks_inner(&durable.flush_stats, disks)?;
        }
        // Only after every redo write landed (and, under a power-loss
        // policy, was flushed) may the log be dropped — a crash before
        // this point simply replays again on the next open.
        durable.journal.reset().map_err(journal_err)?;
        if replayed > 0 || summary.rolled_back > 0 || summary.skipped > 0 {
            telemetry::flight_event(
                telemetry::EventKind::JournalReplay,
                replayed,
                summary.rolled_back,
            );
        }
        durable.replayed.store(replayed, Ordering::Relaxed);
        durable
            .rolled_back
            .store(summary.rolled_back, Ordering::Relaxed);
        durable.skipped.store(summary.skipped, Ordering::Relaxed);
        store.durable = Some(Arc::new(durable));
        *store.ckpt.lock().expect("ckpt lock") = Some(CheckpointPolicy {
            path: dir.join("rebuild.ckpt"),
            interval: ckpt_interval_from_env(),
        });
        Ok(store)
    }

    /// The attached write-ahead journal, if this store is durable.
    pub fn journal(&self) -> Option<&Journal> {
        self.durable.as_deref().map(|d| &d.journal)
    }

    /// The member-flush policy, if this store is durable.
    pub fn flush_policy(&self) -> Option<FlushPolicy> {
        self.durable.as_deref().map(|d| d.policy)
    }

    /// Attaches `journal` to an existing store: every subsequent
    /// multi-member update runs through the write-ahead intent path
    /// exactly as on a [`Self::create_durable`] store. This is the hook
    /// for journaling device stacks the durable constructors cannot
    /// build — e.g. fault-injected file devices in benchmarks or tests.
    ///
    /// Crash *recovery* stays the caller's problem: replay on reopen only
    /// happens through [`Self::open_durable`] / [`Self::open_durable_on`],
    /// so attach a journal over non-persistent devices only to measure the
    /// journaling cost, not to survive anything.
    pub fn attach_journal(&mut self, journal: Journal, policy: FlushPolicy) {
        self.durable = Some(Arc::new(DurableState::new(journal, policy)));
    }

    /// Replaces the rebuild checkpoint policy (`None` disables
    /// checkpointing). [`OiRaidStore::create_durable`] /
    /// [`OiRaidStore::open_durable`] install one automatically.
    pub fn set_checkpoint_policy(&self, policy: Option<CheckpointPolicy>) {
        *self.ckpt.lock().expect("ckpt lock") = policy;
    }

    /// The current rebuild checkpoint policy.
    pub fn checkpoint_policy(&self) -> Option<CheckpointPolicy> {
        self.ckpt.lock().expect("ckpt lock").clone()
    }

    /// Registers this store's observable state with a metric registry:
    /// per-device I/O counters (mirrored from the current
    /// [`BlockDevice::counters`] snapshots — call again to refresh),
    /// per-device read/write latency histograms (live handles), and the
    /// degraded-read counter/latency.
    pub fn export_metrics(&self, reg: &Registry) {
        for (d, dev) in self.devices.iter().enumerate() {
            let disk = d.to_string();
            let labels: &[(&str, &str)] = &[("disk", &disk)];
            let c = dev.counters();
            for (name, help, value) in [
                ("oi_device_reads_total", "Chunk read operations", c.reads),
                ("oi_device_writes_total", "Chunk write operations", c.writes),
                ("oi_device_read_bytes_total", "Bytes read", c.bytes_read),
                (
                    "oi_device_written_bytes_total",
                    "Bytes written",
                    c.bytes_written,
                ),
                ("oi_device_faults_total", "Faults observed", c.faults),
                (
                    "oi_device_injected_latency_ns_total",
                    "Injected service latency in nanoseconds",
                    c.injected_latency_ns,
                ),
            ] {
                reg.counter(name, help, labels).set(value);
            }
            let lat = dev.latency();
            reg.register_histogram(
                "oi_device_read_latency_ns",
                "Device read service time in nanoseconds",
                labels,
                lat.read,
            );
            reg.register_histogram(
                "oi_device_write_latency_ns",
                "Device write service time in nanoseconds",
                labels,
                lat.write,
            );
        }
        reg.counter(
            "oi_store_degraded_reads_total",
            "Reads served by reconstruction because the home disk was failed",
            &[],
        )
        .set(self.telem.degraded_reads());
        reg.register_histogram(
            "oi_store_degraded_read_latency_ns",
            "End-to-end degraded-read latency in nanoseconds",
            &[],
            self.telem.degraded_read_latency(),
        );
        reg.counter(
            "oi_store_degraded_writes_total",
            "Writes that patched around unavailable update-set members",
            &[],
        )
        .set(self.telem.degraded_writes());
        reg.register_histogram(
            "oi_store_degraded_write_latency_ns",
            "End-to-end degraded-write latency in nanoseconds",
            &[],
            self.telem.degraded_write_latency(),
        );
        for (name, help, value) in [
            (
                "oi_store_foreground_reads_total",
                "Foreground chunk reads served (healthy and degraded)",
                self.telem.foreground_reads(),
            ),
            (
                "oi_store_foreground_writes_total",
                "Foreground chunk writes served (healthy and degraded)",
                self.telem.foreground_writes(),
            ),
            (
                "oi_store_batch_read_requests_total",
                "Logical read requests submitted through read_data_batch",
                self.telem.batch_read_requests(),
            ),
            (
                "oi_store_batch_read_chunks_total",
                "Distinct chunks fetched for batched reads",
                self.telem.batch_read_chunks(),
            ),
            (
                "oi_store_batch_write_requests_total",
                "Logical byte-range requests submitted through write_bytes_batch",
                self.telem.batch_write_requests(),
            ),
            (
                "oi_store_batch_write_chunks_total",
                "Distinct chunk RMWs performed for batched writes",
                self.telem.batch_write_chunks(),
            ),
            (
                "oi_store_rebuild_throttle_waits_total",
                "Rebuild batches delayed by the foreground QoS throttle",
                self.qos.counters().throttle_waits,
            ),
            (
                "oi_store_rebuild_throttle_wait_ns_total",
                "Total time rebuild readers slept for the QoS throttle",
                self.qos.counters().throttle_wait_ns,
            ),
        ] {
            reg.counter(name, help, &[]).set(value);
        }
        reg.register_histogram(
            "oi_store_foreground_read_latency_ns",
            "End-to-end foreground read latency in nanoseconds",
            &[],
            self.telem.foreground_read_latency(),
        );
        reg.register_histogram(
            "oi_store_foreground_write_latency_ns",
            "End-to-end foreground write latency in nanoseconds",
            &[],
            self.telem.foreground_write_latency(),
        );
        // Journal series export even without a journal attached (as zeros
        // / an empty histogram), so dashboards and the metrics lint see a
        // stable universe across durable and in-memory stores.
        let (appends, flushes, resets, replayed, rolled_back, skipped) = match &self.durable {
            Some(d) => {
                let s = d.journal.stats();
                (
                    s.appends.load(Ordering::Relaxed),
                    s.flushes.load(Ordering::Relaxed),
                    s.resets.load(Ordering::Relaxed),
                    d.replayed.load(Ordering::Relaxed),
                    d.rolled_back.load(Ordering::Relaxed),
                    d.skipped.load(Ordering::Relaxed),
                )
            }
            None => (0, 0, 0, 0, 0, 0),
        };
        for (name, help, value) in [
            (
                "oi_journal_appends_total",
                "Intent records appended to the write-ahead parity journal",
                appends,
            ),
            (
                "oi_journal_flushes_total",
                "Group-commit flushes of the write-ahead parity journal",
                flushes,
            ),
            (
                "oi_journal_resets_total",
                "Times the journal truncated back to empty (no outstanding intents)",
                resets,
            ),
            (
                "oi_journal_replayed_total",
                "Committed-but-unapplied intents redone during crash recovery",
                replayed,
            ),
            (
                "oi_journal_rolled_back_total",
                "Torn journal tails rolled back during crash recovery",
                rolled_back,
            ),
            (
                "oi_journal_skipped_total",
                "Corrupt mid-log regions skipped by resync during crash recovery",
                skipped,
            ),
        ] {
            reg.counter(name, help, &[]).set(value);
        }
        reg.register_histogram(
            "oi_journal_batch_records",
            "Intent records covered per journal group-commit flush",
            &[],
            match &self.durable {
                Some(d) => Arc::clone(&d.journal.stats().batch),
                None => Arc::new(Histogram::new()),
            },
        );
        // Member-flush series: same always-exported contract as the
        // journal series (zeros / empty histograms when no flush policy is
        // doing any work).
        let (flush_waves, flush_devices) = match &self.durable {
            Some(d) => (
                d.flush_stats.waves.load(Ordering::Relaxed),
                d.flush_stats.devices.load(Ordering::Relaxed),
            ),
            None => (0, 0),
        };
        reg.counter(
            "oi_flush_waves_total",
            "Member-flush barriers performed before applied markers",
            &[],
        )
        .set(flush_waves);
        reg.counter(
            "oi_flush_devices_total",
            "Individual device flushes issued across all barriers",
            &[],
        )
        .set(flush_devices);
        reg.register_histogram(
            "oi_flush_batch_devices",
            "Devices flushed per member-flush barrier",
            &[],
            match &self.durable {
                Some(d) => Arc::clone(&d.flush_stats.batch),
                None => Arc::new(Histogram::new()),
            },
        );
        reg.register_histogram(
            "oi_flush_stall_ns",
            "Commit stall behind one member-flush barrier in nanoseconds",
            &[],
            match &self.durable {
                Some(d) => Arc::clone(&d.flush_stats.stall),
                None => Arc::new(Histogram::new()),
            },
        );
    }

    /// Marks a disk failed, discarding its contents.
    ///
    /// # Errors
    ///
    /// [`StoreError::DiskOutOfRange`] for bad indices (double-failing is a
    /// no-op).
    pub fn fail_disk(&self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.devices.len() {
            return Err(StoreError::DiskOutOfRange { disk });
        }
        self.devices[disk].fail();
        telemetry::flight_event(telemetry::EventKind::DegradedTransition, disk as u64, 1);
        Ok(())
    }

    /// Rebuilds a failed disk's full contents from the redundancy and
    /// brings it back online, using the legacy whole-array decode fixpoint
    /// (see [`OiRaidStore::rebuild`] for the plan-driven, instrumented,
    /// parallel-capable engine).
    ///
    /// # Errors
    ///
    /// [`StoreError::DataLoss`] if the overall failure pattern is
    /// unrecoverable, [`StoreError::DiskOutOfRange`] on bad input. Rebuilding
    /// a healthy disk is a no-op. Holds the update lock for the whole
    /// operation, so concurrent foreground writes serialize behind it (the
    /// windowed engine in [`OiRaidStore::rebuild`] is the online path).
    pub fn rebuild_disk(&self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.devices.len() {
            return Err(StoreError::DiskOutOfRange { disk });
        }
        if !self.disk_down(disk) {
            return Ok(());
        }
        let _guard = self.online.lock_updates();
        let recovered = self.reconstruct_missing()?;
        self.devices[disk]
            .heal()
            .map_err(|error| StoreError::Device { disk, error })?;
        for o in 0..self.array.chunks_per_disk() {
            let addr = ChunkAddr::new(disk, o);
            self.write_chunk(addr, &recovered[&addr])?;
        }
        Ok(())
    }

    /// Verifies every parity relation in both layers; returns the addresses
    /// of violated parity chunks (empty = consistent). Relations touching a
    /// failed disk — or a chunk the backend cannot read — are skipped.
    pub fn check_parity(&self) -> Vec<ChunkAddr> {
        let geo = self.array.geometry();
        let cs = self.chunk_size;
        let code = self.inner_code();
        let mut bad = Vec::new();
        // Inner rows: re-encode the payload and compare the stored parities.
        for grp in 0..geo.v {
            for row in 0..geo.chunks_per_disk {
                let chunks: Vec<_> = geo.row_chunks(grp, row);
                if chunks.iter().any(|a| self.readable_chunk(*a).is_none()) {
                    continue;
                }
                let payload: Vec<Vec<u8>> = geo
                    .row_payload(grp, row)
                    .iter()
                    .map(|a| self.readable_chunk(*a).expect("checked readable"))
                    .collect();
                let expect = code.encode(&payload).expect("row encodes");
                for (stored, want) in geo.inner_parities_of_row(grp, row).into_iter().zip(expect) {
                    if self.readable_chunk(stored).as_deref() != Some(&want[..]) {
                        bad.push(stored);
                    }
                }
            }
        }
        // Outer stripes: XOR of all k chunks must be zero.
        for (block, s) in geo.all_stripes() {
            let chunks = geo.stripe_chunks(block, s);
            let values: Vec<Option<Vec<u8>>> =
                chunks.iter().map(|a| self.readable_chunk(*a)).collect();
            if values.iter().any(|v| v.is_none()) {
                continue;
            }
            let mut acc = vec![0u8; cs];
            for v in values.iter().flatten() {
                for (x, b) in acc.iter_mut().zip(v) {
                    *x ^= b;
                }
            }
            if acc.iter().any(|&x| x != 0) {
                bad.push(geo.stripe_chunk(PayloadPos {
                    block,
                    stripe: s,
                    pos: geo.outer_parity_pos(s),
                }));
            }
        }
        bad
    }

    /// Total user-data capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.data_chunks() as u64 * self.chunk_size as u64
    }

    /// Reads an arbitrary byte range of the logical data address space
    /// (block-device style), reconstructing through failures as needed.
    ///
    /// # Errors
    ///
    /// [`StoreError::IndexOutOfRange`] if the range exceeds
    /// [`OiRaidStore::capacity_bytes`]; [`StoreError::DataLoss`] if a
    /// touched chunk is unrecoverable.
    pub fn read_bytes(&self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        if offset
            .checked_add(buf.len() as u64)
            .is_none_or(|e| e > self.capacity_bytes())
        {
            return Err(StoreError::IndexOutOfRange {
                index: offset as usize,
                capacity: self.capacity_bytes() as usize,
            });
        }
        let cs = self.chunk_size as u64;
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let idx = (pos / cs) as usize;
            let within = (pos % cs) as usize;
            let take = (self.chunk_size - within).min(buf.len() - done);
            let chunk = self.read_data(idx)?;
            buf[done..done + take].copy_from_slice(&chunk[within..within + take]);
            done += take;
        }
        Ok(())
    }

    /// Writes an arbitrary byte range of the logical data address space,
    /// maintaining both parity layers (read-modify-write on partial
    /// chunks).
    ///
    /// # Errors
    ///
    /// [`StoreError::IndexOutOfRange`] on range overflow and the
    /// [`OiRaidStore::write_data`] errors per touched chunk.
    pub fn write_bytes(&self, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        if offset
            .checked_add(data.len() as u64)
            .is_none_or(|e| e > self.capacity_bytes())
        {
            return Err(StoreError::IndexOutOfRange {
                index: offset as usize,
                capacity: self.capacity_bytes() as usize,
            });
        }
        let cs = self.chunk_size as u64;
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let idx = (pos / cs) as usize;
            let within = (pos % cs) as usize;
            let take = (self.chunk_size - within).min(data.len() - done);
            let mut chunk = if within == 0 && take == self.chunk_size {
                vec![0u8; self.chunk_size]
            } else {
                self.read_data(idx)? // read-modify-write
            };
            chunk[within..within + take].copy_from_slice(&data[done..done + take]);
            self.write_data(idx, &chunk)?;
            done += take;
        }
        Ok(())
    }

    /// Reads many logical data chunks in one submission, deduplicating
    /// repeated indices and coalescing physically-adjacent healthy chunks
    /// into single [`BlockDevice::read_chunks`] runs per disk. Unavailable
    /// chunks fall back to the degraded [`Self::read_data`] machinery
    /// one-by-one. Returns one chunk value per input index, in input order
    /// (duplicates get copies of the same fetch).
    ///
    /// Foreground-read latency is recorded per *distinct* chunk at batch
    /// completion — the latency a batched client actually observes.
    ///
    /// # Errors
    ///
    /// [`StoreError::IndexOutOfRange`] if any index is out of range
    /// (checked before any I/O); [`StoreError::DataLoss`] /
    /// [`StoreError::Device`] from the degraded fallback, abandoning the
    /// rest of the batch.
    pub fn read_data_batch(&self, idxs: &[usize]) -> Result<Vec<Vec<u8>>, StoreError> {
        for &idx in idxs {
            if idx >= self.data_chunks() {
                return Err(StoreError::IndexOutOfRange {
                    index: idx,
                    capacity: self.data_chunks(),
                });
            }
        }
        if idxs.is_empty() {
            return Ok(Vec::new());
        }
        self.qos.note_foreground();
        let _trace = telemetry::trace_scope(telemetry::EventKind::BatchRead, idxs.len() as u64, 0);
        let began = Instant::now();
        let cs = self.chunk_size;
        // Each distinct chunk is fetched once and fanned back out to every
        // requesting slot.
        let mut fetched: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
        let mut direct: Vec<(usize, ChunkAddr)> = Vec::new();
        let mut fallback: Vec<usize> = Vec::new();
        let mut remaining: BTreeMap<usize, usize> = BTreeMap::new();
        for &idx in idxs {
            let n = remaining.entry(idx).or_insert(0);
            *n += 1;
            if *n > 1 {
                continue;
            }
            let addr = self.array.locate_data(idx);
            if self.chunk_available(addr) {
                direct.push((idx, addr));
            } else {
                fallback.push(idx);
            }
        }
        // Healthy chunks: sort by physical placement and coalesce
        // consecutive offsets on the same disk into one device run.
        direct.sort_unstable_by_key(|(_, a)| (a.disk, a.offset));
        let mut i = 0;
        while i < direct.len() {
            let mut j = i + 1;
            while j < direct.len()
                && direct[j].1.disk == direct[i].1.disk
                && direct[j].1.offset == direct[i].1.offset + (j - i)
            {
                j += 1;
            }
            let run = &direct[i..j];
            let disk = run[0].1.disk;
            let first = run[0].1.offset;
            let mut buf = vec![0u8; run.len() * cs];
            let reader = RetryReader::new(&self.devices[disk], self.retry_policy());
            let run_trace = telemetry::trace_scope(
                telemetry::EventKind::DiskRun,
                disk as u64,
                run.len() as u64,
            );
            let failures = reader.read_chunks_degrading(first, run.len(), &mut buf);
            drop(run_trace);
            let failed: BTreeSet<usize> = failures.into_iter().map(|(c, _)| c).collect();
            for (slot, (idx, addr)) in run.iter().enumerate() {
                if failed.contains(&addr.offset) {
                    // Went unreadable since the availability check (disk
                    // died, latent sector): the degraded single-chunk path
                    // sorts it out below.
                    fallback.push(*idx);
                } else {
                    fetched.insert(*idx, buf[slot * cs..(slot + 1) * cs].to_vec());
                }
            }
            i = j;
        }
        let direct_took = began.elapsed();
        for _ in 0..fetched.len() {
            self.telem.record_foreground_read(direct_took);
        }
        // Unavailable chunks: the one-at-a-time path reconstructs through
        // the redundancy (and records its own degraded telemetry).
        for &idx in &fallback {
            fetched.insert(idx, self.read_data(idx)?);
        }
        self.telem
            .record_batch_read(idxs.len() as u64, fetched.len() as u64);
        let mut out = Vec::with_capacity(idxs.len());
        for &idx in idxs {
            let n = remaining.get_mut(&idx).expect("counted above");
            *n -= 1;
            if *n == 0 {
                out.push(fetched.remove(&idx).expect("fetched above"));
            } else {
                out.push(fetched.get(&idx).cloned().expect("fetched above"));
            }
        }
        Ok(out)
    }

    /// Writes many byte ranges in one submission, coalescing them into **one
    /// read-modify-write per touched chunk** — one old-value reconstruct and
    /// one parity update per touched relation, instead of one per request.
    ///
    /// Overlapping ranges apply in submission order (later writes win), so
    /// the final contents are bit-identical to issuing the same writes
    /// one-at-a-time through [`Self::write_bytes`] — including against
    /// failed disks and mid-rebuild windows (property-tested in
    /// `crates/volume`). Within each commit group the old values are
    /// snapshotted under the union of the touched region locks before any
    /// mutation, and every touched parity chunk absorbs its *accumulated*
    /// XOR delta exactly once — equivalence with the sequential path
    /// follows from the linearity of both code layers.
    ///
    /// # Errors
    ///
    /// [`StoreError::IndexOutOfRange`] if any range exceeds
    /// [`Self::capacity_bytes`] (checked before any I/O). Mid-batch
    /// [`StoreError::DataLoss`] / [`StoreError::Device`] abandon the rest
    /// of the batch: chunks of earlier commit groups are applied, the
    /// failing group is rolled back to its pre-group state only if the
    /// error struck before its first mutation (old-value snapshot phase).
    pub fn write_bytes_batch(&self, writes: &[(u64, &[u8])]) -> Result<BatchStats, StoreError> {
        let cap = self.capacity_bytes();
        for &(off, data) in writes {
            if off.checked_add(data.len() as u64).is_none_or(|e| e > cap) {
                return Err(StoreError::IndexOutOfRange {
                    index: off as usize,
                    capacity: cap as usize,
                });
            }
        }
        if writes.is_empty() {
            return Ok(BatchStats::default());
        }
        self.qos.note_foreground();
        let _trace =
            telemetry::trace_scope(telemetry::EventKind::BatchWrite, writes.len() as u64, 0);
        let cs = self.chunk_size as u64;
        // Split every request into per-chunk patch lists, preserving
        // submission order within each chunk (later writes win on overlap).
        let mut patches: BTreeMap<usize, Vec<(usize, &[u8])>> = BTreeMap::new();
        for &(off, data) in writes {
            let mut done = 0usize;
            while done < data.len() {
                let pos = off + done as u64;
                let idx = (pos / cs) as usize;
                let within = (pos % cs) as usize;
                let take = (self.chunk_size - within).min(data.len() - done);
                patches
                    .entry(idx)
                    .or_default()
                    .push((within, &data[done..done + take]));
                done += take;
            }
        }
        let stats = BatchStats {
            requests: writes.len(),
            chunks: patches.len(),
        };
        // Commit in bounded groups so the lock footprint and in-flight
        // scratch stay small while parity updates still amortize. A
        // journal-attached store commits the whole wave as ONE group —
        // one intent record and one group-commit flush per submission —
        // because per-update flushes would dominate the batch.
        let grouped: Vec<ChunkPatches<'_>> = patches.into_iter().collect();
        let group_cap = if self.durable.is_some() {
            grouped.len()
        } else {
            MAX_WRITE_GROUP
        };
        for group in grouped.chunks(group_cap) {
            self.write_group(group)?;
        }
        self.telem.record_batch_write(stats);
        Ok(stats)
    }

    /// Commits one bounded group of per-chunk patch lists: snapshot all old
    /// values under the union of the group's region locks, then apply data
    /// writes and accumulated parity deltas (see
    /// [`Self::apply_write_group`]). Escalates the whole group to the
    /// exclusive update lock when any old value needs the whole-array
    /// decode fixpoint — same two-tier locking as [`Self::write_data`].
    fn write_group(&self, group: &[ChunkPatches<'_>]) -> Result<(), StoreError> {
        let _trace =
            telemetry::trace_scope(telemetry::EventKind::WriteGroup, group.len() as u64, 0);
        let began = Instant::now();
        let mut items: Vec<(ChunkAddr, ChunkAddr, bool)> = Vec::with_capacity(group.len());
        let mut regions: Vec<Region> = Vec::new();
        for (idx, _) in group {
            let addr = self.array.locate_data(*idx);
            let targets = self
                .array
                .update_set(addr)
                .map_err(|error| StoreError::Layout { error })?;
            let outer = targets[1 + self.array.geometry().p_in];
            debug_assert_eq!(self.array.chunk_role(outer), layout::Role::Parity);
            regions.extend(self.regions_for(addr));
            regions.extend(self.regions_for(outer));
            let degraded = targets.iter().any(|t| !self.chunk_available(*t));
            items.push((addr, outer, degraded));
        }
        let mut olds: Vec<Vec<u8>> = Vec::with_capacity(group.len());
        {
            let guard = self.online.lock_regions(&regions);
            // Snapshot every old value before any mutation: group members
            // that share relations must reconstruct against the pre-group
            // state, exactly what each one-at-a-time write would have seen
            // at its turn (parity patches cancel out of the reconstruction
            // by linearity).
            let mut local = true;
            for (addr, _, _) in &items {
                match self.chunk(*addr)? {
                    Some(b) => olds.push(b),
                    None => match self.reconstruct_chunk_local(*addr) {
                        Some(b) => olds.push(b),
                        None => {
                            local = false;
                            break;
                        }
                    },
                }
            }
            if local {
                self.apply_write_group(group, &items, &olds, &regions)?;
                drop(guard);
                let took = began.elapsed();
                for (_, _, degraded) in &items {
                    if *degraded {
                        self.telem.record_degraded_write(took);
                    }
                    self.telem.record_foreground_write(took);
                }
                return Ok(());
            }
        }
        // The failure pattern is too dense for a local decode somewhere in
        // the group: re-run the whole group under the exclusive lock, whose
        // stable view the whole-array fixpoint needs (see `write_data`).
        let _guard = self.online.lock_updates();
        olds.clear();
        for (addr, _, _) in &items {
            let old = match self.chunk(*addr)? {
                Some(b) => b,
                None => self.reconstruct_chunk(*addr)?,
            };
            olds.push(old);
        }
        self.apply_write_group(group, &items, &olds, &regions)?;
        drop(_guard);
        let took = began.elapsed();
        for (_, _, degraded) in &items {
            if *degraded {
                self.telem.record_degraded_write(took);
            }
            self.telem.record_foreground_write(took);
        }
        Ok(())
    }

    /// The locked body of [`Self::write_group`]: writes each chunk's new
    /// value and accumulates every parity delta across the group so each
    /// touched parity chunk is read-modify-written **once**, not once per
    /// member. Callers hold either the region guards covering `regions` or
    /// the exclusive update lock, and have already snapshotted `olds`.
    fn apply_write_group(
        &self,
        group: &[ChunkPatches<'_>],
        items: &[(ChunkAddr, ChunkAddr, bool)],
        olds: &[Vec<u8>],
        regions: &[Region],
    ) -> Result<(), StoreError> {
        let mut parity: BTreeMap<ChunkAddr, Vec<u8>> = BTreeMap::new();
        let mut news: Vec<MemberNew> = Vec::with_capacity(group.len());
        for (((_, chunk_patches), (addr, outer, _)), old) in group.iter().zip(items).zip(olds) {
            // New value = old overlaid with this chunk's patches in
            // submission order.
            let mut new = self.pool.take_dirty();
            new.copy_from_slice(old);
            for (within, slice) in chunk_patches {
                new[*within..*within + slice.len()].copy_from_slice(slice);
            }
            let mut delta = self.pool.take_dirty();
            for ((d, o), n) in delta.iter_mut().zip(old).zip(&new) {
                *d = o ^ n;
            }
            // Outer parity absorbs Δ directly; each affected row's inner
            // parities absorb the code-weighted Δ — all into the group
            // accumulator rather than the devices.
            Self::acc_parity(&mut parity, &self.pool, *outer, &delta, 1);
            self.acc_row_parities(&mut parity, *addr, &delta);
            self.acc_row_parities(&mut parity, *outer, &delta);
            self.pool.put(delta);
            // Data chunk: any writable device takes the full new value at
            // commit — including a mid-rebuild disk, whose chunk becomes
            // valid there.
            if !self.disk_down(addr.disk) {
                news.push((*addr, new, true));
            } else {
                self.pool.put(new);
            }
        }
        // Each accumulated parity delta resolves to one absolute new value
        // (one read-modify per touched parity chunk, not one per member);
        // the whole group then commits as a single journal intent — one
        // record, one flush, however many chunks the wave coalesced.
        self.resolve_parity_news(parity, &mut news)?;
        self.commit_members(&news)?;
        for (_, buf, _) in news {
            self.pool.put(buf);
        }
        self.online.mark_dirty(regions.to_vec());
        Ok(())
    }

    /// Accumulates the inner-parity deltas for an update of `delta` at
    /// payload chunk `addr` into the update's parity accumulator (P gets
    /// `Δ`; the RAID6 Q gets `2^pos · Δ`, matching [`Raid6::encode`]'s
    /// generator). Availability is checked when the accumulator resolves
    /// to absolute values in [`Self::resolve_parity_news`].
    fn acc_row_parities(
        &self,
        parity: &mut BTreeMap<ChunkAddr, Vec<u8>>,
        addr: ChunkAddr,
        delta: &[u8],
    ) {
        let geo = self.array.geometry();
        let group = geo.group_of(addr.disk);
        let row = addr.offset;
        let pos = geo
            .row_payload(group, row)
            .iter()
            .position(|a| *a == addr)
            .expect("payload chunk is in its row");
        for (role, paddr) in geo
            .inner_parities_of_row(group, row)
            .into_iter()
            .enumerate()
        {
            let w = match role {
                0 => 1,
                1 => Raid6::generator_weight(pos),
                _ => unreachable!("at most two inner parities"),
            };
            Self::acc_parity(parity, &self.pool, paddr, delta, w);
        }
    }

    /// `parity[paddr] ^= w · delta`, materialising the accumulator slot
    /// from the scratch pool on first touch.
    fn acc_parity(
        parity: &mut BTreeMap<ChunkAddr, Vec<u8>>,
        pool: &BufPool,
        paddr: ChunkAddr,
        delta: &[u8],
        w: u8,
    ) {
        let slot = parity.entry(paddr).or_insert_with(|| pool.take());
        if w == 1 {
            gf::kernels::xor_acc(slot, delta);
        } else {
            Gf256::get().mul_acc_slice(w, delta, slot);
        }
    }

    /// Flips bits in a stored chunk — a *silent* corruption (the disk still
    /// answers reads). Test/chaos hook for the scrubbing machinery.
    ///
    /// # Errors
    ///
    /// [`StoreError::DiskFailed`] if the disk is down,
    /// [`StoreError::DiskOutOfRange`] for bad addresses.
    pub fn corrupt_chunk(&self, addr: ChunkAddr, xor_mask: u8) -> Result<(), StoreError> {
        if addr.disk >= self.devices.len() {
            return Err(StoreError::DiskOutOfRange { disk: addr.disk });
        }
        let mask = vec![xor_mask; self.chunk_size];
        self.xor_into(addr, &mask)
    }

    /// Repairing scrub pass: probes every chunk on every online disk and
    /// fixes what it finds, in two sweeps.
    ///
    /// **Latent pass** — every chunk is read through the store's
    /// [retry policy](OiRaidStore::retry_policy); a chunk that stays
    /// unreadable (a latent sector error) is re-derived through an
    /// alternate read set via the chunk-granular planner and rewritten in
    /// place. Chunks with no decodable read set (or whose rewrite fails)
    /// land in [`ScrubReport::unrecoverable`] — the scrub reports, it never
    /// panics or errors.
    ///
    /// **Corruption pass** — finds chunks whose parity relations are
    /// violated (the disk answered, but with the wrong bytes) and repairs
    /// them from the redundancy. Identification uses the two layers as
    /// cross-checks: a corrupted *payload* chunk violates both its inner
    /// row and its outer stripe, a corrupted *inner parity* violates only
    /// its row. Assumes at most one corruption per inner row and per outer
    /// stripe (the regime periodic scrubbing is meant to maintain); denser
    /// corruption leaves residual inconsistencies, visible via
    /// [`OiRaidStore::check_parity`].
    ///
    /// Failed disks are skipped (they are [`OiRaidStore::rebuild`]'s job)
    /// but their chunks are excluded from repair read sets, so scrubbing a
    /// degraded array is safe.
    pub fn scrub(&self) -> ScrubReport {
        self.scrub_observed(&RebuildObserver::default())
    }

    /// [`OiRaidStore::scrub`] with caller-provided telemetry: the
    /// observer's [`HealCounters`](crate::HealCounters) tick as latent
    /// sectors are retried, re-routed, and repaired, and its stage
    /// histograms time the repair reads/decodes.
    pub fn scrub_observed(&self, obs: &RebuildObserver) -> ScrubReport {
        let start = Instant::now();
        let policy = self.retry_policy();
        let failed = self.failed_disks();
        let chunks_per_disk = self.array.geometry().chunks_per_disk;
        let mut scanned = 0u64;
        let mut retry = RetryCounters::default();
        // Latent pass, detection: probe every chunk of every online disk
        // through the retry layer.
        let mut bad: BTreeSet<ChunkAddr> = BTreeSet::new();
        let mut buf = vec![0u8; self.chunk_size];
        for (d, dev) in self.devices.iter().enumerate() {
            if failed.contains(&d) {
                continue;
            }
            let reader = RetryReader::new(dev, policy);
            for o in 0..chunks_per_disk {
                scanned += 1;
                if reader.read_chunk(o, &mut buf).is_err() {
                    bad.insert(ChunkAddr::new(d, o));
                }
            }
            retry = retry.merged(&reader.counters());
        }
        // Latent pass, repair: plan alternate read sets for everything
        // unreadable (treating failed disks' chunks as missing too, so no
        // read set touches them), decode, and rewrite in place.
        let mut repaired_latent: Vec<ChunkAddr> = Vec::new();
        let mut unrecoverable: Vec<ChunkAddr> = Vec::new();
        if !bad.is_empty() {
            obs.heal.reroutes.inc_by(bad.len() as u64);
            let mut missing = bad.clone();
            for &d in &failed {
                missing.extend((0..chunks_per_disk).map(|o| ChunkAddr::new(d, o)));
            }
            match self.array.chunk_recovery_plan(&missing) {
                Ok(plan) => {
                    let out = self.execute_serial_round(&plan, obs);
                    retry = retry.merged(&out.retry);
                    let write_stats = RetryStats::default();
                    let mut values: HashMap<ChunkAddr, Vec<u8>> =
                        out.finished.into_iter().collect();
                    for addr in &bad {
                        let repaired = values.remove(addr).is_some_and(|v| {
                            write_chunk_retrying(
                                &self.devices[addr.disk],
                                &policy,
                                &write_stats,
                                addr.offset,
                                &v,
                            )
                            .is_ok()
                        });
                        if repaired {
                            repaired_latent.push(*addr);
                            obs.heal.latent_repairs.inc();
                        } else {
                            unrecoverable.push(*addr);
                        }
                    }
                    retry = retry.merged(&write_stats.snapshot());
                }
                // The unreadable set is not decodable: nothing to repair.
                Err(_) => unrecoverable.extend(bad.iter().copied()),
            }
        }
        obs.heal.retries.inc_by(retry.retries);
        obs.heal.retries_exhausted.inc_by(retry.exhausted);
        obs.heal.backoff_ns.inc_by(retry.backoff_ns);
        let repaired_corruption = self.scrub_corruption();
        ScrubReport {
            scanned,
            repaired_corruption,
            repaired_latent,
            unrecoverable,
            retries: retry.retries,
            wall: start.elapsed(),
        }
    }

    /// The corruption sweep of [`OiRaidStore::scrub`]: locate and repair
    /// silently-corrupted chunks via the two parity layers' cross-check.
    fn scrub_corruption(&self) -> Vec<ChunkAddr> {
        let geo = self.array.geometry().clone();
        let cs = self.chunk_size;
        let mut repaired = Vec::new();
        // Violated outer stripes (XOR of all k chunks nonzero).
        let mut bad_stripes: Vec<Vec<ChunkAddr>> = Vec::new();
        for (block, s) in geo.all_stripes() {
            let chunks = geo.stripe_chunks(block, s);
            let values: Vec<Option<Vec<u8>>> =
                chunks.iter().map(|a| self.readable_chunk(*a)).collect();
            if values.iter().any(|v| v.is_none()) {
                continue;
            }
            let mut acc = vec![0u8; cs];
            for v in values.iter().flatten() {
                for (x, b) in acc.iter_mut().zip(v) {
                    *x ^= b;
                }
            }
            if acc.iter().any(|&x| x != 0) {
                bad_stripes.push(chunks);
            }
        }
        // Violated inner rows: locate the suspect within each. A row any
        // chunk of which is persistently unreadable (failed disk, latent
        // sector, exhausted retries — also mid-repair) is skipped and left
        // for a later pass.
        let code = self.inner_code();
        for grp in 0..geo.v {
            for row in 0..geo.chunks_per_disk {
                self.scrub_row(&geo, code.as_ref(), grp, row, &bad_stripes, &mut repaired);
            }
        }
        repaired
    }

    /// One row of the corruption sweep. Returns `None` — abandoning the
    /// row to a later pass — as soon as any chunk involved is unreadable
    /// or a repair write fails persistently; a partial repair left behind
    /// surfaces as a plain parity violation the next sweep closes.
    /// Runs under the update lock so repairs cannot interleave with
    /// foreground parity patches.
    fn scrub_row(
        &self,
        geo: &Geometry,
        code: &dyn ErasureCode,
        grp: usize,
        row: usize,
        bad_stripes: &[Vec<ChunkAddr>],
        repaired: &mut Vec<ChunkAddr>,
    ) -> Option<()> {
        let _guard = self.online.lock_updates();
        let cs = self.chunk_size;
        let payload_addrs = geo.row_payload(grp, row);
        let payload: Vec<Vec<u8>> = payload_addrs
            .iter()
            .map(|a| self.readable_chunk(*a))
            .collect::<Option<_>>()?;
        let expect = code.encode(&payload).expect("row encodes");
        let parities = geo.inner_parities_of_row(grp, row);
        let mut row_violated = false;
        for (a, want) in parities.iter().zip(&expect) {
            if self.readable_chunk(*a)? != want[..] {
                row_violated = true;
            }
        }
        if !row_violated {
            return Some(());
        }
        // Payload suspects sit in a violated outer stripe too.
        let suspects: Vec<ChunkAddr> = payload_addrs
            .iter()
            .copied()
            .filter(|a| bad_stripes.iter().any(|s| s.contains(a)))
            .collect();
        match suspects.as_slice() {
            [bad_payload] => {
                // Repair from the outer stripe (XOR of the others), then
                // refresh the row parities.
                let p = geo.payload_pos(*bad_payload);
                let mut val = vec![0u8; cs];
                for a in geo.stripe_chunks(p.block, p.stripe) {
                    if a != *bad_payload {
                        for (x, b) in val.iter_mut().zip(&self.readable_chunk(a)?) {
                            *x ^= b;
                        }
                    }
                }
                let old = self.readable_chunk(*bad_payload)?;
                let delta: Vec<u8> = old.iter().zip(&val).map(|(o, n)| o ^ n).collect();
                self.xor_into_retrying(*bad_payload, &delta)?;
                repaired.push(*bad_payload);
                // Recompute the row parities from the repaired payload
                // (they may have been consistent with the corrupted value
                // or with the true one).
                let fresh: Vec<Vec<u8>> = geo
                    .row_payload(grp, row)
                    .iter()
                    .map(|a| self.readable_chunk(*a))
                    .collect::<Option<_>>()?;
                let want = code.encode(&fresh).expect("row encodes");
                for (a, w) in parities.iter().zip(want) {
                    let old = self.readable_chunk(*a)?;
                    if old != w {
                        let delta: Vec<u8> = old.iter().zip(&w).map(|(o, n)| o ^ n).collect();
                        self.xor_into_retrying(*a, &delta)?;
                    }
                }
            }
            [] => {
                // No payload suspect: the inner parity itself is
                // corrupted — recompute it.
                for (a, w) in parities.iter().zip(&expect) {
                    let old = self.readable_chunk(*a)?;
                    if old != w[..] {
                        let delta: Vec<u8> = old.iter().zip(w).map(|(o, n)| o ^ n).collect();
                        self.xor_into_retrying(*a, &delta)?;
                        repaired.push(*a);
                    }
                }
            }
            _ => {
                // Multiple suspects in one row: outside the scrub
                // contract; leave for check_parity to report.
            }
        }
        Some(())
    }

    /// [`OiRaidStore::xor_into`] through the retry layer: scrub repairs
    /// must survive transient write faults. `None` on persistent failure.
    fn xor_into_retrying(&self, addr: ChunkAddr, delta: &[u8]) -> Option<()> {
        let mut bytes = self.readable_chunk(addr)?;
        gf::kernels::xor_acc(&mut bytes, delta);
        let policy = self.retry_policy();
        let stats = RetryStats::default();
        write_chunk_retrying(
            &self.devices[addr.disk],
            &policy,
            &stats,
            addr.offset,
            &bytes,
        )
        .ok()
    }

    /// Value fixpoint: reconstructs every chunk of every failed disk.
    ///
    /// Reads every healthy chunk once up front (whole-array decode — the
    /// plan-driven engine in [`crate::rebuild`] is the memory- and
    /// I/O-bounded path), then repairs stripes/rows until closed.
    pub(crate) fn reconstruct_missing(&self) -> Result<HashMap<ChunkAddr, Vec<u8>>, StoreError> {
        let geo = self.array.geometry();
        let failed = self.failed_disks();
        let mut known: HashMap<ChunkAddr, Vec<u8>> = HashMap::new();
        let mut missing: usize = 0;
        for d in 0..geo.disks() {
            for o in 0..geo.chunks_per_disk {
                let addr = ChunkAddr::new(d, o);
                // Un-rebuilt chunks inside an open window count as missing
                // alongside failed disks' chunks.
                if failed.contains(&d) || self.online.chunk_invalid(addr) {
                    missing += 1;
                    continue;
                }
                let bytes = self
                    .chunk(addr)?
                    .ok_or(StoreError::DiskFailed { disk: d })?;
                known.insert(addr, bytes);
            }
        }
        let cs = self.chunk_size;
        let mut progressed = true;
        while missing > 0 && progressed {
            progressed = false;
            let try_repair =
                |chunks: &[ChunkAddr], known: &mut HashMap<ChunkAddr, Vec<u8>>| -> bool {
                    let unknown: Vec<&ChunkAddr> =
                        chunks.iter().filter(|a| !known.contains_key(*a)).collect();
                    if unknown.len() != 1 {
                        return false;
                    }
                    let lost = *unknown[0];
                    let mut acc = vec![0u8; cs];
                    for a in chunks.iter().filter(|a| **a != lost) {
                        let v = &known[a];
                        for (x, b) in acc.iter_mut().zip(v) {
                            *x ^= b;
                        }
                    }
                    known.insert(lost, acc);
                    true
                };
            for (block, s) in geo.all_stripes() {
                if try_repair(&geo.stripe_chunks(block, s), &mut known) {
                    missing -= 1;
                    progressed = true;
                }
            }
            // Inner rows decode up to p_in erasures through the row code.
            let code = self.inner_code();
            for grp in 0..geo.v {
                for row in 0..geo.chunks_per_disk {
                    // Row units in code order: payload ascending, parities
                    // by role.
                    let ordered: Vec<ChunkAddr> = geo
                        .row_payload(grp, row)
                        .into_iter()
                        .chain(geo.inner_parities_of_row(grp, row))
                        .collect();
                    let unknown: Vec<usize> = ordered
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| !known.contains_key(*a))
                        .map(|(i, _)| i)
                        .collect();
                    if unknown.is_empty() || unknown.len() > geo.p_in {
                        continue;
                    }
                    let mut units: Vec<Option<Vec<u8>>> =
                        ordered.iter().map(|a| known.get(a).cloned()).collect();
                    code.reconstruct(&mut units).expect("within tolerance");
                    for i in unknown {
                        known.insert(ordered[i], units[i].clone().expect("reconstructed"));
                        missing -= 1;
                    }
                    progressed = true;
                }
            }
        }
        if missing == 0 {
            Ok(known)
        } else {
            Err(StoreError::DataLoss)
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn filled_store() -> (OiRaidStore, Vec<Vec<u8>>) {
        let store = OiRaidStore::new(OiRaidConfig::reference(), 16).unwrap();
        let mut expect = Vec::new();
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..16).map(|j| (idx * 37 + j * 11 + 5) as u8).collect();
            store.write_data(idx, &chunk).unwrap();
            expect.push(chunk);
        }
        (store, expect)
    }

    #[test]
    fn zero_initialised_store_is_parity_consistent() {
        let store = OiRaidStore::new(OiRaidConfig::reference(), 8).unwrap();
        assert!(store.check_parity().is_empty());
    }

    #[test]
    fn writes_preserve_parity_in_both_layers() {
        let (store, _) = filled_store();
        assert!(store.check_parity().is_empty());
    }

    #[test]
    fn read_back_all_data() {
        let (store, expect) = filled_store();
        for (idx, e) in expect.iter().enumerate() {
            assert_eq!(store.read_data(idx).unwrap(), *e, "idx {idx}");
        }
    }

    #[test]
    fn overwrites_keep_parity() {
        let (store, _) = filled_store();
        store.write_data(10, &[0xEE; 16]).unwrap();
        store.write_data(10, &[0x00; 16]).unwrap();
        store.write_data(10, &[0x42; 16]).unwrap();
        assert!(store.check_parity().is_empty());
        assert_eq!(store.read_data(10).unwrap(), vec![0x42; 16]);
    }

    #[test]
    fn degraded_read_single_failure() {
        let (store, expect) = filled_store();
        store.fail_disk(4).unwrap();
        for (idx, e) in expect.iter().enumerate() {
            assert_eq!(store.read_data(idx).unwrap(), *e, "idx {idx}");
        }
    }

    #[test]
    fn degraded_reads_are_counted_and_timed() {
        telemetry::set_enabled(true);
        let (store, _) = filled_store();
        store.read_data(0).unwrap();
        assert_eq!(store.telemetry().degraded_reads(), 0, "healthy reads free");
        let victim = store.locate(0).disk;
        store.fail_disk(victim).unwrap();
        // Degraded chunks on the failed disk; healthy ones stay free.
        let degraded: Vec<usize> = (0..store.data_chunks())
            .filter(|&i| store.locate(i).disk == victim)
            .take(3)
            .collect();
        for &i in &degraded {
            store.read_data(i).unwrap();
        }
        let t = store.telemetry();
        assert_eq!(t.degraded_reads(), degraded.len() as u64);
        assert_eq!(t.degraded_read_latency().count(), degraded.len() as u64);
        let snap = t.degraded_read_latency().snapshot();
        assert!(snap.p50() <= snap.p99() && snap.p99() <= snap.max);
        // A cloned store starts clean.
        assert_eq!(store.clone().telemetry().degraded_reads(), 0);
    }

    #[test]
    fn export_metrics_lints_and_mirrors_counters() {
        telemetry::set_enabled(true);
        let (store, _) = filled_store();
        store.fail_disk(store.locate(0).disk).unwrap();
        store.read_data(0).unwrap();
        let reg = Registry::new();
        store.export_metrics(&reg);
        let text = reg.prometheus();
        telemetry::lint_prometheus(&text).expect("clean exposition");
        assert!(text.contains("oi_store_degraded_reads_total 1"));
        assert!(text.contains("oi_device_reads_total{disk=\"0\"}"));
        assert!(text.contains("# TYPE oi_device_read_latency_ns histogram"));
        let json = reg.json();
        assert!(json.contains("\"oi_store_degraded_read_latency_ns\""));
    }

    #[test]
    fn rebuild_after_triple_failure_restores_everything() {
        let (store, expect) = filled_store();
        for d in [2, 9, 17] {
            store.fail_disk(d).unwrap();
        }
        for d in [2, 9, 17] {
            store.rebuild_disk(d).unwrap();
        }
        assert!(store.failed_disks().is_empty());
        assert!(store.check_parity().is_empty());
        for (idx, e) in expect.iter().enumerate() {
            assert_eq!(store.read_data(idx).unwrap(), *e, "idx {idx}");
        }
    }

    #[test]
    fn whole_group_rebuild() {
        let (store, expect) = filled_store();
        for d in [6, 7, 8] {
            store.fail_disk(d).unwrap();
        }
        for d in [6, 7, 8] {
            store.rebuild_disk(d).unwrap();
        }
        for (idx, e) in expect.iter().enumerate() {
            assert_eq!(store.read_data(idx).unwrap(), *e, "idx {idx}");
        }
    }

    #[test]
    fn unrecoverable_pattern_reports_data_loss() {
        let (store, _) = filled_store();
        for d in [0, 1, 3, 4] {
            store.fail_disk(d).unwrap();
        }
        assert_eq!(store.rebuild_disk(0), Err(StoreError::DataLoss));
    }

    #[test]
    fn degraded_write_to_failed_disk_roundtrips() {
        telemetry::set_enabled(true);
        let (store, _) = filled_store();
        let addr = store.locate(0);
        store.fail_disk(addr.disk).unwrap();
        store.write_data(0, &[0xA5u8; 16]).unwrap();
        // The lost chunk's new value is implied by the updated parities.
        assert_eq!(store.read_data(0).unwrap(), vec![0xA5u8; 16]);
        assert_eq!(store.telemetry().degraded_writes(), 1);
        assert_eq!(store.telemetry().degraded_write_latency().count(), 1);
        // After rebuild, the write has materialised and parity is clean.
        store.rebuild_disk(addr.disk).unwrap();
        assert!(store.check_parity().is_empty());
        assert_eq!(store.read_data(0).unwrap(), vec![0xA5u8; 16]);
    }

    #[test]
    fn degraded_writes_survive_triple_failure_and_rebuild() {
        let (store, mut expect) = filled_store();
        for d in [2, 9, 17] {
            store.fail_disk(d).unwrap();
        }
        // Overwrite every fifth chunk while three disks are down.
        for idx in (0..store.data_chunks()).step_by(5) {
            let chunk: Vec<u8> = (0..16).map(|j| (idx * 53 + j * 29 + 11) as u8).collect();
            store.write_data(idx, &chunk).unwrap();
            expect[idx] = chunk;
        }
        for (idx, e) in expect.iter().enumerate() {
            assert_eq!(store.read_data(idx).unwrap(), *e, "degraded idx {idx}");
        }
        for d in [2, 9, 17] {
            store.rebuild_disk(d).unwrap();
        }
        assert!(store.check_parity().is_empty());
        for (idx, e) in expect.iter().enumerate() {
            assert_eq!(store.read_data(idx).unwrap(), *e, "rebuilt idx {idx}");
        }
    }

    #[test]
    fn degraded_write_errors_with_data_loss_when_unrecoverable() {
        let (store, _) = filled_store();
        // Four failures in a pattern the layout cannot survive: chunks
        // that still decode locally accept writes, the rest report the
        // loss as an error instead of panicking.
        for d in [0, 1, 3, 4] {
            store.fail_disk(d).unwrap();
        }
        let mut losses = 0;
        for idx in 0..store.data_chunks() {
            if ![0usize, 1, 3, 4].contains(&store.locate(idx).disk) {
                continue;
            }
            match store.write_data(idx, &[0x3Cu8; 16]) {
                Ok(()) => assert_eq!(store.read_data(idx).unwrap(), vec![0x3Cu8; 16]),
                Err(e) => {
                    assert_eq!(e, StoreError::DataLoss, "idx {idx}");
                    losses += 1;
                }
            }
        }
        assert!(losses > 0, "pattern [0,1,3,4] must lose some chunk");
    }

    #[test]
    fn byte_range_io_roundtrips_across_chunk_boundaries() {
        let (store, _) = filled_store();
        // An unaligned range spanning three chunks.
        let payload: Vec<u8> = (0..40).map(|i| (i * 7 + 1) as u8).collect();
        store.write_bytes(10, &payload).unwrap();
        let mut back = vec![0u8; 40];
        store.read_bytes(10, &mut back).unwrap();
        assert_eq!(back, payload);
        assert!(store.check_parity().is_empty());
        // Neighbouring bytes are untouched by the read-modify-write.
        let mut head = vec![0u8; 10];
        store.read_bytes(0, &mut head).unwrap();
        let expect_head: Vec<u8> = (0..10).map(|j| ((j * 11) + 5) as u8).collect();
        assert_eq!(head, expect_head);
    }

    #[test]
    fn byte_range_io_survives_failures() {
        let (store, _) = filled_store();
        let payload = vec![0xABu8; 64];
        store.write_bytes(100, &payload).unwrap();
        for d in [1, 8, 15] {
            store.fail_disk(d).unwrap();
        }
        let mut back = vec![0u8; 64];
        store.read_bytes(100, &mut back).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn unaligned_tail_chunk_rmw_roundtrips() {
        // Partial write into the *last* chunk of the array at an unaligned
        // offset with an unaligned length: the read-modify-write must
        // preserve the untouched head and tail bytes.
        let (store, expect) = filled_store();
        let cap = store.capacity_bytes();
        let last = store.data_chunks() - 1;
        store.write_bytes(cap - 7, &[0x77u8; 5]).unwrap();
        let mut want = expect[last].clone();
        for b in &mut want[9..14] {
            *b = 0x77;
        }
        assert_eq!(store.read_data(last).unwrap(), want);
        assert!(store.check_parity().is_empty());
        // And via the byte path, straddling the untouched tail.
        let mut back = vec![0u8; 16];
        store.read_bytes(cap - 16, &mut back).unwrap();
        assert_eq!(back, want);
    }

    #[test]
    fn unaligned_tail_chunk_rmw_roundtrips_degraded() {
        // The same partial-tail read-modify-write with the home disk down:
        // the RMW read reconstructs, the write takes the degraded path.
        let (store, expect) = filled_store();
        let cap = store.capacity_bytes();
        let last = store.data_chunks() - 1;
        store.fail_disk(store.locate(last).disk).unwrap();
        store.write_bytes(cap - 3, &[0x88u8; 3]).unwrap();
        let mut want = expect[last].clone();
        for b in &mut want[13..16] {
            *b = 0x88;
        }
        let mut back = vec![0u8; 16];
        store.read_bytes(cap - 16, &mut back).unwrap();
        assert_eq!(back, want);
        assert!(store.telemetry().degraded_writes() >= 1);
        // Unaligned range spanning a healthy/degraded chunk boundary.
        let mid = (last as u64 - 1) * 16 + 11; // 5 bytes in last-1, 9 in last
        store.write_bytes(mid, &[0x99u8; 14]).unwrap();
        let mut span = vec![0u8; 14];
        store.read_bytes(mid, &mut span).unwrap();
        assert_eq!(span, vec![0x99u8; 14]);
        // Rebuild materialises everything bit-identically.
        store.rebuild_disk(store.locate(last).disk).unwrap();
        assert!(store.check_parity().is_empty());
        let mut final_back = vec![0u8; 16];
        store.read_bytes(cap - 16, &mut final_back).unwrap();
        assert_eq!(&final_back[13..16], &[0x88u8; 3]);
        assert_eq!(&final_back[0..9], &[0x99u8; 9]);
    }

    #[test]
    fn byte_range_bounds_checked() {
        let (store, _) = filled_store();
        let cap = store.capacity_bytes();
        let mut buf = [0u8; 4];
        assert!(store.read_bytes(cap - 2, &mut buf).is_err());
        assert!(store.write_bytes(cap - 2, &[0u8; 4]).is_err());
        assert!(store.read_bytes(cap - 4, &mut buf).is_ok());
    }

    #[test]
    fn scrub_repairs_corrupted_data_chunk() {
        let (store, expect) = filled_store();
        let addr = store.locate(20);
        store.corrupt_chunk(addr, 0x5A).unwrap();
        assert!(!store.check_parity().is_empty(), "corruption is visible");
        let report = store.scrub();
        assert!(
            report.repaired_corruption.contains(&addr),
            "{report}: {:?}",
            report.repaired_corruption
        );
        assert!(report.repaired_latent.is_empty());
        assert!(report.unrecoverable.is_empty());
        assert!(store.check_parity().is_empty());
        assert_eq!(store.read_data(20).unwrap(), expect[20]);
    }

    #[test]
    fn scrub_repairs_corrupted_inner_parity() {
        let (store, _) = filled_store();
        // Disk 0 offset 0 is inner parity (member 0, row 0).
        let addr = ChunkAddr::new(0, 0);
        store.corrupt_chunk(addr, 0xFF).unwrap();
        let report = store.scrub();
        assert_eq!(report.repaired_corruption, vec![addr]);
        assert!(store.check_parity().is_empty());
    }

    #[test]
    fn scrub_repairs_corrupted_outer_parity() {
        let (store, _) = filled_store();
        // Find an outer-parity chunk.
        let geo_total = store.array().chunks_per_disk();
        let mut target = None;
        'outer: for d in 0..store.array().disks() {
            for o in 0..geo_total {
                let a = ChunkAddr::new(d, o);
                if store.array().chunk_role(a) == layout::Role::Parity {
                    target = Some(a);
                    break 'outer;
                }
            }
        }
        let addr = target.expect("outer parity exists");
        store.corrupt_chunk(addr, 0x0F).unwrap();
        let report = store.scrub();
        assert!(
            report.repaired_corruption.contains(&addr),
            "{:?}",
            report.repaired_corruption
        );
        assert!(store.check_parity().is_empty());
    }

    #[test]
    fn scrub_handles_multiple_scattered_corruptions() {
        let (store, expect) = filled_store();
        // Corrupt chunks in different rows and stripes (distinct groups).
        let a1 = store.locate(5);
        let a2 = store.locate(40);
        let (g1, g2) = (
            store.array().group_of(a1.disk),
            store.array().group_of(a2.disk),
        );
        if g1 == g2 {
            return; // geometry places these apart for the reference config
        }
        store.corrupt_chunk(a1, 0x11).unwrap();
        store.corrupt_chunk(a2, 0x22).unwrap();
        store.scrub();
        assert!(store.check_parity().is_empty());
        assert_eq!(store.read_data(5).unwrap(), expect[5]);
        assert_eq!(store.read_data(40).unwrap(), expect[40]);
    }

    #[test]
    fn scrub_on_clean_store_is_a_no_op() {
        let (store, _) = filled_store();
        let report = store.scrub();
        assert!(report.is_clean(), "{report}");
        assert_eq!(
            report.scanned,
            (store.array().disks() * store.array().chunks_per_disk()) as u64
        );
        assert_eq!(report.retries, 0);
        assert!(report.to_string().contains("0 corruption repairs"));
    }

    #[test]
    fn scrub_repairs_latent_sectors_in_place() {
        use blockdev::{FaultConfig, FaultInjectingDevice};
        let cfg = OiRaidConfig::reference();
        let devices: Vec<_> = (0..cfg.disks())
            .map(|_| {
                FaultInjectingDevice::new(
                    MemDevice::new(16, cfg.chunks_per_disk()),
                    FaultConfig::default(),
                )
            })
            .collect();
        let store = OiRaidStore::with_devices(cfg, 16, devices).unwrap();
        let mut expect = Vec::new();
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..16).map(|j| (idx * 37 + j * 11 + 5) as u8).collect();
            store.write_data(idx, &chunk).unwrap();
            expect.push(chunk);
        }
        // Deterministic latent sector errors on two disks in different
        // groups.
        for d in [5, 12] {
            store.devices()[d].set_config(FaultConfig {
                seed: 7,
                latent_per_mille: 200,
                ..FaultConfig::default()
            });
        }
        let latent: Vec<ChunkAddr> = [5usize, 12]
            .into_iter()
            .flat_map(|d| (0..store.array().chunks_per_disk()).map(move |o| ChunkAddr::new(d, o)))
            .filter(|a| store.devices()[a.disk].is_latent_bad(a.offset))
            .collect();
        assert!(!latent.is_empty(), "seed 7 plants latent errors");
        let report = store.scrub();
        assert_eq!(report.repaired_latent, latent, "{report}");
        assert!(report.repaired_corruption.is_empty());
        assert!(report.unrecoverable.is_empty());
        assert!(!report.is_clean());
        // Repaired by rewrite: with the fault config still armed, the
        // chunks read clean (remapped) and carry the right bytes.
        for a in &latent {
            assert!(!store.devices()[a.disk].is_latent_bad(a.offset), "{a:?}");
        }
        assert!(store.check_parity().is_empty());
        for (idx, e) in expect.iter().enumerate() {
            assert_eq!(store.read_data(idx).unwrap(), *e, "idx {idx}");
        }
        // A second pass finds nothing left to do.
        assert!(store.scrub().is_clean());
    }

    #[test]
    fn scrub_skips_failed_disks_but_heals_latent_elsewhere() {
        use blockdev::{FaultConfig, FaultInjectingDevice};
        let cfg = OiRaidConfig::reference();
        let devices: Vec<_> = (0..cfg.disks())
            .map(|_| {
                FaultInjectingDevice::new(
                    MemDevice::new(8, cfg.chunks_per_disk()),
                    FaultConfig::default(),
                )
            })
            .collect();
        let store = OiRaidStore::with_devices(cfg, 8, devices).unwrap();
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..8).map(|j| (idx * 37 + j * 11 + 5) as u8).collect();
            store.write_data(idx, &chunk).unwrap();
        }
        store.devices()[5].set_config(FaultConfig {
            seed: 7,
            latent_per_mille: 200,
            ..FaultConfig::default()
        });
        store.fail_disk(10).unwrap();
        let report = store.scrub();
        let cpd = store.array().chunks_per_disk();
        assert_eq!(
            report.scanned,
            ((store.array().disks() - 1) * cpd) as u64,
            "failed disk not probed"
        );
        assert!(!report.repaired_latent.is_empty(), "{report}");
        assert!(report.unrecoverable.is_empty());
        assert!(
            report.repaired_latent.iter().all(|a| a.disk == 5),
            "repairs only on the latent disk"
        );
        assert_eq!(store.failed_disks(), vec![10], "scrub does not rebuild");
    }

    // Regression: the corruption sweep used a check-then-reread pattern
    // (`expect("checked readable")`) that panicked when a transient fault
    // hit between the probe and the use. Scrubbing corruption on flaky
    // media must retry, degrade gracefully, and still converge.
    #[test]
    fn scrub_repairs_corruption_under_transient_faults() {
        use blockdev::{FaultConfig, FaultInjectingDevice};
        let cfg = OiRaidConfig::reference();
        let devices: Vec<_> = (0..cfg.disks())
            .map(|_| {
                FaultInjectingDevice::new(
                    MemDevice::new(16, cfg.chunks_per_disk()),
                    FaultConfig::default(),
                )
            })
            .collect();
        let store = OiRaidStore::with_devices(cfg, 16, devices).unwrap();
        let mut expect = Vec::new();
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..16).map(|j| (idx * 37 + j * 11 + 5) as u8).collect();
            store.write_data(idx, &chunk).unwrap();
            expect.push(chunk);
        }
        let addr = store.locate(20);
        store.corrupt_chunk(addr, 0x5A).unwrap();
        for (d, dev) in store.devices().iter().enumerate() {
            dev.set_config(FaultConfig {
                seed: 0xC0DE ^ (d as u64).wrapping_mul(0x9E37_79B9),
                transient_read_per_mille: 50,
                transient_write_per_mille: 50,
                ..FaultConfig::default()
            });
        }
        // A row abandoned mid-repair (retry exhaustion) is legal — it just
        // takes another pass; with 50‰ faults and default retries, one
        // pass all but always suffices.
        let mut passes = 0;
        loop {
            let report = store.scrub();
            passes += 1;
            if report.is_clean() || passes >= 4 {
                assert!(report.is_clean(), "did not converge: {report}");
                break;
            }
        }
        for dev in store.devices() {
            dev.set_config(FaultConfig::default());
        }
        assert!(store.check_parity().is_empty());
        assert_eq!(store.read_data(20).unwrap(), expect[20]);
    }

    #[test]
    fn dual_parity_store_survives_five_failures() {
        let cfg = OiRaidConfig::new(bibd::fano(), 5, 1)
            .unwrap()
            .with_inner_parities(2)
            .unwrap();
        let store = OiRaidStore::new(cfg, 16).unwrap();
        let mut expect = Vec::new();
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..16).map(|j| (idx * 61 + j * 19 + 7) as u8).collect();
            store.write_data(idx, &chunk).unwrap();
            expect.push(chunk);
        }
        assert!(
            store.check_parity().is_empty(),
            "dual-parity rows consistent"
        );
        // Kill five disks (a whole group) and rebuild.
        for d in [5, 6, 7, 8, 9] {
            store.fail_disk(d).unwrap();
        }
        for d in [5, 6, 7, 8, 9] {
            store.rebuild_disk(d).unwrap();
        }
        assert!(store.check_parity().is_empty());
        for (idx, e) in expect.iter().enumerate() {
            assert_eq!(&store.read_data(idx).unwrap(), e, "idx {idx}");
        }
    }

    #[test]
    fn dual_parity_update_set_is_six_writes() {
        let cfg = OiRaidConfig::new(bibd::fano(), 5, 1)
            .unwrap()
            .with_inner_parities(2)
            .unwrap();
        let store = OiRaidStore::new(cfg, 8).unwrap();
        let a = store.array();
        for idx in (0..a.data_chunks()).step_by(11) {
            let set = a.update_set(a.locate_data(idx)).unwrap();
            assert_eq!(set.len(), 6, "1 data + 5 parity writes");
            let disks: std::collections::HashSet<usize> = set.iter().map(|c| c.disk).collect();
            assert_eq!(disks.len(), 6, "all on distinct disks");
        }
    }

    #[test]
    fn input_validation() {
        let (store, _) = filled_store();
        assert!(matches!(
            store.write_data(0, &[0u8; 3]),
            Err(StoreError::WrongChunkSize { found: 3, .. })
        ));
        let cap = store.data_chunks();
        assert!(matches!(
            store.write_data(cap, &[0u8; 16]),
            Err(StoreError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            store.read_data(cap),
            Err(StoreError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            store.fail_disk(99),
            Err(StoreError::DiskOutOfRange { disk: 99 })
        ));
        assert!(OiRaidStore::new(OiRaidConfig::reference(), 0).is_err());
    }

    #[test]
    fn batched_reads_match_sequential_and_dedupe() {
        let (store, expect) = filled_store();
        let idxs = [0usize, 5, 5, 1, 0, 9, 5];
        let got = store.read_data_batch(&idxs).unwrap();
        for (&idx, bytes) in idxs.iter().zip(&got) {
            assert_eq!(bytes, &expect[idx]);
        }
        // 7 requests, 4 distinct chunks fetched.
        assert_eq!(store.telemetry().batch_read_requests(), 7);
        assert_eq!(store.telemetry().batch_read_chunks(), 4);
    }

    #[test]
    fn batched_reads_reconstruct_through_failures() {
        let (store, expect) = filled_store();
        store.fail_disk(store.locate(0).disk).unwrap();
        store.fail_disk(store.locate(7).disk).unwrap();
        let idxs: Vec<usize> = (0..store.data_chunks()).collect();
        let got = store.read_data_batch(&idxs).unwrap();
        assert_eq!(got, expect);
        assert!(store.telemetry().degraded_reads() >= 2);
    }

    #[test]
    fn batched_writes_match_sequential_writes() {
        // Same byte-range writes (with overlaps crossing chunk boundaries)
        // through write_bytes one-at-a-time vs one write_bytes_batch call.
        let (seq, _) = filled_store();
        let (bat, _) = filled_store();
        let writes: Vec<(u64, Vec<u8>)> = vec![
            (3, vec![0x11; 20]),
            (10, vec![0x22; 40]),  // overlaps the first
            (100, vec![0x33; 16]), // chunk-aligned
            (5, vec![0x44; 4]),    // rewrites part of the first
            (250, vec![0x55; 33]),
        ];
        for (off, data) in &writes {
            seq.write_bytes(*off, data).unwrap();
        }
        let refs: Vec<(u64, &[u8])> = writes.iter().map(|(o, d)| (*o, d.as_slice())).collect();
        let stats = bat.write_bytes_batch(&refs).unwrap();
        assert_eq!(stats.requests, 5);
        // The 5 requests span 12 chunk-touches one-at-a-time but only 9
        // distinct chunks — the batch performs exactly one RMW per chunk.
        assert_eq!(stats.chunks, 9);
        for idx in 0..seq.data_chunks() {
            assert_eq!(seq.read_data(idx).unwrap(), bat.read_data(idx).unwrap());
        }
        assert!(bat.check_parity().is_empty());
    }

    #[test]
    fn batched_writes_match_sequential_under_failures() {
        let (seq, _) = filled_store();
        let (bat, _) = filled_store();
        for s in [&seq, &bat] {
            s.fail_disk(s.locate(0).disk).unwrap();
            s.fail_disk(s.locate(6).disk).unwrap();
        }
        let writes: Vec<(u64, Vec<u8>)> = (0..12)
            .map(|i| (i as u64 * 13, vec![(0xA0 + i) as u8; 21]))
            .collect();
        for (off, data) in &writes {
            seq.write_bytes(*off, data).unwrap();
        }
        let refs: Vec<(u64, &[u8])> = writes.iter().map(|(o, d)| (*o, d.as_slice())).collect();
        bat.write_bytes_batch(&refs).unwrap();
        // Degraded reads agree now, and every byte agrees after rebuild.
        for idx in 0..seq.data_chunks() {
            assert_eq!(seq.read_data(idx).unwrap(), bat.read_data(idx).unwrap());
        }
        for s in [&seq, &bat] {
            for d in s.failed_disks() {
                s.rebuild_disk(d).unwrap();
            }
            assert!(s.check_parity().is_empty());
        }
        for idx in 0..seq.data_chunks() {
            assert_eq!(seq.read_data(idx).unwrap(), bat.read_data(idx).unwrap());
        }
    }

    #[test]
    fn batch_bounds_are_checked_before_any_io() {
        let store = OiRaidStore::new(OiRaidConfig::reference(), 16).unwrap();
        let cap = store.capacity_bytes();
        let big = [0xFF; 8];
        assert!(matches!(
            store.write_bytes_batch(&[(0, &[1u8; 4][..]), (cap - 4, &big[..])]),
            Err(StoreError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            store.read_data_batch(&[0, store.data_chunks()]),
            Err(StoreError::IndexOutOfRange { .. })
        ));
        // Nothing was applied.
        assert_eq!(store.read_data(0).unwrap(), vec![0u8; 16]);
        assert_eq!(store.telemetry().foreground_writes(), 0);
    }

    #[test]
    fn online_reconfig_through_shared_ref() {
        // The satellite point: both setters now work through `&self`,
        // even behind an Arc shared with live I/O.
        let store = std::sync::Arc::new(OiRaidStore::new(OiRaidConfig::reference(), 16).unwrap());
        store.set_retry_policy(RetryPolicy::none());
        assert_eq!(store.retry_policy(), RetryPolicy::none());
        store.set_dag_workers(Some(5));
        assert_eq!(store.dag_workers(), Some(5));
        store.set_dag_workers(None);
        assert_eq!(store.dag_workers(), None);
    }
}
