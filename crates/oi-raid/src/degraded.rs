//! Degraded-mode simulation: a rebuild competing with foreground user
//! traffic on the same disks (experiment E8).

use disksim::{DiskSpec, SimTime, Simulation, Summary, TaskSpec, Workload};
use layout::{RecoveryPlan, WriteTarget};

use crate::array::OiRaid;
use crate::OiRaidConfig;

/// A degraded-mode experiment: one recovery plan executed while a
/// foreground workload runs over the surviving disks.
///
/// # Example
///
/// ```
/// use disksim::{ArrivalProcess, DiskSpec, SimTime, Workload, WorkloadKind};
/// use layout::{Layout, SparePolicy};
/// use oi_raid::{DegradedScenario, OiRaid, OiRaidConfig};
///
/// let array = OiRaid::new(OiRaidConfig::reference()).unwrap();
/// let plan = array.recovery_plan(&[0], SparePolicy::Distributed).unwrap();
/// let scenario = DegradedScenario {
///     spec: DiskSpec::hdd_7200(1 << 30),
///     chunk_bytes: (1 << 30) / 9,
///     workload: Workload::new(
///         WorkloadKind::UniformRandom,
///         ArrivalProcess::Poisson { rate: 50.0 },
///         64 << 10,
///         7,
///     ),
///     workload_duration: SimTime::from_secs_f64(5.0),
///     rebuild_window: 8,
///     low_priority_rebuild: false,
/// };
/// let run = scenario.run(&plan);
/// assert!(run.rebuild_time > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DegradedScenario {
    /// The disk model.
    pub spec: DiskSpec,
    /// Bytes per layout chunk (capacity / chunks_per_disk for full-disk
    /// rebuild experiments).
    pub chunk_bytes: u64,
    /// The foreground workload.
    pub workload: Workload,
    /// How long foreground arrivals keep coming.
    pub workload_duration: SimTime,
    /// Maximum rebuild items in flight (0 = unlimited). Real rebuilds pace
    /// themselves so user I/O can interleave; item `i`'s reads wait for item
    /// `i − window`'s write. The rebuild pipeline stays full, so makespan is
    /// barely affected, but foreground requests no longer queue behind the
    /// whole rebuild.
    pub rebuild_window: usize,
    /// Run rebuild I/O at lower scheduling priority than foreground
    /// requests (non-preemptive priority queues per disk). Trades rebuild
    /// time for user latency — the knob every production rebuilder exposes.
    pub low_priority_rebuild: bool,
}

/// Results of a degraded-mode run.
#[derive(Debug)]
pub struct DegradedRun {
    /// Completion time of the rebuild (with the workload competing).
    pub rebuild_time: SimTime,
    /// Foreground latency while rebuilding.
    pub degraded_latency: Summary,
    /// Foreground latency of the identical workload on an idle (healthy)
    /// array — the baseline the degradation is measured against.
    pub idle_latency: Summary,
}

impl DegradedScenario {
    /// Runs the scenario: once with rebuild + workload, once workload-only.
    pub fn run(&self, plan: &RecoveryPlan) -> DegradedRun {
        let (rebuild_time, degraded_latency) = self.run_once(plan, true);
        let (_, idle_latency) = self.run_once(plan, false);
        DegradedRun {
            rebuild_time,
            degraded_latency,
            idle_latency,
        }
    }

    fn run_once(&self, plan: &RecoveryPlan, with_rebuild: bool) -> (SimTime, Summary) {
        let mut sim = Simulation::new();
        let disk_ids: Vec<_> = (0..plan.disks())
            .map(|_| sim.add_disk(self.spec.clone()))
            .collect();
        let spare_ids: Vec<_> = plan
            .failed()
            .iter()
            .map(|_| sim.add_disk(self.spec.clone()))
            .collect();
        let rebuild_priority = if self.low_priority_rebuild {
            disksim::DEFAULT_PRIORITY + 64
        } else {
            disksim::DEFAULT_PRIORITY
        };
        let mut rebuild_writes: Vec<disksim::TaskId> = Vec::new();
        if with_rebuild {
            for (i, item) in plan.items().iter().enumerate() {
                let pace = (self.rebuild_window > 0 && i >= self.rebuild_window)
                    .then(|| rebuild_writes[i - self.rebuild_window]);
                let mut reads: Vec<_> = item
                    .reads
                    .iter()
                    .map(|r| {
                        let mut t = TaskSpec::read(disk_ids[r.disk], self.chunk_bytes)
                            .with_priority(rebuild_priority);
                        if let Some(p) = pace {
                            t = t.after(p);
                        }
                        sim.add_task(t)
                    })
                    .collect();
                for &dep in &item.depends {
                    let dep_write = rebuild_writes[dep];
                    let dep_item = &plan.items()[dep];
                    let dep_target = match dep_item.write {
                        WriteTarget::Spare(i) => spare_ids[i],
                        WriteTarget::Surviving { disk } => disk_ids[disk],
                        WriteTarget::InPlace => disk_ids[dep_item.lost.disk],
                    };
                    reads.push(
                        sim.add_task(
                            TaskSpec::read(dep_target, self.chunk_bytes)
                                .with_priority(rebuild_priority)
                                .after(dep_write),
                        ),
                    );
                }
                let target = match item.write {
                    WriteTarget::Spare(i) => spare_ids[i],
                    WriteTarget::Surviving { disk } => disk_ids[disk],
                    WriteTarget::InPlace => disk_ids[item.lost.disk],
                };
                let mut spec = TaskSpec::write(target, self.chunk_bytes)
                    .with_priority(rebuild_priority)
                    .after_all(reads);
                if let Some(p) = pace {
                    spec = spec.after(p);
                }
                let w = sim.add_task(spec);
                rebuild_writes.push(w);
            }
        }
        // Foreground reads hit the surviving data disks only.
        let survivors: Vec<_> = (0..plan.disks())
            .filter(|d| !plan.failed().contains(d))
            .map(|d| disk_ids[d])
            .collect();
        self.workload
            .generate(&mut sim, &survivors, self.workload_duration);
        let result = sim.run();
        let rebuild_time = rebuild_writes
            .iter()
            .filter_map(|t| result.finish_time(*t))
            .max()
            .unwrap_or(SimTime::ZERO);
        let latency = Summary::from_samples(&result.latencies_tagged(disksim::FOREGROUND_TAG));
        (rebuild_time, latency)
    }
}

/// Convenience: the reference-array scenario used by examples and E8.
pub fn reference_scenario(rate: f64, seed: u64) -> (OiRaid, DegradedScenario) {
    use disksim::{ArrivalProcess, WorkloadKind};
    let array = OiRaid::new(OiRaidConfig::reference()).expect("reference config");
    let capacity: u64 = 500 * 1000 * 1000; // 500 MB toy disks keep sims fast
    let chunk_bytes = capacity / array.config().chunks_per_disk() as u64;
    let scenario = DegradedScenario {
        spec: DiskSpec::hdd_7200(capacity),
        chunk_bytes,
        workload: Workload::new(
            WorkloadKind::UniformRandom,
            ArrivalProcess::Poisson { rate },
            64 << 10,
            seed,
        ),
        workload_duration: SimTime::from_secs_f64(10.0),
        rebuild_window: 8,
        low_priority_rebuild: false,
    };
    (array, scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use layout::{Layout, SparePolicy};

    #[test]
    fn rebuild_slows_foreground() {
        let (array, scenario) = reference_scenario(100.0, 3);
        let plan = array.recovery_plan(&[0], SparePolicy::Distributed).unwrap();
        let run = scenario.run(&plan);
        assert!(run.rebuild_time > SimTime::ZERO);
        assert!(run.degraded_latency.count > 0);
        assert!(
            run.degraded_latency.mean >= run.idle_latency.mean,
            "competition cannot make latency better: {} vs {}",
            run.degraded_latency.mean,
            run.idle_latency.mean
        );
    }

    #[test]
    fn low_priority_rebuild_trades_latency_for_time() {
        let (array, mut scenario) = reference_scenario(200.0, 8);
        let plan = array.recovery_plan(&[0], SparePolicy::Distributed).unwrap();
        let fifo = scenario.run(&plan);
        scenario.low_priority_rebuild = true;
        let prio = scenario.run(&plan);
        assert!(
            prio.degraded_latency.p95 <= fifo.degraded_latency.p95,
            "prioritised foreground cannot have worse p95: {} vs {}",
            prio.degraded_latency.p95,
            fifo.degraded_latency.p95
        );
        assert!(prio.rebuild_time >= fifo.rebuild_time);
    }

    #[test]
    fn workload_only_baseline_has_no_rebuild() {
        let (array, scenario) = reference_scenario(50.0, 4);
        let plan = array.recovery_plan(&[5], SparePolicy::Distributed).unwrap();
        let (t, summary) = scenario.run_once(&plan, false);
        assert_eq!(t, SimTime::ZERO);
        assert!(summary.count > 0);
    }
}
