//! Multi-failure analysis and planning by decode fixpoint.
//!
//! Both layers are RAID5, so a stripe (inner row or outer stripe) is
//! decodable exactly when at most one of its chunks is missing. Starting
//! from the failed disks' chunks, we repeatedly repair every stripe with a
//! single missing chunk until nothing changes. If all chunks come back, the
//! failure pattern is survivable — this is how the "tolerates at least three
//! disk failures" claim (C4) is *checked* rather than assumed, and how
//! multi-failure recovery plans (experiment E9) are produced, including
//! cascades where an outer repair feeds an inner repair.

use std::collections::{BTreeSet, HashMap};

use layout::{
    assign_writes, ChunkAddr, ChunkRecovery, LayoutError, RecoveryPlan, SparePolicy, WriteTarget,
};

use crate::array::OiRaid;

/// Whether the failure pattern is survivable (duplicate or out-of-range
/// entries are never survivable-relevant: out-of-range returns `false`).
pub(crate) fn survives(array: &OiRaid, failed: &[usize]) -> bool {
    let geo = array.geometry();
    let n = geo.disks();
    if failed.iter().any(|&d| d >= n) {
        return false;
    }
    run_fixpoint(array, failed, &BTreeSet::new(), None)
}

/// Builds a recovery plan for an arbitrary survivable failure pattern.
pub(crate) fn multi_failure_plan(
    array: &OiRaid,
    failed: &[usize],
    policy: SparePolicy,
) -> Result<RecoveryPlan, LayoutError> {
    let geo = array.geometry();
    let n = geo.disks();
    let mut sorted = failed.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(LayoutError::DuplicateFailure { disk: w[0] });
        }
    }
    if let Some(&d) = sorted.last() {
        if d >= n {
            return Err(LayoutError::DiskOutOfRange { disk: d, disks: n });
        }
    }
    let mut items = Vec::new();
    if sorted.is_empty() {
        return Ok(RecoveryPlan::new(n, sorted, items));
    }
    if !run_fixpoint(array, &sorted, &BTreeSet::new(), Some(&mut items)) {
        return Err(LayoutError::DataLoss { failed: sorted });
    }
    assign_writes(policy, n, &sorted, &mut items);
    Ok(RecoveryPlan::new(n, sorted, items))
}

/// Runs the decode fixpoint. Initially-missing chunks are every chunk of
/// the `failed` disks plus the chunk-granular `extra_missing` set (latent
/// sector errors on otherwise-healthy disks — the alternate-read-set
/// machinery of the self-healing rebuild). With `plan` set, records one
/// [`ChunkRecovery`] per repaired chunk (reads reference originally-present
/// chunks; previously repaired inputs become `depends`). Returns whether
/// every chunk was recovered.
pub(crate) fn run_fixpoint(
    array: &OiRaid,
    failed: &[usize],
    extra_missing: &BTreeSet<ChunkAddr>,
    mut plan: Option<&mut Vec<ChunkRecovery>>,
) -> bool {
    let geo = array.geometry();
    let n = geo.disks();
    let t = geo.chunks_per_disk;
    let mut present = vec![true; n * t];
    let mut missing = 0usize;
    for &d in failed {
        for o in 0..t {
            present[d * t + o] = false;
            missing += 1;
        }
    }
    for a in extra_missing {
        if a.disk < n && a.offset < t && present[a.disk * t + a.offset] {
            present[a.disk * t + a.offset] = false;
            missing += 1;
        }
    }
    // Map repaired chunk -> plan item index, for dependency wiring.
    let mut repaired_item: HashMap<ChunkAddr, usize> = HashMap::new();
    let originally_failed = |a: ChunkAddr| failed.contains(&a.disk) || extra_missing.contains(&a);

    let mut progressed = true;
    while missing > 0 && progressed {
        progressed = false;
        // Outer stripes cover payload chunks.
        for (block, s) in geo.all_stripes() {
            let chunks = geo.stripe_chunks(block, s);
            let miss: Vec<&ChunkAddr> = chunks
                .iter()
                .filter(|a| !present[a.disk * t + a.offset])
                .collect();
            if miss.len() == 1 {
                let lost = *miss[0];
                repair(
                    lost,
                    chunks.iter().copied().filter(|a| *a != lost),
                    &mut present,
                    t,
                    &mut repaired_item,
                    &mut plan,
                    &originally_failed,
                );
                missing -= 1;
                progressed = true;
            }
        }
        // Inner rows cover everything (payload + inner parity); the row
        // code decodes up to p_in erasures. When several chunks of a row
        // come back together, the first plan item carries the shared reads.
        for grp in 0..geo.v {
            for row in 0..t {
                let chunks = geo.row_chunks(grp, row);
                let miss: Vec<ChunkAddr> = chunks
                    .iter()
                    .copied()
                    .filter(|a| !present[a.disk * t + a.offset])
                    .collect();
                if !miss.is_empty() && miss.len() <= geo.p_in {
                    for (mi, &lost) in miss.iter().enumerate() {
                        let sources: Vec<ChunkAddr> = if mi == 0 {
                            chunks
                                .iter()
                                .copied()
                                .filter(|a| !miss.contains(a))
                                .collect()
                        } else {
                            Vec::new()
                        };
                        repair(
                            lost,
                            sources.into_iter(),
                            &mut present,
                            t,
                            &mut repaired_item,
                            &mut plan,
                            &originally_failed,
                        );
                        missing -= 1;
                    }
                    progressed = true;
                }
            }
        }
    }
    missing == 0
}

#[allow(clippy::too_many_arguments)]
fn repair(
    lost: ChunkAddr,
    sources: impl Iterator<Item = ChunkAddr>,
    present: &mut [bool],
    t: usize,
    repaired_item: &mut HashMap<ChunkAddr, usize>,
    plan: &mut Option<&mut Vec<ChunkRecovery>>,
    originally_failed: &impl Fn(ChunkAddr) -> bool,
) {
    present[lost.disk * t + lost.offset] = true;
    if let Some(items) = plan.as_deref_mut() {
        let mut reads = Vec::new();
        let mut depends = Vec::new();
        for src in sources {
            if originally_failed(src) {
                depends.push(repaired_item[&src]);
            } else {
                reads.push(src);
            }
        }
        let idx = items.len();
        items.push(ChunkRecovery {
            lost,
            reads,
            depends,
            write: WriteTarget::Spare(0),
        });
        repaired_item.insert(lost, idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OiRaidConfig;
    use layout::Layout;

    fn reference() -> OiRaid {
        OiRaid::new(OiRaidConfig::reference()).unwrap()
    }

    #[test]
    fn all_single_and_double_failures_survive() {
        let a = reference();
        for d1 in 0..21 {
            assert!(a.survives(&[d1]), "[{d1}]");
            for d2 in d1 + 1..21 {
                assert!(a.survives(&[d1, d2]), "[{d1},{d2}]");
            }
        }
    }

    #[test]
    fn all_triple_failures_survive_exhaustively() {
        // The headline claim C4: every one of the C(21,3) = 1330 patterns.
        let a = reference();
        for d1 in 0..21 {
            for d2 in d1 + 1..21 {
                for d3 in d2 + 1..21 {
                    assert!(a.survives(&[d1, d2, d3]), "[{d1},{d2},{d3}]");
                }
            }
        }
    }

    #[test]
    fn whole_group_loss_survives() {
        let a = reference();
        assert!(a.survives(&[0, 1, 2]));
        assert!(a.survives(&[0, 1, 2, 10])); // group + 1 elsewhere
    }

    #[test]
    fn some_quadruple_failures_lose_data() {
        // 2+2 in two groups always shares a block (λ = 1) and collides on
        // some stripe for the reference skew.
        let a = reference();
        assert!(!a.survives(&[0, 1, 3, 4]));
    }

    #[test]
    fn fault_tolerance_is_exactly_three() {
        let a = reference();
        assert_eq!(a.fault_tolerance(), 3);
        // ... and not 4 (witness above).
        assert!(!a.survives(&[0, 1, 3, 4]));
    }

    #[test]
    fn out_of_range_never_survives() {
        let a = reference();
        assert!(!a.survives(&[99]));
    }

    #[test]
    fn multi_plan_covers_all_lost_chunks() {
        let a = reference();
        let plan = a.recovery_plan(&[0, 3], SparePolicy::Distributed).unwrap();
        assert_eq!(plan.total_writes(), 18); // 2 disks x 9 chunks
                                             // No reads from failed disks.
        let load = plan.read_load(21);
        assert_eq!(load[0], 0);
        assert_eq!(load[3], 0);
    }

    #[test]
    fn whole_group_plan_uses_dependencies() {
        let a = reference();
        let plan = a
            .recovery_plan(&[0, 1, 2], SparePolicy::Distributed)
            .unwrap();
        assert_eq!(plan.total_writes(), 27);
        // Inner-parity rows of the dead group can only be recomputed from
        // repaired payload: some item must carry dependencies.
        assert!(plan.items().iter().any(|i| !i.depends.is_empty()));
        // Dependencies always point backwards.
        for (idx, item) in plan.items().iter().enumerate() {
            for &dep in &item.depends {
                assert!(dep < idx);
            }
        }
    }

    #[test]
    fn unsurvivable_plan_errors() {
        let a = reference();
        assert!(matches!(
            a.recovery_plan(&[0, 1, 3, 4], SparePolicy::Dedicated),
            Err(LayoutError::DataLoss { .. })
        ));
    }

    #[test]
    fn duplicate_and_range_validation() {
        let a = reference();
        assert!(matches!(
            a.recovery_plan(&[2, 2], SparePolicy::Dedicated),
            Err(LayoutError::DuplicateFailure { disk: 2 })
        ));
        assert!(matches!(
            a.recovery_plan(&[99], SparePolicy::Dedicated),
            Err(LayoutError::DiskOutOfRange { .. })
        ));
    }

    fn dual_parity_array() -> OiRaid {
        // Fano outer, groups of 5, RAID6 inner: tolerance 2·2 + 1 = 5.
        let cfg = OiRaidConfig::new(bibd::fano(), 5, 1)
            .unwrap()
            .with_inner_parities(2)
            .unwrap();
        OiRaid::new(cfg).unwrap()
    }

    #[test]
    fn dual_parity_tolerates_five_failures_sampled() {
        let a = dual_parity_array();
        assert_eq!(a.fault_tolerance(), 5);
        let n = a.disks(); // 35
                           // Deterministic sample of 5-failure patterns including adversarial
                           // shapes (whole group = 5 disks, 3+2 across block-sharing groups).
        let patterns: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3, 4],      // whole group
            vec![0, 1, 2, 5, 6],      // 3 + 2 in groups sharing a block
            vec![0, 1, 5, 6, 10],     // 2+2+1
            vec![0, 7, 14, 21, 28],   // spread
            vec![30, 31, 32, 33, 34], // last group
            vec![0, 1, 2, 3, 34],     // 4 + 1
        ];
        for p in &patterns {
            assert!(a.survives(p), "{p:?}");
            assert!(
                a.recovery_plan(p, SparePolicy::Distributed).is_ok(),
                "{p:?}"
            );
        }
        // Pseudo-random sample on top.
        let mut s = 0xD00Du64;
        for _ in 0..40 {
            let mut p = Vec::new();
            while p.len() < 5 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let d = (s >> 33) as usize % n;
                if !p.contains(&d) {
                    p.push(d);
                }
            }
            assert!(a.survives(&p), "{p:?}");
        }
    }

    #[test]
    fn dual_parity_six_failures_can_lose_data() {
        let a = dual_parity_array();
        // 3 + 3 in two groups sharing a block, with member sets aligned to
        // the skew so a shared outer stripe loses both its chunks and the
        // cross-layer cascade cannot untangle it (witness found by search:
        // members {0, 3, 4} of groups 0 and 1). Many other 3 + 3 patterns
        // *do* survive through the cascade — tolerance is exactly 5.
        assert!(!a.survives(&[0, 3, 4, 5, 8, 9]));
        assert!(
            a.survives(&[0, 1, 2, 5, 6, 7]),
            "most 3+3 patterns cascade back"
        );
    }

    #[test]
    fn triple_failures_survive_on_larger_config() {
        let design = bibd::find_design(13, 4).unwrap();
        let a = OiRaid::new(OiRaidConfig::new(design, 5, 1).unwrap()).unwrap();
        // Spot-check a spread of triples on the 65-disk array.
        for (d1, d2, d3) in [
            (0, 1, 2),
            (0, 5, 10),
            (7, 21, 49),
            (62, 63, 64),
            (0, 32, 64),
        ] {
            assert!(a.survives(&[d1, d2, d3]), "[{d1},{d2},{d3}]");
        }
    }
}
