//! The [`OiRaid`] array type: geometry queries, logical data addressing,
//! the update path, and the [`Layout`] implementation.

use layout::{ChunkAddr, Layout, LayoutError, RecoveryPlan, Role, SparePolicy};

use crate::config::OiRaidConfig;
use crate::geometry::{Geometry, PayloadPos};
use crate::multifail;
use crate::recovery::{self, RecoveryStrategy};

/// Full classification of one physical chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkInfo {
    /// Inner-layer parity for row `row` of group `group`.
    InnerParity {
        /// The group.
        group: usize,
        /// The row (= chunk offset).
        row: usize,
    },
    /// A user-data chunk of outer stripe `(block, stripe)` at `pos`.
    Data {
        /// Design block index.
        block: usize,
        /// Stripe index within the block.
        stripe: usize,
        /// Position within the block.
        pos: usize,
    },
    /// The outer-parity chunk of outer stripe `(block, stripe)`.
    OuterParity {
        /// Design block index.
        block: usize,
        /// Stripe index within the block.
        stripe: usize,
    },
}

/// An OI-RAID array: `v` groups × `g` disks, BIBD outer layer, in-group
/// inner layer, RAID5 in both (see the [crate docs](crate)).
///
/// Implements [`Layout`], so it slots into the same experiment harness as
/// the baselines in the `layout` crate.
#[derive(Debug, Clone)]
pub struct OiRaid {
    cfg: OiRaidConfig,
    geo: Geometry,
}

impl OiRaid {
    /// Builds the array for `cfg`.
    ///
    /// # Errors
    ///
    /// Currently infallible given a validated config, but returns `Result`
    /// to keep room for geometry checks; the `Err` variant is unused.
    pub fn new(cfg: OiRaidConfig) -> Result<Self, LayoutError> {
        let geo = Geometry::new(&cfg);
        Ok(Self { cfg, geo })
    }

    /// The configuration.
    pub fn config(&self) -> &OiRaidConfig {
        &self.cfg
    }

    pub(crate) fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Number of groups `v`.
    pub fn groups(&self) -> usize {
        self.geo.v
    }

    /// Disks per group `g`.
    pub fn group_size(&self) -> usize {
        self.geo.g
    }

    /// The group a disk belongs to.
    pub fn group_of(&self, disk: usize) -> usize {
        self.geo.group_of(disk)
    }

    /// Classifies a physical chunk.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the geometry.
    pub fn chunk_info(&self, addr: ChunkAddr) -> ChunkInfo {
        assert!(
            addr.disk < self.disks() && addr.offset < self.geo.chunks_per_disk,
            "address {addr} out of range"
        );
        if self.geo.is_inner_parity(addr) {
            return ChunkInfo::InnerParity {
                group: self.geo.group_of(addr.disk),
                row: addr.offset,
            };
        }
        let p = self.geo.payload_pos(addr);
        if p.pos == self.geo.outer_parity_pos(p.stripe) {
            ChunkInfo::OuterParity {
                block: p.block,
                stripe: p.stripe,
            }
        } else {
            ChunkInfo::Data {
                block: p.block,
                stripe: p.stripe,
                pos: p.pos,
            }
        }
    }

    /// Number of user-data chunks the array holds:
    /// `b · stripes_per_block · (k − 1)`.
    pub fn data_chunks(&self) -> usize {
        self.geo.b * self.geo.stripes_per_block * (self.geo.k - 1)
    }

    /// Physical address of logical data chunk `idx` (data chunks are
    /// enumerated stripe-major: block, then stripe, then data position).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= data_chunks()`.
    pub fn locate_data(&self, idx: usize) -> ChunkAddr {
        assert!(idx < self.data_chunks(), "data index {idx} out of range");
        let per_stripe = self.geo.k - 1;
        let stripe_global = idx / per_stripe;
        let data_pos = idx % per_stripe;
        let block = stripe_global / self.geo.stripes_per_block;
        let stripe = stripe_global % self.geo.stripes_per_block;
        let ppos = self.geo.outer_parity_pos(stripe);
        let pos = if data_pos < ppos {
            data_pos
        } else {
            data_pos + 1
        };
        self.geo.stripe_chunk(PayloadPos { block, stripe, pos })
    }

    /// Logical index of the data chunk at `addr`, or `None` if `addr` holds
    /// parity.
    pub fn data_index(&self, addr: ChunkAddr) -> Option<usize> {
        match self.chunk_info(addr) {
            ChunkInfo::Data { block, stripe, pos } => {
                let ppos = self.geo.outer_parity_pos(stripe);
                let data_pos = if pos < ppos { pos } else { pos - 1 };
                Some((block * self.geo.stripes_per_block + stripe) * (self.geo.k - 1) + data_pos)
            }
            _ => None,
        }
    }

    /// The set of chunks written when the data chunk at `addr` is updated:
    /// the chunk itself, the `p_in` inner parities of its row, its outer
    /// parity, and the `p_in` inner parities of the outer parity's row —
    /// `1 + (2·p_in + 1)` writes, the optimum for a `(2·p_in + 1)`-failure-
    /// tolerant code (claim C6 / experiment E4; `p_in = 1` gives the
    /// paper's 4 writes).
    ///
    /// # Errors
    ///
    /// [`LayoutError::NotDataChunk`] if `addr` holds parity rather than
    /// user data.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the array geometry.
    pub fn update_set(&self, addr: ChunkAddr) -> Result<Vec<ChunkAddr>, LayoutError> {
        let ChunkInfo::Data { block, stripe, .. } = self.chunk_info(addr) else {
            return Err(LayoutError::NotDataChunk {
                disk: addr.disk,
                offset: addr.offset,
            });
        };
        let my_group = self.geo.group_of(addr.disk);
        let outer = self.geo.stripe_chunk(PayloadPos {
            block,
            stripe,
            pos: self.geo.outer_parity_pos(stripe),
        });
        let outer_group = self.geo.group_of(outer.disk);
        let mut set = vec![addr];
        set.extend(self.geo.inner_parities_of_row(my_group, addr.offset));
        set.push(outer);
        set.extend(self.geo.inner_parities_of_row(outer_group, outer.offset));
        Ok(set)
    }

    /// Builds a single-failure recovery plan with an explicit strategy
    /// (the default [`Layout::recovery_plan`] uses
    /// [`RecoveryStrategy::Outer`]).
    ///
    /// # Errors
    ///
    /// Same as [`Layout::recovery_plan`]; additionally requires exactly one
    /// failed disk.
    pub fn recovery_plan_with_strategy(
        &self,
        failed_disk: usize,
        policy: SparePolicy,
        strategy: RecoveryStrategy,
    ) -> Result<RecoveryPlan, LayoutError> {
        recovery::single_failure_plan(self, failed_disk, policy, strategy)
    }

    /// Builds a chunk-granular repair plan for an arbitrary set of
    /// unreadable chunks (latent sector errors, partially rebuilt disks):
    /// the alternate-read-set API the self-healing rebuild and repairing
    /// scrub re-plan through. Chunks outside `missing` are assumed
    /// readable; all items write in place.
    ///
    /// # Errors
    ///
    /// [`LayoutError::DiskOutOfRange`] for addresses outside the array,
    /// [`LayoutError::DataLoss`] when the missing set is not decodable.
    pub fn chunk_recovery_plan(
        &self,
        missing: &std::collections::BTreeSet<ChunkAddr>,
    ) -> Result<RecoveryPlan, LayoutError> {
        recovery::chunk_recovery_plan(self, missing)
    }
}

impl Layout for OiRaid {
    fn name(&self) -> String {
        format!(
            "OI-RAID(v={},k={},g={})",
            self.geo.v, self.geo.k, self.geo.g
        )
    }

    fn disks(&self) -> usize {
        self.geo.disks()
    }

    fn chunks_per_disk(&self) -> usize {
        self.geo.chunks_per_disk
    }

    fn fault_tolerance(&self) -> usize {
        // Any pattern of 2·p_in + 1 failures leaves at most one group with
        // more than p_in losses; that group repairs through the outer layer
        // while every other group repairs locally (checked by the
        // `multifail` fixpoint tests, including the dual-parity variant).
        2 * self.geo.p_in + 1
    }

    fn chunk_role(&self, addr: ChunkAddr) -> Role {
        match self.chunk_info(addr) {
            ChunkInfo::InnerParity { .. } => Role::InnerParity,
            ChunkInfo::OuterParity { .. } => Role::Parity,
            ChunkInfo::Data { .. } => Role::Data,
        }
    }

    fn survives(&self, failed: &[usize]) -> bool {
        multifail::survives(self, failed)
    }

    fn recovery_plan(
        &self,
        failed: &[usize],
        policy: SparePolicy,
    ) -> Result<RecoveryPlan, LayoutError> {
        match failed {
            [d] => recovery::single_failure_plan(self, *d, policy, RecoveryStrategy::Outer),
            _ => multifail::multi_failure_plan(self, failed, policy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> OiRaid {
        OiRaid::new(OiRaidConfig::reference()).unwrap()
    }

    #[test]
    fn geometry_counts() {
        let a = reference();
        assert_eq!(a.disks(), 21);
        assert_eq!(a.chunks_per_disk(), 9);
        assert_eq!(a.groups(), 7);
        assert_eq!(a.group_size(), 3);
        // 7 blocks x 6 stripes x 2 data chunks.
        assert_eq!(a.data_chunks(), 84);
    }

    #[test]
    fn efficiency_matches_closed_form() {
        let a = reference();
        // (k−1)/k · (g−1)/g = (2/3)(2/3) = 4/9.
        assert!((a.efficiency() - 4.0 / 9.0).abs() < 1e-12);
        assert!((a.storage_overhead() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn role_census() {
        let a = reference();
        let (mut data, mut outer, mut inner) = (0, 0, 0);
        for d in 0..a.disks() {
            for o in 0..a.chunks_per_disk() {
                match a.chunk_role(ChunkAddr::new(d, o)) {
                    Role::Data => data += 1,
                    Role::Parity => outer += 1,
                    Role::InnerParity => inner += 1,
                    Role::Spare => unreachable!(),
                }
            }
        }
        assert_eq!(data, 84);
        assert_eq!(outer, 42); // 7 blocks x 6 stripes x 1 parity
        assert_eq!(inner, 63); // 21 disks x 3 parity rows
    }

    #[test]
    fn data_addressing_roundtrip() {
        let a = reference();
        for idx in 0..a.data_chunks() {
            let addr = a.locate_data(idx);
            assert_eq!(a.chunk_role(addr), Role::Data, "idx {idx} -> {addr}");
            assert_eq!(a.data_index(addr), Some(idx));
        }
    }

    #[test]
    fn data_addresses_are_distinct() {
        let a = reference();
        let mut seen = std::collections::HashSet::new();
        for idx in 0..a.data_chunks() {
            assert!(seen.insert(a.locate_data(idx)), "idx {idx} duplicated");
        }
    }

    #[test]
    fn update_set_has_four_distinct_disks() {
        let a = reference();
        for idx in 0..a.data_chunks() {
            let addr = a.locate_data(idx);
            let set = a.update_set(addr).unwrap();
            assert_eq!(set.len(), 4, "idx {idx}");
            assert_eq!(set[0], addr);
            let mut disks: Vec<usize> = set.iter().map(|c| c.disk).collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(
                disks.len(),
                4,
                "idx {idx}: all four writes on distinct disks"
            );
            // Writes 1 is inner parity, 2 outer parity, 3 inner parity of 2.
            assert_eq!(a.chunk_role(set[1]), Role::InnerParity);
            assert_eq!(a.chunk_role(set[2]), Role::Parity);
            assert_eq!(a.chunk_role(set[3]), Role::InnerParity);
        }
    }

    #[test]
    fn update_set_rejects_parity_with_an_error() {
        let a = reference();
        // Offset 0 on disk 0 is inner parity (member 0, 0 mod 3 == 0).
        assert_eq!(
            a.update_set(ChunkAddr::new(0, 0)),
            Err(LayoutError::NotDataChunk { disk: 0, offset: 0 })
        );
        // Every parity chunk errors; every data chunk succeeds.
        for d in 0..a.disks() {
            for o in 0..a.chunks_per_disk() {
                let addr = ChunkAddr::new(d, o);
                let want_ok = a.chunk_role(addr) == Role::Data;
                assert_eq!(a.update_set(addr).is_ok(), want_ok, "{addr}");
            }
        }
    }

    #[test]
    fn larger_config_consistency() {
        let design = bibd::find_design(13, 4).unwrap();
        let cfg = OiRaidConfig::new(design, 5, 1).unwrap();
        let a = OiRaid::new(cfg).unwrap();
        assert_eq!(a.disks(), 65);
        // Efficiency (3/4)(4/5) = 0.6.
        assert!((a.efficiency() - 0.6).abs() < 1e-12);
        for idx in (0..a.data_chunks()).step_by(7) {
            let addr = a.locate_data(idx);
            assert_eq!(a.data_index(addr), Some(idx));
            assert_eq!(a.update_set(addr).unwrap().len(), 4);
        }
    }
}
