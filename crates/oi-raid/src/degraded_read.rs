//! Degraded-read planning: what must be fetched to serve a *read* of one
//! data chunk while disks are down — the user-latency side of the recovery
//! story (rebuilds move whole disks; degraded reads sit on the critical
//! path of every request that hits a failed disk).

use layout::{ChunkAddr, LayoutError};

use crate::array::OiRaid;

/// How a degraded read is served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadPlan {
    /// The data disk is healthy: one read.
    Direct(ChunkAddr),
    /// Reconstruct from the inner row: `g − miss` surviving row chunks, all
    /// inside the data chunk's own group.
    InnerDecode {
        /// Chunks to read (surviving row chunks).
        reads: Vec<ChunkAddr>,
    },
    /// Reconstruct from the outer stripe: `k − 1` chunks, one in each other
    /// member group of the block.
    OuterDecode {
        /// Chunks to read (surviving stripe chunks).
        reads: Vec<ChunkAddr>,
    },
}

impl ReadPlan {
    /// Number of chunk reads the plan issues.
    pub fn read_count(&self) -> usize {
        match self {
            ReadPlan::Direct(_) => 1,
            ReadPlan::InnerDecode { reads } | ReadPlan::OuterDecode { reads } => reads.len(),
        }
    }
}

impl OiRaid {
    /// Plans the cheapest single-level reconstruction read for logical data
    /// chunk `idx` under the failure pattern `failed`: direct if healthy,
    /// else inner-row decode (fewest reads when available), else
    /// outer-stripe decode.
    ///
    /// Reads served this way touch only healthy chunks; deeper cascades
    /// (both levels broken around the chunk) fall back to the full
    /// [`layout::Layout::recovery_plan`] machinery and are reported as
    /// [`LayoutError::DataLoss`] here — a real system would run the rebuild
    /// rather than serve that read online.
    ///
    /// # Errors
    ///
    /// [`LayoutError::DiskOutOfRange`] for bad patterns;
    /// [`LayoutError::DataLoss`] when no single-level decode exists.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn read_plan(&self, idx: usize, failed: &[usize]) -> Result<ReadPlan, LayoutError> {
        let geo = self.geometry();
        if let Some(&d) = failed.iter().find(|&&d| d >= geo.disks()) {
            return Err(LayoutError::DiskOutOfRange {
                disk: d,
                disks: geo.disks(),
            });
        }
        let addr = self.locate_data(idx);
        let down = |a: &ChunkAddr| failed.contains(&a.disk);
        if !down(&addr) {
            return Ok(ReadPlan::Direct(addr));
        }
        // Inner row: decodable when the row has at most p_in missing chunks.
        let grp = geo.group_of(addr.disk);
        let row = geo.row_chunks(grp, addr.offset);
        let missing = row.iter().filter(|a| down(a)).count();
        if missing <= geo.p_in {
            return Ok(ReadPlan::InnerDecode {
                reads: row.into_iter().filter(|a| !down(a)).collect(),
            });
        }
        // Outer stripe: decodable when the data chunk is its only loss.
        let p = geo.payload_pos(addr);
        let stripe = geo.stripe_chunks(p.block, p.stripe);
        if stripe.iter().filter(|a| down(a)).count() == 1 {
            return Ok(ReadPlan::OuterDecode {
                reads: stripe.into_iter().filter(|a| !down(a)).collect(),
            });
        }
        Err(LayoutError::DataLoss {
            failed: failed.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OiRaidConfig;
    use layout::Layout;

    fn reference() -> OiRaid {
        OiRaid::new(OiRaidConfig::reference()).unwrap()
    }

    #[test]
    fn healthy_reads_are_direct() {
        let a = reference();
        for idx in 0..a.data_chunks() {
            match a.read_plan(idx, &[]).unwrap() {
                ReadPlan::Direct(addr) => assert_eq!(addr, a.locate_data(idx)),
                other => panic!("expected direct, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_failure_prefers_inner_decode() {
        let a = reference();
        for idx in 0..a.data_chunks() {
            let addr = a.locate_data(idx);
            let plan = a.read_plan(idx, &[addr.disk]).unwrap();
            match plan {
                ReadPlan::InnerDecode { reads } => {
                    assert_eq!(reads.len(), 2); // g − 1 survivors
                    assert!(reads.iter().all(|r| r.disk != addr.disk));
                }
                other => panic!("idx {idx}: expected inner decode, got {other:?}"),
            }
        }
    }

    #[test]
    fn group_loss_falls_back_to_outer_decode() {
        let a = reference();
        // Fail all of group 0; data chunks there must decode via the outer
        // stripe with k − 1 = 2 remote reads.
        let failed = [0usize, 1, 2];
        for idx in 0..a.data_chunks() {
            let addr = a.locate_data(idx);
            if a.group_of(addr.disk) != 0 {
                continue;
            }
            match a.read_plan(idx, &failed).unwrap() {
                ReadPlan::OuterDecode { reads } => {
                    assert_eq!(reads.len(), 2);
                    assert!(reads.iter().all(|r| a.group_of(r.disk) != 0));
                }
                other => panic!("idx {idx}: expected outer decode, got {other:?}"),
            }
        }
    }

    #[test]
    fn read_counts_are_monotone_in_damage() {
        let a = reference();
        let idx = 10;
        let addr = a.locate_data(idx);
        let healthy = a.read_plan(idx, &[]).unwrap().read_count();
        let one = a.read_plan(idx, &[addr.disk]).unwrap().read_count();
        assert!(healthy <= one);
        assert_eq!(healthy, 1);
    }

    #[test]
    fn double_level_damage_reports_loss() {
        let a = reference();
        // Find a data chunk whose group has 2 failures (inner dead) and
        // whose outer stripe also lost a second chunk. A whole group plus a
        // carefully chosen second group does it; scan for a witness.
        let failed = [0usize, 1, 3, 4];
        // Pattern is unsurvivable overall, so some chunk must report loss.
        assert!(!a.survives(&failed));
        let mut saw_loss = false;
        for idx in 0..a.data_chunks() {
            if a.read_plan(idx, &failed).is_err() {
                saw_loss = true;
                break;
            }
        }
        assert!(saw_loss);
    }

    #[test]
    fn out_of_range_pattern_rejected() {
        let a = reference();
        assert!(matches!(
            a.read_plan(0, &[99]),
            Err(LayoutError::DiskOutOfRange { .. })
        ));
    }

    #[test]
    fn dual_parity_inner_decode_tolerates_two_in_group() {
        let cfg = OiRaidConfig::new(bibd::fano(), 5, 1)
            .unwrap()
            .with_inner_parities(2)
            .unwrap();
        let a = OiRaid::new(cfg).unwrap();
        let idx = 0;
        let addr = a.locate_data(idx);
        let grp = a.group_of(addr.disk);
        // Fail the data disk plus one more in the same group: still inner.
        let other = (0..a.disks())
            .find(|&d| a.group_of(d) == grp && d != addr.disk)
            .unwrap();
        match a.read_plan(idx, &[addr.disk, other]).unwrap() {
            ReadPlan::InnerDecode { reads } => assert_eq!(reads.len(), 3), // g − 2
            other => panic!("expected inner decode, got {other:?}"),
        }
    }
}
