//! Degraded-mode service: both halves of the "keep serving while broken"
//! story. The planning half ([`ReadPlan`]) answers what must be fetched to
//! serve a *read* of one data chunk while disks are down — the
//! user-latency side (degraded reads sit on the critical path of every
//! request that hits a failed disk). The simulation half
//! ([`DegradedScenario`], experiment E8) runs a whole rebuild against
//! foreground traffic on modeled disks and measures the interference.

use disksim::{DiskSpec, SimTime, Simulation, Summary, TaskSpec, Workload};
use layout::{ChunkAddr, LayoutError, RecoveryPlan, WriteTarget};

use crate::array::OiRaid;
use crate::OiRaidConfig;

/// How a degraded read is served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadPlan {
    /// The data disk is healthy: one read.
    Direct(ChunkAddr),
    /// Reconstruct from the inner row: `g − miss` surviving row chunks, all
    /// inside the data chunk's own group.
    InnerDecode {
        /// Chunks to read (surviving row chunks).
        reads: Vec<ChunkAddr>,
    },
    /// Reconstruct from the outer stripe: `k − 1` chunks, one in each other
    /// member group of the block.
    OuterDecode {
        /// Chunks to read (surviving stripe chunks).
        reads: Vec<ChunkAddr>,
    },
}

impl ReadPlan {
    /// Number of chunk reads the plan issues.
    pub fn read_count(&self) -> usize {
        match self {
            ReadPlan::Direct(_) => 1,
            ReadPlan::InnerDecode { reads } | ReadPlan::OuterDecode { reads } => reads.len(),
        }
    }
}

impl OiRaid {
    /// Plans the cheapest single-level reconstruction read for logical data
    /// chunk `idx` under the failure pattern `failed`: direct if healthy,
    /// else inner-row decode (fewest reads when available), else
    /// outer-stripe decode.
    ///
    /// Reads served this way touch only healthy chunks; deeper cascades
    /// (both levels broken around the chunk) fall back to the full
    /// [`layout::Layout::recovery_plan`] machinery and are reported as
    /// [`LayoutError::DataLoss`] here — a real system would run the rebuild
    /// rather than serve that read online.
    ///
    /// # Errors
    ///
    /// [`LayoutError::DiskOutOfRange`] for bad patterns;
    /// [`LayoutError::DataLoss`] when no single-level decode exists.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn read_plan(&self, idx: usize, failed: &[usize]) -> Result<ReadPlan, LayoutError> {
        let geo = self.geometry();
        if let Some(&d) = failed.iter().find(|&&d| d >= geo.disks()) {
            return Err(LayoutError::DiskOutOfRange {
                disk: d,
                disks: geo.disks(),
            });
        }
        let addr = self.locate_data(idx);
        let down = |a: &ChunkAddr| failed.contains(&a.disk);
        if !down(&addr) {
            return Ok(ReadPlan::Direct(addr));
        }
        // Inner row: decodable when the row has at most p_in missing chunks.
        let grp = geo.group_of(addr.disk);
        let row = geo.row_chunks(grp, addr.offset);
        let missing = row.iter().filter(|a| down(a)).count();
        if missing <= geo.p_in {
            return Ok(ReadPlan::InnerDecode {
                reads: row.into_iter().filter(|a| !down(a)).collect(),
            });
        }
        // Outer stripe: decodable when the data chunk is its only loss.
        let p = geo.payload_pos(addr);
        let stripe = geo.stripe_chunks(p.block, p.stripe);
        if stripe.iter().filter(|a| down(a)).count() == 1 {
            return Ok(ReadPlan::OuterDecode {
                reads: stripe.into_iter().filter(|a| !down(a)).collect(),
            });
        }
        Err(LayoutError::DataLoss {
            failed: failed.to_vec(),
        })
    }
}

/// A degraded-mode experiment: one recovery plan executed while a
/// foreground workload runs over the surviving disks.
///
/// # Example
///
/// ```
/// use disksim::{ArrivalProcess, DiskSpec, SimTime, Workload, WorkloadKind};
/// use layout::{Layout, SparePolicy};
/// use oi_raid::{DegradedScenario, OiRaid, OiRaidConfig};
///
/// let array = OiRaid::new(OiRaidConfig::reference()).unwrap();
/// let plan = array.recovery_plan(&[0], SparePolicy::Distributed).unwrap();
/// let scenario = DegradedScenario {
///     spec: DiskSpec::hdd_7200(1 << 30),
///     chunk_bytes: (1 << 30) / 9,
///     workload: Workload::new(
///         WorkloadKind::UniformRandom,
///         ArrivalProcess::Poisson { rate: 50.0 },
///         64 << 10,
///         7,
///     ),
///     workload_duration: SimTime::from_secs_f64(5.0),
///     rebuild_window: 8,
///     low_priority_rebuild: false,
/// };
/// let run = scenario.run(&plan);
/// assert!(run.rebuild_time > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DegradedScenario {
    /// The disk model.
    pub spec: DiskSpec,
    /// Bytes per layout chunk (capacity / chunks_per_disk for full-disk
    /// rebuild experiments).
    pub chunk_bytes: u64,
    /// The foreground workload.
    pub workload: Workload,
    /// How long foreground arrivals keep coming.
    pub workload_duration: SimTime,
    /// Maximum rebuild items in flight (0 = unlimited). Real rebuilds pace
    /// themselves so user I/O can interleave; item `i`'s reads wait for item
    /// `i − window`'s write. The rebuild pipeline stays full, so makespan is
    /// barely affected, but foreground requests no longer queue behind the
    /// whole rebuild.
    pub rebuild_window: usize,
    /// Run rebuild I/O at lower scheduling priority than foreground
    /// requests (non-preemptive priority queues per disk). Trades rebuild
    /// time for user latency — the knob every production rebuilder exposes.
    pub low_priority_rebuild: bool,
}

/// Results of a degraded-mode run.
#[derive(Debug)]
pub struct DegradedRun {
    /// Completion time of the rebuild (with the workload competing).
    pub rebuild_time: SimTime,
    /// Foreground latency while rebuilding.
    pub degraded_latency: Summary,
    /// Foreground latency of the identical workload on an idle (healthy)
    /// array — the baseline the degradation is measured against.
    pub idle_latency: Summary,
}

impl DegradedScenario {
    /// Runs the scenario: once with rebuild + workload, once workload-only.
    pub fn run(&self, plan: &RecoveryPlan) -> DegradedRun {
        let (rebuild_time, degraded_latency) = self.run_once(plan, true);
        let (_, idle_latency) = self.run_once(plan, false);
        DegradedRun {
            rebuild_time,
            degraded_latency,
            idle_latency,
        }
    }

    fn run_once(&self, plan: &RecoveryPlan, with_rebuild: bool) -> (SimTime, Summary) {
        let mut sim = Simulation::new();
        let disk_ids: Vec<_> = (0..plan.disks())
            .map(|_| sim.add_disk(self.spec.clone()))
            .collect();
        let spare_ids: Vec<_> = plan
            .failed()
            .iter()
            .map(|_| sim.add_disk(self.spec.clone()))
            .collect();
        let rebuild_priority = if self.low_priority_rebuild {
            disksim::DEFAULT_PRIORITY + 64
        } else {
            disksim::DEFAULT_PRIORITY
        };
        let mut rebuild_writes: Vec<disksim::TaskId> = Vec::new();
        if with_rebuild {
            for (i, item) in plan.items().iter().enumerate() {
                let pace = (self.rebuild_window > 0 && i >= self.rebuild_window)
                    .then(|| rebuild_writes[i - self.rebuild_window]);
                let mut reads: Vec<_> = item
                    .reads
                    .iter()
                    .map(|r| {
                        let mut t = TaskSpec::read(disk_ids[r.disk], self.chunk_bytes)
                            .with_priority(rebuild_priority);
                        if let Some(p) = pace {
                            t = t.after(p);
                        }
                        sim.add_task(t)
                    })
                    .collect();
                for &dep in &item.depends {
                    let dep_write = rebuild_writes[dep];
                    let dep_item = &plan.items()[dep];
                    let dep_target = match dep_item.write {
                        WriteTarget::Spare(i) => spare_ids[i],
                        WriteTarget::Surviving { disk } => disk_ids[disk],
                        WriteTarget::InPlace => disk_ids[dep_item.lost.disk],
                    };
                    reads.push(
                        sim.add_task(
                            TaskSpec::read(dep_target, self.chunk_bytes)
                                .with_priority(rebuild_priority)
                                .after(dep_write),
                        ),
                    );
                }
                let target = match item.write {
                    WriteTarget::Spare(i) => spare_ids[i],
                    WriteTarget::Surviving { disk } => disk_ids[disk],
                    WriteTarget::InPlace => disk_ids[item.lost.disk],
                };
                let mut spec = TaskSpec::write(target, self.chunk_bytes)
                    .with_priority(rebuild_priority)
                    .after_all(reads);
                if let Some(p) = pace {
                    spec = spec.after(p);
                }
                let w = sim.add_task(spec);
                rebuild_writes.push(w);
            }
        }
        // Foreground reads hit the surviving data disks only.
        let survivors: Vec<_> = (0..plan.disks())
            .filter(|d| !plan.failed().contains(d))
            .map(|d| disk_ids[d])
            .collect();
        self.workload
            .generate(&mut sim, &survivors, self.workload_duration);
        let result = sim.run();
        let rebuild_time = rebuild_writes
            .iter()
            .filter_map(|t| result.finish_time(*t))
            .max()
            .unwrap_or(SimTime::ZERO);
        let latency = Summary::from_samples(&result.latencies_tagged(disksim::FOREGROUND_TAG));
        (rebuild_time, latency)
    }
}

/// Convenience: the reference-array scenario used by examples and E8.
pub fn reference_scenario(rate: f64, seed: u64) -> (OiRaid, DegradedScenario) {
    use disksim::{ArrivalProcess, WorkloadKind};
    let array = OiRaid::new(OiRaidConfig::reference()).expect("reference config");
    let capacity: u64 = 500 * 1000 * 1000; // 500 MB toy disks keep sims fast
    let chunk_bytes = capacity / array.config().chunks_per_disk() as u64;
    let scenario = DegradedScenario {
        spec: DiskSpec::hdd_7200(capacity),
        chunk_bytes,
        workload: Workload::new(
            WorkloadKind::UniformRandom,
            ArrivalProcess::Poisson { rate },
            64 << 10,
            seed,
        ),
        workload_duration: SimTime::from_secs_f64(10.0),
        rebuild_window: 8,
        low_priority_rebuild: false,
    };
    (array, scenario)
}

#[cfg(test)]
mod sim_tests {
    use super::*;
    use layout::{Layout, SparePolicy};

    #[test]
    fn rebuild_slows_foreground() {
        let (array, scenario) = reference_scenario(100.0, 3);
        let plan = array.recovery_plan(&[0], SparePolicy::Distributed).unwrap();
        let run = scenario.run(&plan);
        assert!(run.rebuild_time > SimTime::ZERO);
        assert!(run.degraded_latency.count > 0);
        assert!(
            run.degraded_latency.mean >= run.idle_latency.mean,
            "competition cannot make latency better: {} vs {}",
            run.degraded_latency.mean,
            run.idle_latency.mean
        );
    }

    #[test]
    fn low_priority_rebuild_trades_latency_for_time() {
        let (array, mut scenario) = reference_scenario(200.0, 8);
        let plan = array.recovery_plan(&[0], SparePolicy::Distributed).unwrap();
        let fifo = scenario.run(&plan);
        scenario.low_priority_rebuild = true;
        let prio = scenario.run(&plan);
        assert!(
            prio.degraded_latency.p95 <= fifo.degraded_latency.p95,
            "prioritised foreground cannot have worse p95: {} vs {}",
            prio.degraded_latency.p95,
            fifo.degraded_latency.p95
        );
        assert!(prio.rebuild_time >= fifo.rebuild_time);
    }

    #[test]
    fn workload_only_baseline_has_no_rebuild() {
        let (array, scenario) = reference_scenario(50.0, 4);
        let plan = array.recovery_plan(&[5], SparePolicy::Distributed).unwrap();
        let (t, summary) = scenario.run_once(&plan, false);
        assert_eq!(t, SimTime::ZERO);
        assert!(summary.count > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OiRaidConfig;
    use layout::Layout;

    fn reference() -> OiRaid {
        OiRaid::new(OiRaidConfig::reference()).unwrap()
    }

    #[test]
    fn healthy_reads_are_direct() {
        let a = reference();
        for idx in 0..a.data_chunks() {
            match a.read_plan(idx, &[]).unwrap() {
                ReadPlan::Direct(addr) => assert_eq!(addr, a.locate_data(idx)),
                other => panic!("expected direct, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_failure_prefers_inner_decode() {
        let a = reference();
        for idx in 0..a.data_chunks() {
            let addr = a.locate_data(idx);
            let plan = a.read_plan(idx, &[addr.disk]).unwrap();
            match plan {
                ReadPlan::InnerDecode { reads } => {
                    assert_eq!(reads.len(), 2); // g − 1 survivors
                    assert!(reads.iter().all(|r| r.disk != addr.disk));
                }
                other => panic!("idx {idx}: expected inner decode, got {other:?}"),
            }
        }
    }

    #[test]
    fn group_loss_falls_back_to_outer_decode() {
        let a = reference();
        // Fail all of group 0; data chunks there must decode via the outer
        // stripe with k − 1 = 2 remote reads.
        let failed = [0usize, 1, 2];
        for idx in 0..a.data_chunks() {
            let addr = a.locate_data(idx);
            if a.group_of(addr.disk) != 0 {
                continue;
            }
            match a.read_plan(idx, &failed).unwrap() {
                ReadPlan::OuterDecode { reads } => {
                    assert_eq!(reads.len(), 2);
                    assert!(reads.iter().all(|r| a.group_of(r.disk) != 0));
                }
                other => panic!("idx {idx}: expected outer decode, got {other:?}"),
            }
        }
    }

    #[test]
    fn read_counts_are_monotone_in_damage() {
        let a = reference();
        let idx = 10;
        let addr = a.locate_data(idx);
        let healthy = a.read_plan(idx, &[]).unwrap().read_count();
        let one = a.read_plan(idx, &[addr.disk]).unwrap().read_count();
        assert!(healthy <= one);
        assert_eq!(healthy, 1);
    }

    #[test]
    fn double_level_damage_reports_loss() {
        let a = reference();
        // Find a data chunk whose group has 2 failures (inner dead) and
        // whose outer stripe also lost a second chunk. A whole group plus a
        // carefully chosen second group does it; scan for a witness.
        let failed = [0usize, 1, 3, 4];
        // Pattern is unsurvivable overall, so some chunk must report loss.
        assert!(!a.survives(&failed));
        let mut saw_loss = false;
        for idx in 0..a.data_chunks() {
            if a.read_plan(idx, &failed).is_err() {
                saw_loss = true;
                break;
            }
        }
        assert!(saw_loss);
    }

    #[test]
    fn out_of_range_pattern_rejected() {
        let a = reference();
        assert!(matches!(
            a.read_plan(0, &[99]),
            Err(LayoutError::DiskOutOfRange { .. })
        ));
    }

    #[test]
    fn dual_parity_inner_decode_tolerates_two_in_group() {
        let cfg = OiRaidConfig::new(bibd::fano(), 5, 1)
            .unwrap()
            .with_inner_parities(2)
            .unwrap();
        let a = OiRaid::new(cfg).unwrap();
        let idx = 0;
        let addr = a.locate_data(idx);
        let grp = a.group_of(addr.disk);
        // Fail the data disk plus one more in the same group: still inner.
        let other = (0..a.disks())
            .find(|&d| a.group_of(d) == grp && d != addr.disk)
            .unwrap();
        match a.read_plan(idx, &[addr.disk, other]).unwrap() {
            ReadPlan::InnerDecode { reads } => assert_eq!(reads.len(), 3), // g − 2
            other => panic!("expected inner decode, got {other:?}"),
        }
    }
}
