//! Rebuild checkpoints: restartable recovery.
//!
//! A rebuild of a multi-TB disk takes hours; losing all progress to a
//! process crash means re-reading every surviving disk from scratch. The
//! rebuild engine periodically serializes its window state — the target
//! disks and the set of chunks already restored (by writeback *or* by a
//! foreground write that landed the full new value) — next to the journal.
//! After a restart, [`crate::OiRaidStore::resume_rebuild`] loads the
//! checkpoint, re-opens the window with the restored chunks pre-marked
//! valid, and plans recovery only for what is still missing.
//!
//! The format is deliberately paranoid about its own durability story:
//! writes go to a temp file that is fsynced and renamed into place, so a
//! crash mid-checkpoint leaves the previous checkpoint intact; loads
//! verify a magic and a CRC-32 and return `None` on *any* defect — a
//! corrupt or truncated checkpoint silently degrades to a full rebuild,
//! never an abort (the checkpoint is an optimization, the journal and the
//! parity math are the correctness story).

use std::collections::BTreeSet;
use std::io::Write;
use std::path::Path;

use blockdev::crash_point;
use blockdev::journal::crc32;
use layout::ChunkAddr;

/// File magic: "OICK".
const MAGIC: [u8; 4] = *b"OICK";

/// A serialized rebuild position: which disks were being rebuilt and which
/// of their chunks already hold trustworthy bytes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RebuildCheckpoint {
    /// Disks under rebuild when the checkpoint was taken.
    pub targets: BTreeSet<usize>,
    /// Chunks on those disks already restored (ascending).
    pub valid: Vec<ChunkAddr>,
}

impl RebuildCheckpoint {
    /// Serializes to `path` atomically: temp file, fsync, rename. A crash
    /// at any point leaves either the old checkpoint or the new one —
    /// never a torn mix.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the rebuild engine treats a failed
    /// checkpoint as a skipped optimization, not a fatal error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut body = Vec::with_capacity(8 + self.targets.len() * 4 + self.valid.len() * 8);
        body.extend_from_slice(&(self.targets.len() as u32).to_le_bytes());
        for &d in &self.targets {
            body.extend_from_slice(&(d as u32).to_le_bytes());
        }
        body.extend_from_slice(&(self.valid.len() as u32).to_le_bytes());
        for a in &self.valid {
            body.extend_from_slice(&(a.disk as u32).to_le_bytes());
            body.extend_from_slice(&(a.offset as u32).to_le_bytes());
        }
        let crc = crc32(&body);

        let tmp = path.with_extension("ckpt.tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&MAGIC)?;
        f.write_all(&body)?;
        f.write_all(&crc.to_le_bytes())?;
        f.sync_data()?;
        drop(f);
        crash_point("checkpoint_write");
        std::fs::rename(&tmp, path)
    }

    /// Loads a checkpoint, returning `None` on a missing, truncated,
    /// wrong-magic, or checksum-failed file — every defect degrades to
    /// "no checkpoint" (full rebuild), never an error.
    pub fn load(path: &Path) -> Option<Self> {
        let bytes = std::fs::read(path).ok()?;
        if bytes.len() < 12 || bytes[..4] != MAGIC {
            return None;
        }
        let body = &bytes[4..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().ok()?);
        if crc32(body) != stored {
            return None;
        }
        let mut offset = 0usize;
        let mut take_u32 = |body: &[u8]| -> Option<u32> {
            let v = u32::from_le_bytes(body.get(offset..offset + 4)?.try_into().ok()?);
            offset += 4;
            Some(v)
        };
        let n_targets = take_u32(body)? as usize;
        let mut targets = BTreeSet::new();
        for _ in 0..n_targets {
            targets.insert(take_u32(body)? as usize);
        }
        let n_valid = take_u32(body)? as usize;
        let mut valid = Vec::with_capacity(n_valid);
        for _ in 0..n_valid {
            let disk = take_u32(body)? as usize;
            let chunk = take_u32(body)? as usize;
            valid.push(ChunkAddr::new(disk, chunk));
        }
        (offset == body.len()).then_some(Self { targets, valid })
    }

    /// Deletes the checkpoint (rebuild completed or aborted — either way
    /// the position it recorded is obsolete). Missing files are fine.
    pub fn remove(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(path.with_extension("ckpt.tmp"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ckpt-test-{}-{tag}-{n}.ckpt", std::process::id()))
    }

    fn sample() -> RebuildCheckpoint {
        RebuildCheckpoint {
            targets: [3usize, 7].into_iter().collect(),
            valid: vec![
                ChunkAddr::new(3, 0),
                ChunkAddr::new(3, 5),
                ChunkAddr::new(7, 2),
            ],
        }
    }

    #[test]
    fn roundtrips() {
        let path = temp_path("rt");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        assert_eq!(RebuildCheckpoint::load(&path), Some(ckpt));
        RebuildCheckpoint::remove(&path);
        assert_eq!(RebuildCheckpoint::load(&path), None, "removed");
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let path = temp_path("empty");
        let ckpt = RebuildCheckpoint::default();
        ckpt.save(&path).unwrap();
        assert_eq!(RebuildCheckpoint::load(&path), Some(ckpt));
        RebuildCheckpoint::remove(&path);
    }

    #[test]
    fn corrupt_and_truncated_load_as_none() {
        let path = temp_path("corrupt");
        sample().save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip a body byte: CRC fails.
        let mut bad = good.clone();
        bad[6] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(RebuildCheckpoint::load(&path), None);

        // Truncate mid-body.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_eq!(RebuildCheckpoint::load(&path), None);

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(RebuildCheckpoint::load(&path), None);

        // Trailing garbage after a valid body fails the length check.
        let mut bad = good.clone();
        bad.extend_from_slice(&[0u8; 3]);
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(RebuildCheckpoint::load(&path), None);

        // Absent file.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(RebuildCheckpoint::load(&path), None);
    }

    #[test]
    fn save_replaces_atomically() {
        let path = temp_path("replace");
        sample().save(&path).unwrap();
        let newer = RebuildCheckpoint {
            targets: [1usize].into_iter().collect(),
            valid: vec![ChunkAddr::new(1, 1)],
        };
        newer.save(&path).unwrap();
        assert_eq!(RebuildCheckpoint::load(&path), Some(newer));
        RebuildCheckpoint::remove(&path);
    }
}
