//! Single-disk-failure recovery planning: the experiment-critical path.
//!
//! When one disk fails, OI-RAID can source reconstruction reads three ways,
//! and the choice decides the rebuild bottleneck:
//!
//! * [`RecoveryStrategy::Inner`] — rebuild every lost chunk from its inner
//!   row. Minimal total I/O (`(g−1)` reads per chunk), but only the `g−1`
//!   group survivors work: each reads its whole capacity, like a tiny RAID5.
//! * [`RecoveryStrategy::Outer`] — rebuild payload chunks from their outer
//!   stripes (reads fan out over *all* other groups thanks to the skew) and
//!   recompute inner-parity chunks from their local rows. The group
//!   survivors' share drops to `1/g` of a disk.
//! * [`RecoveryStrategy::OuterAll`] — also reconstruct the inputs of lost
//!   inner-parity chunks from *their* outer stripes, moving even that load
//!   off the group: maximal parallelism, highest total I/O.
//! * [`RecoveryStrategy::Hybrid`] — split the inner-parity rows between the
//!   local and remote methods in the closed-form proportion
//!   `ψ = (rg − (g−1)) / (rg + (g−1))` that equalises group-survivor and
//!   remote-disk load — the bottleneck-optimal mix (ablation A2).

use std::collections::BTreeSet;

use layout::ChunkRecovery;
use layout::{ChunkAddr, LayoutError, RecoveryPlan, SparePolicy, WriteTarget};

use crate::array::OiRaid;
use crate::multifail;

/// How a single-disk rebuild sources its reads: `Inner` is local and slow,
/// `Outer` is the paper's declustered default, `OuterAll` moves even
/// parity-row repairs off the group, and `Hybrid` mixes the last two in the
/// closed-form bottleneck-optimal proportion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStrategy {
    /// Everything from the local inner rows (RAID50-like locality).
    Inner,
    /// Payload via outer stripes, inner parity via local rows (the paper's
    /// default).
    Outer,
    /// Everything via outer stripes (fully declustered).
    OuterAll,
    /// Load-balanced mix of `Outer` and `OuterAll` for the parity rows.
    Hybrid,
}

impl RecoveryStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [RecoveryStrategy; 4] = [
        RecoveryStrategy::Inner,
        RecoveryStrategy::Outer,
        RecoveryStrategy::OuterAll,
        RecoveryStrategy::Hybrid,
    ];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStrategy::Inner => "inner",
            RecoveryStrategy::Outer => "outer",
            RecoveryStrategy::OuterAll => "outer-all",
            RecoveryStrategy::Hybrid => "hybrid",
        }
    }
}

/// The fraction numerator/denominator of inner-parity rows that
/// [`RecoveryStrategy::Hybrid`] sends to the remote (outer) method,
/// generalized over the inner parity count `p`:
/// `ψ = (p·r·g − (g−p)) / (p·(r·g + g − p))`, clamped at 0.
/// For `p = 1` this is the paper-case `(rg − g + 1)/(rg + g − 1)`.
pub(crate) fn hybrid_remote_fraction(r: usize, g: usize, p: usize) -> (usize, usize) {
    let num = (p * r * g).saturating_sub(g - p);
    let den = p * (r * g + g - p);
    (num, den)
}

/// Builds the plan for a single failed disk under `strategy`.
pub(crate) fn single_failure_plan(
    array: &OiRaid,
    failed_disk: usize,
    policy: SparePolicy,
    strategy: RecoveryStrategy,
) -> Result<RecoveryPlan, LayoutError> {
    let geo = array.geometry();
    let n = geo.disks();
    if failed_disk >= n {
        return Err(LayoutError::DiskOutOfRange {
            disk: failed_disk,
            disks: n,
        });
    }
    let grp = geo.group_of(failed_disk);
    let j = geo.member_of(failed_disk);
    let (num, den) = hybrid_remote_fraction(geo.r, geo.g, geo.p_in);
    let mut parity_rows_seen = 0usize;
    let mut items = Vec::with_capacity(geo.chunks_per_disk);
    let _ = j;
    for o in 0..geo.chunks_per_disk {
        let lost = ChunkAddr::new(failed_disk, o);
        let reads = if geo.is_inner_parity(lost) {
            // Inner-parity chunk: rebuild from its row, locally or remotely.
            let remote = match strategy {
                RecoveryStrategy::Inner | RecoveryStrategy::Outer => false,
                RecoveryStrategy::OuterAll => true,
                RecoveryStrategy::Hybrid => {
                    // Spread the ψ fraction evenly over the parity rows
                    // (rounded accumulation, so the total is round(ψ·rows)).
                    let h = parity_rows_seen;
                    ((h + 1) * num + den / 2) / den != (h * num + den / 2) / den
                }
            };
            parity_rows_seen += 1;
            if remote {
                remote_row_reads(array, grp, o)
            } else {
                geo.row_payload(grp, o)
            }
        } else {
            // Payload chunk (data or outer parity).
            match strategy {
                RecoveryStrategy::Inner => geo
                    .row_chunks(grp, o)
                    .into_iter()
                    .filter(|a| *a != lost)
                    .collect(),
                _ => outer_stripe_reads(array, lost),
            }
        };
        items.push(ChunkRecovery {
            lost,
            reads,
            depends: Vec::new(),
            write: WriteTarget::Spare(0),
        });
    }
    let failed = vec![failed_disk];
    layout::assign_writes(policy, n, &failed, &mut items);
    Ok(RecoveryPlan::new(n, failed, items))
}

/// The alternate-plan API: derives an arbitrary *chunk-granular* missing
/// set from whatever redundancy is still readable.
///
/// This is what makes C4 operational during a rebuild: when a source read
/// exhausts its retries (latent sector error) or a surviving disk dies
/// mid-rebuild, the engine collects the unreadable chunks and asks for a
/// fresh plan that routes around them through the inner/outer codes —
/// including cross-layer cascades, exactly like whole-disk multi-failure
/// planning, but seeded with individual chunks instead of disks.
///
/// Every chunk **not** in `missing` is assumed readable (already-rebuilt
/// chunks on a healed disk are legitimate sources, which is how a resumed
/// rebuild avoids re-reading what it already recovered). All items are
/// written [`WriteTarget::InPlace`]: the owning disk is online (healed or
/// healthy) and the rewrite lands at the chunk's own address, remapping
/// latent sectors as a side effect.
///
/// Fails with [`LayoutError::DataLoss`] (listing the affected disks) when
/// the missing set is not decodable.
pub(crate) fn chunk_recovery_plan(
    array: &OiRaid,
    missing: &BTreeSet<ChunkAddr>,
) -> Result<RecoveryPlan, LayoutError> {
    let geo = array.geometry();
    let n = geo.disks();
    let t = geo.chunks_per_disk;
    if let Some(a) = missing.iter().find(|a| a.disk >= n || a.offset >= t) {
        return Err(LayoutError::DiskOutOfRange {
            disk: a.disk,
            disks: n,
        });
    }
    let mut items = Vec::new();
    if missing.is_empty() {
        return Ok(RecoveryPlan::new(n, Vec::new(), items));
    }
    if !multifail::run_fixpoint(array, &[], missing, Some(&mut items)) {
        let mut disks: Vec<usize> = missing.iter().map(|a| a.disk).collect();
        disks.dedup(); // BTreeSet iteration is sorted by disk first
        return Err(LayoutError::DataLoss { failed: disks });
    }
    for item in &mut items {
        item.write = WriteTarget::InPlace;
    }
    Ok(RecoveryPlan::new(n, Vec::new(), items))
}

/// The `k − 1` surviving chunks of the outer stripe containing payload
/// chunk `lost` — all in other groups.
fn outer_stripe_reads(array: &OiRaid, lost: ChunkAddr) -> Vec<ChunkAddr> {
    let geo = array.geometry();
    let p = geo.payload_pos(lost);
    geo.stripe_chunks(p.block, p.stripe)
        .into_iter()
        .filter(|a| *a != lost)
        .collect()
}

/// Remote reconstruction of an inner-parity row: for each surviving payload
/// chunk of the row, read the `k − 1` other chunks of *its* outer stripe
/// (none of which are in this group). `(g − 1)(k − 1)` remote reads total.
fn remote_row_reads(array: &OiRaid, grp: usize, row: usize) -> Vec<ChunkAddr> {
    let geo = array.geometry();
    let mut reads = Vec::with_capacity((geo.g - 1) * (geo.k - 1));
    for payload in geo.row_payload(grp, row) {
        reads.extend(outer_stripe_reads(array, payload));
    }
    reads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OiRaidConfig;
    use layout::Layout;

    fn reference() -> OiRaid {
        OiRaid::new(OiRaidConfig::reference()).unwrap()
    }

    fn plan(array: &OiRaid, d: usize, s: RecoveryStrategy) -> RecoveryPlan {
        array
            .recovery_plan_with_strategy(d, SparePolicy::Distributed, s)
            .unwrap()
    }

    #[test]
    fn inner_strategy_loads_only_group() {
        let a = reference();
        let p = plan(&a, 4, RecoveryStrategy::Inner); // group 1 = disks 3..6
        let load = p.read_load(21);
        for (d, &ld) in load.iter().enumerate() {
            let in_group = (3..6).contains(&d) && d != 4;
            assert_eq!(ld > 0, in_group, "disk {d}");
        }
        // Each group survivor reads the failed disk's full chunk count.
        assert_eq!(load[3], 9);
        assert_eq!(load[5], 9);
    }

    #[test]
    fn outer_strategy_loads_match_closed_form() {
        let a = reference();
        let p = plan(&a, 0, RecoveryStrategy::Outer);
        let load = p.read_load(21);
        // Group survivors (disks 1, 2): r·c = 3 chunks each (parity rows).
        assert_eq!(load[1], 3);
        assert_eq!(load[2], 3);
        // Remote disks: total payload reads = P_l(k−1) = 6·2 = 12 over 18
        // disks, near-uniformly.
        let remote_total: u64 = (3..21).map(|d| load[d]).sum();
        assert_eq!(remote_total, 12);
        let remote_max = (3..21).map(|d| load[d]).max().unwrap();
        assert!(remote_max <= 2, "remote loads near-uniform: {load:?}");
    }

    #[test]
    fn outer_all_strategy_empties_group_reads() {
        let a = reference();
        let p = plan(&a, 0, RecoveryStrategy::OuterAll);
        let load = p.read_load(21);
        assert_eq!(load[1], 0);
        assert_eq!(load[2], 0);
        // Total remote reads: payload 12 + parity rows 3·(g−1)(k−1) = 12.
        let remote_total: u64 = (3..21).map(|d| load[d]).sum();
        assert_eq!(remote_total, 24);
    }

    #[test]
    fn hybrid_strategy_beats_both_on_bottleneck() {
        let a = reference();
        let bottleneck = |s: RecoveryStrategy| {
            let p = plan(&a, 0, s);
            let load = p.read_load(21);
            (0..21).map(|d| load[d]).max().unwrap()
        };
        let hybrid = bottleneck(RecoveryStrategy::Hybrid);
        assert!(hybrid <= bottleneck(RecoveryStrategy::Outer));
        assert!(hybrid <= bottleneck(RecoveryStrategy::OuterAll));
        assert!(hybrid < bottleneck(RecoveryStrategy::Inner));
    }

    #[test]
    fn hybrid_fraction_formula() {
        assert_eq!(hybrid_remote_fraction(3, 3, 1), (7, 11));
        assert_eq!(hybrid_remote_fraction(1, 2, 1), (1, 3));
        // Dual parity: ψ = (2rg − (g−2)) / (2(rg + g − 2)).
        assert_eq!(hybrid_remote_fraction(3, 5, 2), (27, 36));
    }

    #[test]
    fn all_strategies_cover_every_lost_chunk() {
        let a = reference();
        for s in RecoveryStrategy::ALL {
            let p = plan(&a, 7, s);
            assert_eq!(p.total_writes(), 9, "{}", s.label());
            // No read touches the failed disk.
            assert_eq!(p.read_load(21)[7], 0, "{}", s.label());
        }
    }

    #[test]
    fn out_of_range_disk_rejected() {
        let a = reference();
        assert!(matches!(
            a.recovery_plan_with_strategy(21, SparePolicy::Dedicated, RecoveryStrategy::Outer),
            Err(LayoutError::DiskOutOfRange { .. })
        ));
    }

    #[test]
    fn outer_reads_avoid_failed_group_for_payload() {
        let a = reference();
        let p = plan(&a, 0, RecoveryStrategy::Outer);
        for item in p.items() {
            if !a.geometry().is_inner_parity(item.lost) {
                for r in &item.reads {
                    assert_ne!(a.group_of(r.disk), 0, "payload read {r} inside group");
                }
            }
        }
    }

    #[test]
    fn chunk_plan_routes_around_missing_sources() {
        let a = reference();
        // One missing chunk: derivable from its row or stripe, never read.
        let victim = ChunkAddr::new(4, 2);
        let missing: BTreeSet<ChunkAddr> = [victim].into_iter().collect();
        let plan = a.chunk_recovery_plan(&missing).unwrap();
        assert_eq!(plan.total_writes(), 1);
        let item = &plan.items()[0];
        assert_eq!(item.lost, victim);
        assert!(!item.reads.is_empty());
        assert!(!item.reads.contains(&victim));
        assert_eq!(item.write, WriteTarget::InPlace);
        assert!(plan.failed().is_empty(), "no whole-disk failures involved");
    }

    #[test]
    fn chunk_plan_cascades_through_both_layers() {
        let a = reference();
        let geo = a.geometry();
        // Knock out a whole inner row plus extra scattered chunks: the
        // row's chunks need the outer layer first, then the inner parity
        // recomputes from repaired payload (depends wiring).
        let mut missing: BTreeSet<ChunkAddr> = geo.row_chunks(0, 0).into_iter().collect();
        missing.insert(ChunkAddr::new(20, 8));
        let plan = a.chunk_recovery_plan(&missing).unwrap();
        assert_eq!(plan.total_writes() as usize, missing.len());
        // No plan read touches a missing chunk.
        for item in plan.items() {
            for r in &item.reads {
                assert!(!missing.contains(r), "read of missing chunk {r}");
            }
            for &dep in &item.depends {
                assert!(dep < plan.items().len());
            }
        }
        assert!(
            plan.items().iter().any(|i| !i.depends.is_empty()),
            "a full-row loss must cascade"
        );
    }

    #[test]
    fn chunk_plan_rejects_undecodable_sets_and_bad_addresses() {
        let a = reference();
        let geo = a.geometry();
        let everything: BTreeSet<ChunkAddr> = (0..geo.disks())
            .flat_map(|d| (0..geo.chunks_per_disk).map(move |o| ChunkAddr::new(d, o)))
            .collect();
        assert!(matches!(
            a.chunk_recovery_plan(&everything),
            Err(LayoutError::DataLoss { .. })
        ));
        let oob: BTreeSet<ChunkAddr> = [ChunkAddr::new(99, 0)].into_iter().collect();
        assert!(matches!(
            a.chunk_recovery_plan(&oob),
            Err(LayoutError::DiskOutOfRange { disk: 99, .. })
        ));
        assert_eq!(
            a.chunk_recovery_plan(&BTreeSet::new())
                .unwrap()
                .total_writes(),
            0
        );
    }

    #[test]
    fn default_layout_plan_is_outer() {
        let a = reference();
        let via_trait = a.recovery_plan(&[0], SparePolicy::Distributed).unwrap();
        let via_strategy = plan(&a, 0, RecoveryStrategy::Outer);
        assert_eq!(via_trait.read_load(21), via_strategy.read_load(21));
    }
}
