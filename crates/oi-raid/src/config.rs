//! Configuration and validation of OI-RAID arrays.

use bibd::Bibd;
use layout::LayoutError;

/// How outer stripes are skewed over the disks of each group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkewMode {
    /// The paper's skewed layout: the stripe→disk map of the group at block
    /// position `pos` uses a per-position multiplier, so the stripes that
    /// hit any one disk of a failed group fan out over *all* disks of every
    /// other member group. Requires a multiplier set whose pairwise
    /// differences are units mod `g` (always available when `g` is prime and
    /// `g >= k`).
    Rotational,
    /// Phase-only rotation without multipliers — the **ablation** baseline:
    /// recovery reads for one failed disk concentrate on a single disk per
    /// remote group (experiment A1 quantifies the damage).
    Naive,
}

/// Parameters of an OI-RAID array.
///
/// # Example
///
/// ```
/// use oi_raid::{OiRaidConfig, SkewMode};
///
/// let cfg = OiRaidConfig::new(bibd::fano(), 3, 4).unwrap();
/// assert_eq!(cfg.disks(), 21);
/// assert_eq!(cfg.skew(), SkewMode::Rotational);
/// ```
#[derive(Debug, Clone)]
pub struct OiRaidConfig {
    design: Bibd,
    group_size: usize,
    cycles: usize,
    skew: SkewMode,
    multipliers: Vec<usize>,
    inner_parities: usize,
}

impl OiRaidConfig {
    /// Creates a configuration with the default [`SkewMode::Rotational`]
    /// layout. `group_size` is `g` (disks per group) and `cycles` scales the
    /// number of chunks per disk (`g·r·cycles`) — layout properties repeat
    /// per cycle, so small values suffice for analysis and large values add
    /// address-space resolution.
    ///
    /// # Errors
    ///
    /// [`LayoutError::InvalidGeometry`] if the design is not `λ = 1`, if
    /// `group_size < 2` or `cycles == 0`, or (for the rotational skew) if no
    /// valid multiplier set exists for `(g, k)` — e.g. `g < k`, or a highly
    /// composite `g`. Prime `g >= k` always works.
    pub fn new(design: Bibd, group_size: usize, cycles: usize) -> Result<Self, LayoutError> {
        Self::with_skew(design, group_size, cycles, SkewMode::Rotational)
    }

    /// Creates a configuration with an explicit skew mode.
    ///
    /// # Errors
    ///
    /// See [`OiRaidConfig::new`].
    pub fn with_skew(
        design: Bibd,
        group_size: usize,
        cycles: usize,
        skew: SkewMode,
    ) -> Result<Self, LayoutError> {
        if !design.is_steiner() {
            return Err(LayoutError::InvalidGeometry(format!(
                "OI-RAID's outer layer requires a lambda = 1 design, got lambda = {}",
                design.lambda()
            )));
        }
        if group_size < 2 {
            return Err(LayoutError::InvalidGeometry(format!(
                "group size must be at least 2, got {group_size}"
            )));
        }
        if cycles == 0 {
            return Err(LayoutError::InvalidGeometry(
                "cycles must be positive".into(),
            ));
        }
        let multipliers = match skew {
            SkewMode::Rotational => multiplier_set(group_size, design.k()).ok_or_else(|| {
                LayoutError::InvalidGeometry(format!(
                    "no skew multiplier set for g={group_size}, k={}; \
                         use a prime group size >= k (or SkewMode::Naive)",
                    design.k()
                ))
            })?,
            SkewMode::Naive => vec![0; design.k()],
        };
        Ok(Self {
            design,
            group_size,
            cycles,
            skew,
            multipliers,
            inner_parities: 1,
        })
    }

    /// Generalizes the inner layer to `p` parity chunks per row (1 = RAID5
    /// as in the paper; 2 = RAID6-style dual parity). The array then
    /// tolerates `2p + 1` arbitrary failures at `1 + (2p + 1)` writes per
    /// update — still update-optimal. This is the natural extension the
    /// paper's "as an example, we deploy RAID5 in both layers" leaves open.
    ///
    /// # Errors
    ///
    /// [`LayoutError::InvalidGeometry`] unless `1 <= p <= 2` and
    /// `p < group_size`.
    pub fn with_inner_parities(mut self, p: usize) -> Result<Self, LayoutError> {
        if p == 0 || p > 2 {
            return Err(LayoutError::InvalidGeometry(format!(
                "inner layer supports 1 (RAID5) or 2 (RAID6) parities, got {p}"
            )));
        }
        if p >= self.group_size {
            return Err(LayoutError::InvalidGeometry(format!(
                "inner parities {p} must be smaller than group size {}",
                self.group_size
            )));
        }
        self.inner_parities = p;
        Ok(self)
    }

    /// Number of inner-parity chunks per row (1 = RAID5, 2 = RAID6).
    pub fn inner_parities(&self) -> usize {
        self.inner_parities
    }

    /// The paper's running example: Fano-plane `(7, 3, 1)` outer layer with
    /// groups of 3 disks (21 disks total) and a single layout cycle.
    pub fn reference() -> Self {
        Self::new(bibd::fano(), 3, 1).expect("the reference configuration is valid")
    }

    /// The outer-layer block design.
    pub fn design(&self) -> &Bibd {
        &self.design
    }

    /// Disks per group `g`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Layout cycles (chunks per disk = `g·r·cycles`).
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// The skew mode.
    pub fn skew(&self) -> SkewMode {
        self.skew
    }

    /// Per-block-position stripe multipliers (all zero for naive skew).
    pub fn multipliers(&self) -> &[usize] {
        &self.multipliers
    }

    /// Total disks `n = v·g`.
    pub fn disks(&self) -> usize {
        self.design.v() * self.group_size
    }

    /// Chunks per disk `g·r·cycles`.
    pub fn chunks_per_disk(&self) -> usize {
        self.group_size * self.design.r() * self.cycles
    }
}

/// Finds `k` values in `0..g` whose pairwise differences are all units
/// mod `g` (greedy search). The stripe maps of two groups at block positions
/// with multipliers `m1, m2` then diverge at rate `m1 − m2` per slot, which
/// is what spreads rebuild reads over whole groups.
fn multiplier_set(g: usize, k: usize) -> Option<Vec<usize>> {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for cand in 0..g {
        if chosen.iter().all(|&m| gcd(cand - m, g) == 1)
        // cand > m, so no underflow
        {
            chosen.push(cand);
            if chosen.len() == k {
                return Some(chosen);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_config() {
        let cfg = OiRaidConfig::reference();
        assert_eq!(cfg.disks(), 21);
        assert_eq!(cfg.chunks_per_disk(), 9);
        assert_eq!(cfg.multipliers(), &[0, 1, 2]);
    }

    #[test]
    fn rejects_lambda_greater_than_one() {
        let d = bibd::complete_design(5, 3).unwrap(); // λ = 3
        assert!(OiRaidConfig::new(d, 3, 1).is_err());
    }

    #[test]
    fn rejects_tiny_groups_and_zero_cycles() {
        assert!(OiRaidConfig::new(bibd::fano(), 1, 1).is_err());
        assert!(OiRaidConfig::new(bibd::fano(), 3, 0).is_err());
    }

    #[test]
    fn multiplier_sets_for_prime_groups() {
        assert_eq!(multiplier_set(3, 3), Some(vec![0, 1, 2]));
        assert_eq!(multiplier_set(5, 4), Some(vec![0, 1, 2, 3]));
        assert_eq!(multiplier_set(7, 6), Some(vec![0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn multiplier_sets_for_composite_groups() {
        // g = 4: differences must be odd, so at most 2 values: {0, 1}.
        assert_eq!(multiplier_set(4, 2), Some(vec![0, 1]));
        assert_eq!(multiplier_set(4, 3), None);
        // g = 9: differences coprime to 9 (not multiples of 3).
        let m = multiplier_set(9, 3).expect("9 admits 3 multipliers");
        for i in 0..m.len() {
            for j in i + 1..m.len() {
                assert!(!(m[j] - m[i]).is_multiple_of(3));
            }
        }
    }

    #[test]
    fn composite_group_size_falls_back_to_naive() {
        // g = 4 with k = 3 has no rotational multipliers...
        let d = bibd::fano();
        assert!(OiRaidConfig::new(d.clone(), 4, 1).is_err());
        // ...but the naive skew accepts it.
        let cfg = OiRaidConfig::with_skew(d, 4, 1, SkewMode::Naive).unwrap();
        assert_eq!(cfg.multipliers(), &[0, 0, 0]);
    }

    #[test]
    fn inner_parity_generalization_validates() {
        let base = OiRaidConfig::reference();
        assert_eq!(base.inner_parities(), 1);
        let dual = base.clone().with_inner_parities(2).unwrap();
        assert_eq!(dual.inner_parities(), 2);
        assert!(OiRaidConfig::reference().with_inner_parities(0).is_err());
        assert!(OiRaidConfig::reference().with_inner_parities(3).is_err());
        // p must stay below g.
        let tight = OiRaidConfig::new(bibd::fano(), 2, 1);
        // g=2 < k=3 has no rotational multipliers, so build naive.
        let tight = tight
            .or_else(|_| OiRaidConfig::with_skew(bibd::fano(), 2, 1, SkewMode::Naive))
            .unwrap();
        assert!(tight.with_inner_parities(2).is_err());
    }

    #[test]
    fn group_size_can_exceed_k() {
        let cfg = OiRaidConfig::new(bibd::fano(), 5, 2).unwrap();
        assert_eq!(cfg.disks(), 35);
        assert_eq!(cfg.chunks_per_disk(), 5 * 3 * 2);
    }
}
