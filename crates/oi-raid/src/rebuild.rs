//! Self-healing, plan-driven rebuild engine: executes a
//! [`layout::RecoveryPlan`] against the store's block devices, serially or
//! with one reader thread per surviving disk, and *absorbs* device faults
//! instead of dying on them.
//!
//! The engine runs in rounds. Every read goes through a
//! [`RetryReader`](blockdev::RetryReader): transient faults are retried
//! with bounded deterministic backoff; coalesced runs degrade to per-chunk
//! reads so one bad sector costs one chunk, not the batch. A chunk that
//! stays unreadable after its retry budget (a latent sector error) is
//! *re-routed*: the next round re-derives it — and everything that needed
//! it — through an alternate read set via the chunk-granular planner
//! ([`crate::OiRaid::chunk_recovery_plan`]), then rewrites the bad sector
//! in place (repairing it). If a surviving disk dies outright mid-rebuild,
//! the engine *escalates*: the dead disk joins the rebuild targets, the
//! failure set is re-planned, and already-rebuilt chunks are not re-read.
//! Escalations are capped at the array's fault tolerance; patterns that
//! become unrecoverable return [`RebuildOutcome::Aborted`] with the target
//! disks re-failed — a half-written disk never masquerades as healthy.
//!
//! Both modes share one pure combine function per plan item, so serial and
//! parallel rebuilds are bit-identical by construction — including under
//! injected faults, because re-routed chunks are fixed by the same parity
//! relations (property-tested in `tests/rebuild_engine.rs` and
//! `tests/self_healing.rs`).
//!
//! The data path avoids per-chunk allocation: a [`BufPool`] recycles chunk
//! buffers between readers and the combiner, and adjacent same-disk reads in
//! each per-disk queue are coalesced into single [`BlockDevice::read_chunks`]
//! calls. Both modes coalesce from the same [`RecoveryPlan::reads_by_disk`]
//! queues, so their device read counters stay equal.
//!
//! While a rebuild is in flight the store stays **online**: the engine opens
//! a rebuild window (see `crate::online`) before healing the target devices,
//! so foreground reads treat not-yet-rebuilt chunks as missing and
//! foreground writes land degraded, marking the parity relations they touch
//! dirty. Each round clears the dirty set under the update lock; a
//! reconstruction whose (transitive) inputs intersect a dirtied relation is
//! discarded at writeback — the next round recomputes it from the updated
//! parity, so stale reconstructions never clobber foreground writes.
//! Rebuild read batches are paced by the store's
//! [`QosConfig`](crate::QosConfig) token bucket whenever foreground traffic
//! is active.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gf::kernels::xor_acc;

use blockdev::{
    crash_point, write_chunk_retrying, BlockDevice, CounterSnapshot, DeviceError, RetryCounters,
    RetryReader, RetryStats,
};
use ecc::ErasureCode;
use layout::{ChunkAddr, Layout, RecoveryPlan, SparePolicy};
use telemetry::{HistogramSnapshot, Span};

use crate::bufpool::BufPool;
use crate::checkpoint::RebuildCheckpoint;
use crate::geometry::Geometry;
use crate::observe::{RebuildObserver, StageSummary};
use crate::online::Region;
use crate::recovery::single_failure_plan;
use crate::store::{CheckpointPolicy, OiRaidStore, StoreError};
use crate::RecoveryStrategy;

/// How the rebuild engine executes a recovery plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildMode {
    /// One item at a time, reads issued inline in plan order.
    Serial,
    /// One reader thread per surviving disk with scheduled reads; a combiner
    /// on the calling thread decodes as inputs arrive.
    Parallel,
    /// The plan lowered into an explicit op DAG (read → combine → writeback
    /// nodes with atomic indegrees) executed by a work-stealing pool over
    /// per-device ready queues — no round barrier between read, decode, and
    /// writeback; see [`crates/sched`](sched).
    Dag,
}

impl fmt::Display for RebuildMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Serial => write!(f, "serial"),
            Self::Parallel => write!(f, "parallel"),
            Self::Dag => write!(f, "dag"),
        }
    }
}

/// How a rebuild ended — the structured verdict of the self-healing loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildOutcome {
    /// Every lost chunk rebuilt on the first pass; no faults absorbed.
    Complete,
    /// Rebuilt fully, but some source chunks stayed unreadable and were
    /// re-derived through alternate read sets (and repaired by rewrite).
    CompletedWithReroutes,
    /// One or more surviving disks failed mid-rebuild; the engine
    /// re-planned against the grown failure set and still recovered
    /// everything.
    Escalated,
    /// The failure pattern became unrecoverable (or the loop stalled); the
    /// rebuild-target disks were re-failed so no partial disk masquerades
    /// as healthy.
    Aborted {
        /// Disks left failed when the rebuild gave up.
        failed: Vec<usize>,
    },
}

impl RebuildOutcome {
    /// Whether the rebuild recovered all targeted data.
    pub fn is_recovered(&self) -> bool {
        !matches!(self, Self::Aborted { .. })
    }
}

impl fmt::Display for RebuildOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Complete => write!(f, "complete"),
            Self::CompletedWithReroutes => write!(f, "complete-with-reroutes"),
            Self::Escalated => write!(f, "escalated"),
            Self::Aborted { failed } => write!(f, "aborted (failed {failed:?})"),
        }
    }
}

/// Instrumentation from one [`OiRaidStore::rebuild`] run.
#[derive(Debug, Clone)]
pub struct RebuildReport {
    /// Execution mode.
    pub mode: RebuildMode,
    /// Disks this rebuild targeted: the initially-failed set plus any disk
    /// escalated into the rebuild after dying mid-run.
    pub rebuilt_disks: Vec<usize>,
    /// How the run ended.
    pub outcome: RebuildOutcome,
    /// Execution rounds: 1 for a fault-free run, +1 per re-plan.
    pub rounds: u32,
    /// Workers used in the first round: reader threads in parallel mode,
    /// pool threads in DAG mode (0 for serial mode).
    pub workers: usize,
    /// Wall-clock time of plan execution (excludes planning and healing).
    pub wall: Duration,
    /// Lost chunks reconstructed (including latent-sector repairs).
    pub chunks_rebuilt: u64,
    /// Bytes written back to the rebuilt disks.
    pub bytes_rebuilt: u64,
    /// Individual read/write attempts retried after transient faults.
    pub retries: u64,
    /// Operations that exhausted their retry budget while still transient.
    pub retries_exhausted: u64,
    /// Total deterministic backoff slept before retries.
    pub retry_backoff: Duration,
    /// Source chunks that stayed unreadable and were re-derived through an
    /// alternate read set.
    pub reroutes: u64,
    /// Surviving-disk deaths absorbed mid-rebuild by re-planning.
    pub escalations: u64,
    /// Unreadable source sectors repaired by rewriting the re-derived
    /// value in place.
    pub latent_repairs: u64,
    /// Rebuild read batches that slept for QoS tokens (foreground traffic
    /// was active and a throttle rate was configured).
    pub throttle_waits: u64,
    /// Total time rebuild readers slept waiting for QoS tokens.
    pub throttle_wait: Duration,
    /// Per-device I/O deltas over the run, indexed by disk.
    pub device_io: Vec<CounterSnapshot>,
    /// Injected faults observed across all devices during the run.
    pub injected_faults: u64,
    /// Per-stage latency summaries (`read`/`coalesce`/`combine`/
    /// `writeback`), in pipeline order.
    pub stages: Vec<StageSummary>,
    /// Busy time per worker, in worker order: time inside device reads for
    /// parallel readers, time inside any op (read/combine/writeback) for
    /// DAG pool workers — compare against [`RebuildReport::wall`] for
    /// utilization.
    pub worker_busy: Vec<Duration>,
    /// Combiner input-queue depth distribution (parallel mode), or the
    /// scheduler's peak ready-queue depth per round (DAG mode); empty for
    /// serial mode.
    pub queue_depth: HistogramSnapshot,
    /// DAG-scheduler statistics summed over all rounds (all-zero for the
    /// serial and parallel modes).
    pub sched: sched::SchedStats,
}

impl RebuildReport {
    /// Total chunk reads issued across all devices.
    pub fn total_reads(&self) -> u64 {
        self.device_io.iter().map(|c| c.reads).sum()
    }

    /// Largest per-device read count — the rebuild bottleneck under
    /// parallel execution.
    pub fn max_device_reads(&self) -> u64 {
        self.device_io.iter().map(|c| c.reads).max().unwrap_or(0)
    }

    /// The named stage's latency summary, if it was recorded.
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Mean worker utilization over the whole pool: total busy time
    /// divided by `wall × workers`, in `0.0..=1.0` (0.0 for serial mode).
    /// Workers are parallel-mode reader threads or DAG-mode pool threads;
    /// either way each entry of [`RebuildReport::worker_busy`] is one
    /// worker's time spent inside ops.
    pub fn worker_utilization(&self) -> f64 {
        if self.worker_busy.is_empty() || self.wall.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        (busy / (self.wall.as_secs_f64() * self.worker_busy.len() as f64)).min(1.0)
    }

    /// Serializes the report as one JSON object — every field of the
    /// pinned [`fmt::Display`] line plus the heal, per-device, per-stage,
    /// and DAG-scheduler detail, for machine consumption (dashboards, the
    /// `stats` example, CI artifacts). Latency distributions are collapsed
    /// to `{count, mean, p50, p99, max}` summaries in nanoseconds.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let hist = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                h.count,
                h.mean(),
                h.p50(),
                h.p99(),
                h.max
            )
        };
        let (outcome, failed) = match &self.outcome {
            RebuildOutcome::Complete => ("complete", Vec::new()),
            RebuildOutcome::CompletedWithReroutes => ("complete_with_reroutes", Vec::new()),
            RebuildOutcome::Escalated => ("escalated", Vec::new()),
            RebuildOutcome::Aborted { failed } => ("aborted", failed.clone()),
        };
        let mut s = String::with_capacity(1024);
        s.push('{');
        let _ = write!(
            s,
            "\"mode\":{},\"rebuilt_disks\":{:?},\"outcome\":{},\"failed\":{:?},\
             \"rounds\":{},\"workers\":{},\"wall_ns\":{},\"chunks_rebuilt\":{},\
             \"bytes_rebuilt\":{},\"retries\":{},\"retries_exhausted\":{},\
             \"retry_backoff_ns\":{},\"reroutes\":{},\"escalations\":{},\
             \"latent_repairs\":{},\"throttle_waits\":{},\"throttle_wait_ns\":{},\
             \"injected_faults\":{},\"total_reads\":{},\"max_device_reads\":{},\
             \"worker_utilization\":{:.4}",
            telemetry::json_escape(&self.mode.to_string()),
            self.rebuilt_disks,
            telemetry::json_escape(outcome),
            failed,
            self.rounds,
            self.workers,
            self.wall.as_nanos(),
            self.chunks_rebuilt,
            self.bytes_rebuilt,
            self.retries,
            self.retries_exhausted,
            self.retry_backoff.as_nanos(),
            self.reroutes,
            self.escalations,
            self.latent_repairs,
            self.throttle_waits,
            self.throttle_wait.as_nanos(),
            self.injected_faults,
            self.total_reads(),
            self.max_device_reads(),
            self.worker_utilization(),
        );
        s.push_str(",\"device_io\":[");
        for (i, d) in self.device_io.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"disk\":{i},\"reads\":{},\"writes\":{},\"bytes_read\":{},\
                 \"bytes_written\":{},\"faults\":{},\"injected_latency_ns\":{},\
                 \"max_inflight\":{}}}",
                d.reads,
                d.writes,
                d.bytes_read,
                d.bytes_written,
                d.faults,
                d.injected_latency_ns,
                d.max_inflight
            );
        }
        s.push_str("],\"stages\":[");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"stage\":{},\"latency\":{}}}",
                telemetry::json_escape(st.stage),
                hist(&st.latency)
            );
        }
        s.push_str("],\"worker_busy_ns\":[");
        for (i, w) in self.worker_busy.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}", w.as_nanos());
        }
        let _ = write!(
            s,
            "],\"queue_depth\":{},\"sched\":{{\"executed\":{},\"cancelled\":{},\
             \"steals\":{},\"max_ready_depth\":{},\"max_inflight\":{}}}}}",
            hist(&self.queue_depth),
            self.sched.executed,
            self.sched.cancelled,
            self.sched.steals,
            self.sched.max_ready_depth,
            self.sched.max_inflight,
        );
        s
    }
}

impl fmt::Display for RebuildReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rebuild of {:?}: {} chunks ({} bytes) in {:?}, {} reads \
             (max {}/disk), {} workers, {} injected faults; {} after {} \
             round(s), {} retries ({} exhausted), {} reroutes, \
             {} escalations, {} latent repairs",
            self.mode,
            self.rebuilt_disks,
            self.chunks_rebuilt,
            self.bytes_rebuilt,
            self.wall,
            self.total_reads(),
            self.max_device_reads(),
            self.workers,
            self.injected_faults,
            self.outcome,
            self.rounds,
            self.retries,
            self.retries_exhausted,
            self.reroutes,
            self.escalations,
            self.latent_repairs,
        )
    }
}

/// Reconstructs one lost chunk from gathered inputs.
///
/// `inputs` maps every source address (scheduled reads *and* outputs of
/// dependency items) to its bytes; entries may be consumed (moved out), the
/// caller recycles whatever remains. `decoded` caches whole-row decodes so
/// that co-decoded siblings (multi-failure items with no sources of their
/// own) can pick up their value. Pure in its inputs — this is what makes
/// serial and parallel execution bit-identical.
fn combine(
    geo: &Geometry,
    code: &dyn ErasureCode,
    lost: ChunkAddr,
    inputs: &mut HashMap<ChunkAddr, Vec<u8>>,
    decoded: &mut HashMap<ChunkAddr, Vec<u8>>,
    pool: &BufPool,
) -> Vec<u8> {
    if inputs.is_empty() {
        // Sibling of an earlier whole-row decode (multi-failure plans emit
        // one item carrying the row's shared reads, then read-less items
        // for the other chunks co-decoded from them).
        return decoded
            .remove(&lost)
            .expect("sibling item follows its row decode");
    }
    let grp = geo.group_of(lost.disk);
    let row = lost.offset;
    let row_set = geo.row_chunks(grp, row);
    if inputs.keys().all(|a| row_set.contains(a)) {
        // Inner-row decode (handles >1 erasure when p_in = 2).
        let ordered: Vec<ChunkAddr> = geo
            .row_payload(grp, row)
            .into_iter()
            .chain(geo.inner_parities_of_row(grp, row))
            .collect();
        let mut units: Vec<Option<Vec<u8>>> = ordered.iter().map(|a| inputs.remove(a)).collect();
        code.reconstruct(&mut units).expect("within row tolerance");
        for (a, u) in ordered.iter().zip(units) {
            decoded.insert(*a, u.expect("reconstructed"));
        }
        return decoded.remove(&lost).expect("lost chunk is in its row");
    }
    let stripe_xor = |payload: ChunkAddr| -> Vec<u8> {
        let p = geo.payload_pos(payload);
        let mut acc = pool.take();
        for a in geo.stripe_chunks(p.block, p.stripe) {
            if a != payload {
                let v = inputs.get(&a).expect("stripe source gathered");
                xor_acc(&mut acc, v);
            }
        }
        acc
    };
    if !geo.is_inner_parity(lost) {
        // Outer-stripe XOR: the k − 1 other chunks of the lost payload's
        // stripe (sourced from reads and/or dependency outputs).
        return stripe_xor(lost);
    }
    // Remote inner-parity recompute (Outer-All / hybrid strategies): first
    // recover each payload of the row from its *outer* stripe, then
    // re-encode the row and keep the lost parity's role.
    let payloads: Vec<Vec<u8>> = geo
        .row_payload(grp, row)
        .into_iter()
        .map(stripe_xor)
        .collect();
    let parities = code.encode(&payloads).expect("row encodes");
    let role = geo
        .inner_parities_of_row(grp, row)
        .iter()
        .position(|a| *a == lost)
        .expect("lost parity is in its row");
    parities[role].clone()
}

/// Reconstructed chunks in completion order, buffered for write-back.
type Finished = Vec<(ChunkAddr, Vec<u8>)>;

/// Dataflow state for one plan execution: tracks, per item, how many inputs
/// are still outstanding, and cascades computation as they arrive. Finished
/// chunks are buffered (in completion order) and written back by the caller
/// — values are fixed by [`combine`], so write timing cannot change bits.
struct Combiner<'p> {
    geo: &'p Geometry,
    code: &'p dyn ErasureCode,
    plan: &'p RecoveryPlan,
    pool: &'p BufPool,
    obs: &'p RebuildObserver,
    /// Gathered read bytes per item.
    inputs: Vec<HashMap<ChunkAddr, Vec<u8>>>,
    /// Outstanding (reads, dependencies) per item.
    pending: Vec<(usize, usize)>,
    /// Reverse dependency edges (plan `depends` plus sibling links); taken
    /// (consumed) when the item completes.
    dependents: Vec<Vec<usize>>,
    /// Forward dependency edges; sibling links are marked so their output
    /// is not folded into `inputs` (siblings read the decode cache). Taken
    /// when the item starts computing.
    depends: Vec<Vec<(usize, bool)>>,
    /// Reconstructed chunk per completed item, kept only while dependents
    /// still consume it (see `output_uses`).
    outputs: Vec<Option<Vec<u8>>>,
    /// Remaining non-sibling dependents per item: the last consumer moves
    /// the output out instead of cloning.
    output_uses: Vec<usize>,
    /// Whole-row decode cache for sibling items.
    decoded: HashMap<ChunkAddr, Vec<u8>>,
    /// Items whose inputs are all present, not yet computed.
    ready: Vec<usize>,
    /// Reconstructed chunks in completion order.
    finished: Finished,
    remaining: usize,
}

impl<'p> Combiner<'p> {
    fn new(
        geo: &'p Geometry,
        code: &'p dyn ErasureCode,
        plan: &'p RecoveryPlan,
        pool: &'p BufPool,
        obs: &'p RebuildObserver,
    ) -> Self {
        let items = plan.items();
        let n = items.len();
        let mut depends: Vec<Vec<(usize, bool)>> = items
            .iter()
            .map(|it| it.depends.iter().map(|&d| (d, false)).collect())
            .collect();
        // Read-less, dependency-less items are co-decoded siblings: link
        // them to the nearest earlier item of the same inner row that has
        // sources, so they wait for that row decode.
        for (idx, deps) in depends.iter_mut().enumerate() {
            if let Some(provider) = sibling_provider(geo, items, idx) {
                deps.push((provider, true));
            }
        }
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut output_uses = vec![0usize; n];
        let mut pending = Vec::with_capacity(n);
        let mut ready = Vec::new();
        for (idx, it) in items.iter().enumerate() {
            for &(d, sibling) in &depends[idx] {
                dependents[d].push(idx);
                if !sibling {
                    output_uses[d] += 1;
                }
            }
            pending.push((it.reads.len(), depends[idx].len()));
            if pending[idx] == (0, 0) {
                ready.push(idx);
            }
        }
        Self {
            geo,
            code,
            plan,
            pool,
            obs,
            inputs: vec![HashMap::new(); n],
            pending,
            dependents,
            depends,
            outputs: vec![None; n],
            output_uses,
            decoded: HashMap::new(),
            ready,
            finished: Vec::new(),
            remaining: n,
        }
    }

    fn deliver_read(&mut self, idx: usize, addr: ChunkAddr, bytes: Vec<u8>) {
        self.inputs[idx].insert(addr, bytes);
        self.pending[idx].0 -= 1;
        if self.pending[idx] == (0, 0) {
            self.ready.push(idx);
        }
    }

    /// Computes every ready item, cascading through items that become ready
    /// in turn.
    fn drain(&mut self) {
        while let Some(idx) = self.ready.pop() {
            let began = Instant::now();
            // Fold (non-sibling) dependency outputs into the input map,
            // keyed by the dependency's lost address. The last consumer of
            // an output moves it; earlier consumers clone.
            for (d, sibling_link) in std::mem::take(&mut self.depends[idx]) {
                if sibling_link {
                    continue;
                }
                let dep_lost = self.plan.items()[d].lost;
                self.output_uses[d] -= 1;
                let out = if self.output_uses[d] == 0 {
                    self.outputs[d].take().expect("dependency completed")
                } else {
                    self.outputs[d].clone().expect("dependency completed")
                };
                self.inputs[idx].insert(dep_lost, out);
            }
            let lost = self.plan.items()[idx].lost;
            let value = combine(
                self.geo,
                self.code,
                lost,
                &mut self.inputs[idx],
                &mut self.decoded,
                self.pool,
            );
            // Consumed inputs are gone; recycle what combine left behind.
            for (_, b) in self.inputs[idx].drain() {
                self.pool.put(b);
            }
            for dep in std::mem::take(&mut self.dependents[idx]) {
                self.pending[dep].1 -= 1;
                if self.pending[dep] == (0, 0) {
                    self.ready.push(dep);
                }
            }
            if self.output_uses[idx] > 0 {
                self.outputs[idx] = Some(value.clone());
            }
            self.finished.push((lost, value));
            self.remaining -= 1;
            self.obs.stages.combine.record_duration(began.elapsed());
            self.obs.progress.chunk_combined();
        }
    }
}

/// Splits a per-disk read queue into maximal runs of consecutive chunk
/// offsets (as `start..end` index pairs), preserving queue order; each run
/// becomes one [`BlockDevice::read_chunks`] call. Every execution mode
/// coalesces the same queues, so their device read counts stay equal.
fn coalesce_bounds(queue: &[(usize, ChunkAddr)]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut start = 0;
    for i in 1..=queue.len() {
        if i == queue.len() || queue[i].1.offset != queue[i - 1].1.offset + 1 {
            runs.push((start, i));
            start = i;
        }
    }
    runs
}

/// The sibling linkage rule shared by the combiner, the dirty footprints,
/// and the DAG builder: a read-less, dependency-less plan item is a
/// co-decoded *sibling* whose value comes from the nearest **earlier**
/// same-inner-row item that has sources of its own (multi-failure plans
/// emit one item carrying a row's shared reads, then read-less items for
/// the other chunks co-decoded from them). `None` when `idx` is not a
/// sibling.
fn sibling_provider(geo: &Geometry, items: &[layout::ChunkRecovery], idx: usize) -> Option<usize> {
    if !items[idx].reads.is_empty() || !items[idx].depends.is_empty() {
        return None;
    }
    let lost = items[idx].lost;
    let (grp, row) = (geo.group_of(lost.disk), lost.offset);
    let provider = (0..idx)
        .rev()
        .find(|&j| {
            let l = items[j].lost;
            geo.group_of(l.disk) == grp
                && l.offset == row
                && !(items[j].reads.is_empty() && items[j].depends.is_empty())
        })
        .expect("sibling item has a row-decode provider");
    Some(provider)
}

/// The plan's per-disk read queues, pre-coalesced into runs, with the QoS
/// charge applied at dequeue. Every executor — the serial loop, the
/// parallel per-disk readers, and the DAG read ops — takes runs through
/// [`RunQueues::dequeue`], so rebuild I/O pays the store's token bucket in
/// exactly one place: concurrent executors (a rebuild and a repairing
/// scrub, say) draw from the same bucket instead of each charging its own
/// copy of the accounting against the same refill window.
struct RunQueues {
    /// `(disk, read queue)` per surviving disk with scheduled reads.
    queues: Vec<(usize, Vec<(usize, ChunkAddr)>)>,
    /// Per-queue run boundaries (`start..end` into the queue), maximal
    /// consecutive-offset spans in queue order — identical across modes,
    /// which is what keeps per-device read counters equal.
    runs: Vec<Vec<(usize, usize)>>,
}

impl RunQueues {
    /// Builds the queues from the plan, recording per-queue coalesce time.
    fn build(plan: &RecoveryPlan, obs: &RebuildObserver) -> Self {
        let queues = plan.reads_by_disk();
        let runs = queues
            .iter()
            .map(|(_, queue)| {
                let began = Instant::now();
                let runs = coalesce_bounds(queue);
                obs.stages.coalesce.record_duration(began.elapsed());
                runs
            })
            .collect();
        Self { queues, runs }
    }

    /// Number of per-disk queues.
    fn len(&self) -> usize {
        self.queues.len()
    }

    /// The disk queue `qi` reads from.
    fn disk(&self, qi: usize) -> usize {
        self.queues[qi].0
    }

    /// Number of coalesced runs in queue `qi`.
    fn runs_in(&self, qi: usize) -> usize {
        self.runs[qi].len()
    }

    /// Run `ri` of queue `qi` without dequeuing it — no QoS charge. For
    /// graph building and for skipping runs on a dead disk.
    fn peek(&self, qi: usize, ri: usize) -> Run<'_> {
        let (start, end) = self.runs[qi][ri];
        &self.queues[qi].1[start..end]
    }

    /// Takes run `ri` of queue `qi`, paying the rebuild token bucket for
    /// its chunks. This is the single QoS charge point for rebuild reads.
    fn dequeue<'a>(&'a self, qos: &crate::qos::QosState, qi: usize, ri: usize) -> Run<'a> {
        let run = self.peek(qi, ri);
        qos.throttle_rebuild(run.len());
        run
    }
}

/// One coalesced read run: `(item index, source address)` pairs with
/// consecutive offsets on a single disk.
type Run<'a> = &'a [(usize, ChunkAddr)];

/// Serves one coalesced run through a retrying reader, degrading instead of
/// failing: transient faults are retried, a chunk that stays unreadable is
/// reported (for re-routing) without poisoning the rest of the run.
///
/// Returns `(delivered reads, unreadable chunks, device died)`.
#[allow(clippy::type_complexity)]
fn read_run_healing<B: BlockDevice>(
    reader: &RetryReader<'_, B>,
    run: &[(usize, ChunkAddr)],
    chunk_size: usize,
    pool: &BufPool,
) -> (
    Vec<(usize, ChunkAddr, Vec<u8>)>,
    Vec<(ChunkAddr, DeviceError)>,
    bool,
) {
    if let [(idx, addr)] = run {
        let mut buf = pool.take();
        return match reader.read_chunk(addr.offset, &mut buf) {
            Ok(()) => (vec![(*idx, *addr, buf)], Vec::new(), false),
            Err(e) => {
                pool.put(buf);
                let died = matches!(e, DeviceError::Failed);
                (Vec::new(), vec![(*addr, e)], died)
            }
        };
    }
    let mut batch = vec![0u8; run.len() * chunk_size];
    let failures = reader.read_chunks_degrading(run[0].1.offset, run.len(), &mut batch);
    let died = failures
        .iter()
        .any(|(_, e)| matches!(e, DeviceError::Failed));
    let bad: HashMap<usize, DeviceError> = failures.into_iter().collect();
    let mut delivered = Vec::new();
    let mut unreadable = Vec::new();
    for (&(idx, addr), bytes) in run.iter().zip(batch.chunks_exact(chunk_size)) {
        match bad.get(&addr.offset) {
            Some(e) => unreadable.push((addr, e.clone())),
            None => {
                let mut buf = pool.take();
                buf.copy_from_slice(bytes);
                delivered.push((idx, addr, buf));
            }
        }
    }
    (delivered, unreadable, died)
}

/// What one round of plan execution produced. Rounds are infallible: faults
/// become entries in `unreadable`/`dead_disks` for the driver loop to heal
/// around instead of errors that abort the rebuild. Shared with the
/// repairing scrub in [`crate::store`].
pub(crate) struct RoundOutput {
    /// Reconstructed chunks, in completion order. Empty in DAG mode, whose
    /// pool writes chunks back itself — see `writes`.
    pub(crate) finished: Finished,
    /// Source chunks that stayed unreadable after their retry budget.
    pub(crate) unreadable: Vec<(ChunkAddr, DeviceError)>,
    /// Disks that reported [`DeviceError::Failed`] while serving reads.
    pub(crate) dead_disks: BTreeSet<usize>,
    /// Retry activity summed over all of this round's readers.
    pub(crate) retry: RetryCounters,
    workers: usize,
    worker_busy: Vec<Duration>,
    /// `Some` when writebacks already happened inside the executor (DAG
    /// mode): the driver folds them into its bookkeeping instead of
    /// issuing its own writes.
    writes: Option<DagWrites>,
    /// Scheduler statistics (all-zero outside DAG mode).
    sched: sched::SchedStats,
}

/// Writeback results of one DAG round: the pool wrote each reconstructed
/// chunk back as soon as its combine op finished (under that item's region
/// locks, with the same dirty check the barrier modes apply).
struct DagWrites {
    /// Chunks written back and marked valid.
    written: Vec<ChunkAddr>,
    /// Writebacks discarded because a foreground write dirtied an input
    /// relation since the round began.
    dirty_skips: u32,
}

/// One node of the lowered rebuild DAG (see
/// [`OiRaidStore::execute_dag_round`]'s graph construction for the edges
/// between them).
#[derive(Debug, Clone, Copy)]
enum DagOp {
    /// Serve coalesced run `ri` of per-disk queue `qi`; feeds every combine
    /// whose item reads from the run.
    Read { qi: usize, ri: usize },
    /// Reconstruct plan item `idx` from its delivered reads and dependency
    /// outputs.
    Combine { idx: usize },
    /// Write item `idx`'s reconstructed value back to the rebuilt disk,
    /// dirty-checked under the item's region locks.
    Write { idx: usize },
}

/// Locks a mutex, tolerating poisoning: a panicking op callback must not
/// wedge the rest of the pool.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl<B: BlockDevice> OiRaidStore<B> {
    /// Rebuilds *all* currently-failed disks by executing a recovery plan
    /// against the block devices, self-healing around device faults, and
    /// reports per-device instrumentation plus a structured
    /// [`RebuildOutcome`].
    ///
    /// Single failures use the strategy-specific planner (`strategy` picks
    /// local-row / outer-stripe / declustered / hybrid reads); larger
    /// patterns use the multi-failure cascade planner. Serial and parallel
    /// modes produce bit-identical disks, with or without faults.
    ///
    /// Fault handling (see the module docs): transient faults are retried
    /// under [`OiRaidStore::retry_policy`], unreadable sectors are
    /// re-derived through alternate read sets and repaired in place, and
    /// mid-rebuild disk deaths escalate into the rebuild. None of these
    /// return `Err` — check [`RebuildReport::outcome`]; an unrecoverable
    /// run ends in [`RebuildOutcome::Aborted`] with the target disks
    /// re-failed.
    ///
    /// The store stays **online** throughout: foreground reads and writes
    /// keep working against not-yet-rebuilt chunks (served degraded), and
    /// stripes written during the rebuild are never clobbered by stale
    /// reconstructed data. Rebuild reads yield to foreground traffic per
    /// the store's [`QosConfig`](crate::QosConfig).
    ///
    /// # Errors
    ///
    /// [`StoreError::DataLoss`] when the *initial* failure pattern is
    /// unrecoverable (no state is changed); [`StoreError::Device`] if a
    /// failed disk cannot be brought back online for writing.
    pub fn rebuild(
        &self,
        mode: RebuildMode,
        strategy: RecoveryStrategy,
    ) -> Result<RebuildReport, StoreError> {
        self.rebuild_observed(mode, strategy, &RebuildObserver::default())
    }

    /// [`OiRaidStore::rebuild`] with caller-provided telemetry sinks: the
    /// observer's [`Progress`](telemetry::Progress) can be polled from
    /// another thread while this runs, its tracer captures per-stage and
    /// per-reader spans, its stage histograms accumulate latencies, and its
    /// [`HealCounters`](crate::HealCounters) tick live as faults are
    /// absorbed (none are reset per call — hand in a fresh observer to
    /// scope them to one run).
    ///
    /// # Errors
    ///
    /// As for [`OiRaidStore::rebuild`].
    pub fn rebuild_observed(
        &self,
        mode: RebuildMode,
        strategy: RecoveryStrategy,
        obs: &RebuildObserver,
    ) -> Result<RebuildReport, StoreError> {
        self.rebuild_inner(mode, strategy, obs, None)
    }

    /// Resumes a crashed rebuild from the store's checkpoint (see
    /// [`crate::RebuildCheckpoint`] and
    /// [`OiRaidStore::set_checkpoint_policy`]): chunks the checkpoint
    /// records as already restored are pre-marked valid, the progress
    /// gauge starts pre-credited (never "0% again" after a restart), and
    /// recovery is planned only for what is still missing — a resumed
    /// rebuild reads strictly fewer source chunks than a from-scratch one.
    ///
    /// Degrades, never aborts: with no checkpoint policy, a missing /
    /// corrupt / truncated checkpoint file, or a checkpoint that does not
    /// cover the currently-failed disks (it is stale), this falls back to
    /// a full [`OiRaidStore::rebuild_observed`].
    ///
    /// Failure state decides what the checkpoint is worth per disk. A
    /// *healthy* target disk survived as a device (the process crashed,
    /// the platter did not): its checkpointed chunks are trusted and
    /// skipped. A *currently-failed* target disk is a real (re)failure —
    /// healing replaces it with a blank device (see
    /// [`blockdev::FileDevice`]'s heal semantics) — so its checkpointed
    /// chunks are discarded and the whole disk is rebuilt. Do **not**
    /// re-fail an intact mid-rebuild disk before resuming; re-fail only
    /// disks that are genuinely dead (see [`OiRaidStore::open_durable`]).
    ///
    /// The returned report's `chunks_rebuilt` counts every chunk that is
    /// valid when the rebuild finishes, including the checkpointed ones —
    /// compare device read counters, not the report, to measure the work
    /// saved by resuming.
    ///
    /// # Errors
    ///
    /// As for [`OiRaidStore::rebuild`].
    pub fn resume_rebuild(
        &self,
        mode: RebuildMode,
        strategy: RecoveryStrategy,
        obs: &RebuildObserver,
    ) -> Result<RebuildReport, StoreError> {
        let Some(policy) = self.checkpoint_policy() else {
            return self.rebuild_inner(mode, strategy, obs, None);
        };
        let Some(mut ckpt) = RebuildCheckpoint::load(&policy.path) else {
            return self.rebuild_inner(mode, strategy, obs, None);
        };
        let disks = self.array().disks();
        let chunks_per_disk = self.array().chunks_per_disk();
        let failed = self.failed_disks();
        let usable = !ckpt.targets.is_empty()
            && ckpt.targets.iter().all(|&d| d < disks)
            && ckpt
                .valid
                .iter()
                .all(|a| ckpt.targets.contains(&a.disk) && a.offset < chunks_per_disk)
            && failed.iter().all(|d| ckpt.targets.contains(d));
        if !usable {
            // A checkpoint that fails sanity (geometry drift, or a disk
            // failed that it knows nothing about) is stale: discard it and
            // rebuild everything that is down from scratch.
            RebuildCheckpoint::remove(&policy.path);
            return self.rebuild_inner(mode, strategy, obs, None);
        }
        // A currently-failed target is a real (re)failure: healing swaps in
        // a blank device, so whatever the checkpoint restored there is gone.
        ckpt.valid.retain(|a| !failed.contains(&a.disk));
        self.rebuild_inner(mode, strategy, obs, Some(ckpt))
    }

    fn rebuild_inner(
        &self,
        mode: RebuildMode,
        strategy: RecoveryStrategy,
        obs: &RebuildObserver,
        resume: Option<RebuildCheckpoint>,
    ) -> Result<RebuildReport, StoreError> {
        let initially_failed = match &resume {
            Some(ckpt) => ckpt.targets.iter().copied().collect(),
            None => self.failed_disks(),
        };
        let before: Vec<CounterSnapshot> = self.devices().iter().map(|d| d.counters()).collect();
        if initially_failed.is_empty() {
            return Ok(RebuildReport {
                mode,
                rebuilt_disks: initially_failed,
                outcome: RebuildOutcome::Complete,
                rounds: 0,
                workers: 0,
                wall: Duration::ZERO,
                chunks_rebuilt: 0,
                bytes_rebuilt: 0,
                retries: 0,
                retries_exhausted: 0,
                retry_backoff: Duration::ZERO,
                reroutes: 0,
                escalations: 0,
                latent_repairs: 0,
                throttle_waits: 0,
                throttle_wait: Duration::ZERO,
                device_io: vec![CounterSnapshot::default(); before.len()],
                injected_faults: 0,
                stages: Vec::new(),
                worker_busy: Vec::new(),
                queue_depth: HistogramSnapshot::default(),
                sched: sched::SchedStats::default(),
            });
        }
        let root = obs.tracer.span("rebuild");
        // Rebuilds bypass request sampling (`trace_always`): there is at
        // most one in flight and its causal tree — rounds, scheduled ops,
        // device I/O — is the primary diagnostic for a slow recovery.
        let rebuild_trace = telemetry::trace_always();
        if rebuild_trace != 0 {
            telemetry::trace_event(
                telemetry::EventKind::Rebuild,
                rebuild_trace,
                0,
                initially_failed.len() as u64,
                initially_failed.first().map_or(0, |&d| d as u64),
            );
        }
        let chunks_per_disk = self.array().chunks_per_disk();
        let mut lost: BTreeSet<ChunkAddr> = initially_failed
            .iter()
            .flat_map(|&d| (0..chunks_per_disk).map(move |o| ChunkAddr::new(d, o)))
            .collect();
        let mut rebuilt: BTreeSet<ChunkAddr> = match &resume {
            Some(ckpt) => ckpt
                .valid
                .iter()
                .copied()
                .filter(|a| lost.contains(a))
                .collect(),
            None => BTreeSet::new(),
        };
        let mut plan = {
            let _s = root.child("plan");
            if resume.is_some() {
                // Resume: only what the checkpoint does not cover needs
                // recovery — chunk-granular, same planner reroutes use.
                let missing: BTreeSet<ChunkAddr> = lost.difference(&rebuilt).copied().collect();
                self.array()
                    .chunk_recovery_plan(&missing)
                    .map_err(|_| StoreError::DataLoss)?
            } else if initially_failed.len() == 1 {
                single_failure_plan(
                    self.array(),
                    initially_failed[0],
                    SparePolicy::Distributed,
                    strategy,
                )
                .map_err(|_| StoreError::DataLoss)?
            } else {
                Layout::recovery_plan(self.array(), &initially_failed, SparePolicy::Distributed)
                    .map_err(|_| StoreError::DataLoss)?
            }
        };
        match &resume {
            Some(_) => {
                obs.progress
                    .begin_resumed(lost.len() as u64, rebuilt.len() as u64);
                telemetry::flight_event(
                    telemetry::EventKind::CheckpointResume,
                    rebuilt.len() as u64,
                    lost.len() as u64,
                );
            }
            None => obs.progress.begin(plan.items().len() as u64),
        }

        {
            let _s = root.child("heal");
            // Open the rebuild window *before* healing: the instant a device
            // answers reads again, its not-yet-rebuilt chunks must already
            // read as missing to concurrent foreground I/O.
            self.online().begin(initially_failed.iter().copied());
            if let Some(ckpt) = &resume {
                // Checkpointed chunks hold trustworthy bytes: readable the
                // moment the devices heal, and excluded from re-recovery.
                self.online().restore_valid(ckpt.valid.iter().copied());
            }
            for &d in &initially_failed {
                if let Err(error) = self.devices()[d].heal() {
                    for &t in &initially_failed {
                        self.devices()[t].fail();
                    }
                    self.online().end();
                    return Err(StoreError::Device { disk: d, error });
                }
            }
        }
        let qos_before = self.qos().counters();
        let start = Instant::now();
        let chunk_size = self.chunk_size();
        let tolerance = self.array().fault_tolerance() as u64;
        let policy = self.retry_policy();
        // A generous hard ceiling on rounds: each round must either rebuild
        // a chunk or grow the avoid set, both bounded by the array size, so
        // hitting this means the loop is broken, not the disks.
        let round_cap = 4 * (self.array().disks() * chunks_per_disk) as u32 + 8;

        // The self-healing loop's state. `lost` / `rebuilt` track rebuild
        // targets; `avoid` is the (near-monotone) set of source chunks that
        // proved unreadable — never read again, always re-derived;
        // `repaired` marks avoided chunks whose re-derived value was
        // rewritten in place (readable again unless they fail anew).
        let mut target_disks = initially_failed.clone();
        let mut avoid: BTreeSet<ChunkAddr> = BTreeSet::new();
        let mut repaired: BTreeSet<ChunkAddr> = BTreeSet::new();

        let mut rounds = 0u32;
        let mut escalations = 0u64;
        let mut reroutes = 0u64;
        let mut retry = RetryCounters::default();
        let write_stats = RetryStats::default();
        let mut workers = 0usize;
        let mut worker_busy: Vec<Duration> = Vec::new();
        let mut sched_stats = sched::SchedStats::default();
        let mut stall = 0u32;
        let mut aborted: Option<Vec<usize>> = None;
        // Checkpoint cadence: every `interval` credited chunks (and at each
        // round boundary) the window's valid set is persisted so a crashed
        // process resumes instead of restarting.
        let ckpt_policy = self.checkpoint_policy();
        let ckpt_interval = ckpt_policy.as_ref().map_or(u64::MAX, |p| p.interval.max(1));
        let mut credits_since_ckpt = 0u64;

        loop {
            rounds += 1;
            // Each round is a child node; the whole round body (planning,
            // execution, writeback) runs under it, so DAG nodes built this
            // round link back through it to the rebuild root.
            let round_trace = if rebuild_trace != 0 {
                let t = telemetry::alloc_trace_id();
                telemetry::trace_event(
                    telemetry::EventKind::RebuildRound,
                    t,
                    rebuild_trace,
                    u64::from(rounds),
                    0,
                );
                t
            } else {
                0
            };
            let _round_guard = (round_trace != 0).then(|| telemetry::enter_trace(round_trace));
            let (regions, item_of) = {
                let _s = root.child("plan");
                {
                    // New dirty epoch: writes completed before this point
                    // are visible to every read this round issues; writes
                    // that land later re-mark their relations and are
                    // caught at writeback.
                    let _g = self.online().lock_updates();
                    self.online().clear_dirty();
                }
                let item_of: HashMap<ChunkAddr, usize> = plan
                    .items()
                    .iter()
                    .enumerate()
                    .map(|(i, it)| (it.lost, i))
                    .collect();
                (self.plan_regions(&plan), item_of)
            };
            let out = {
                let exec = root.child("execute");
                match mode {
                    RebuildMode::Serial => self.execute_serial_round(&plan, obs),
                    RebuildMode::Parallel => self.execute_parallel_round(&plan, obs, &exec),
                    RebuildMode::Dag => self.execute_dag_round(&plan, &regions, obs, &exec),
                }
            };
            if rounds == 1 {
                workers = out.workers;
                worker_busy = out.worker_busy;
            }
            retry = retry.merged(&out.retry);
            sched_stats.absorb(&out.sched);
            let mut died = out.dead_disks;
            let mut progressed = false;
            let mut dirty_skips = 0u32;
            {
                let _s = root.child("writeback");
                // Credits one successfully-written chunk in the heal loop's
                // books (used by both the in-round DAG writebacks and the
                // barrier modes' writeback pass below).
                let mut credit = |addr: ChunkAddr| {
                    let mut fresh = false;
                    if lost.contains(&addr) {
                        fresh |= rebuilt.insert(addr);
                    }
                    if avoid.contains(&addr) && repaired.insert(addr) {
                        obs.heal.latent_repairs.inc();
                        telemetry::flight_event(
                            telemetry::EventKind::LatentRepair,
                            addr.disk as u64,
                            addr.offset as u64,
                        );
                        fresh = true;
                    }
                    if fresh {
                        obs.progress.chunk_written(chunk_size as u64);
                        progressed = true;
                        credits_since_ckpt += 1;
                        if credits_since_ckpt >= ckpt_interval {
                            credits_since_ckpt = 0;
                            if let Some(p) = ckpt_policy.as_ref() {
                                self.save_checkpoint_now(p);
                            }
                        }
                    }
                };
                if let Some(w) = out.writes {
                    // DAG rounds write back inside the round, each chunk
                    // under its own region locks the moment its combine
                    // finishes; only the bookkeeping is left to do here.
                    dirty_skips = w.dirty_skips;
                    for addr in w.written {
                        credit(addr);
                    }
                } else {
                    for (addr, value) in out.finished {
                        if died.contains(&addr.disk) {
                            continue;
                        }
                        let began = Instant::now();
                        // The dirty check, the write, and the validity mark
                        // form one atom under the item's region locks: no
                        // foreground write can slip between "inputs were
                        // clean" and "chunk is live" and then be clobbered,
                        // yet writes to unrelated relations proceed freely.
                        let footprint = item_of
                            .get(&addr)
                            .map(|&i| regions[i].as_slice())
                            .unwrap_or_default();
                        let guard = self.online().lock_regions(footprint);
                        if self.online().any_dirty(footprint) {
                            // A foreground write touched a relation this
                            // value was derived from: the reconstruction may
                            // be stale or torn. Drop it; next round
                            // recomputes it from the updated parity.
                            drop(guard);
                            dirty_skips += 1;
                            continue;
                        }
                        let wrote = write_chunk_retrying(
                            &self.devices()[addr.disk],
                            &policy,
                            &write_stats,
                            addr.offset,
                            &value,
                        );
                        if wrote.is_ok() {
                            self.online().mark_valid(addr);
                        }
                        drop(guard);
                        match wrote {
                            Ok(()) => {
                                obs.stages.writeback.record_duration(began.elapsed());
                                crash_point("rebuild_writeback");
                                credit(addr);
                            }
                            Err(e) if e.is_transient() => {
                                // Write retry budget exhausted: the chunk
                                // stays un-rebuilt, the next round retries.
                            }
                            Err(_) => {
                                // The disk died (or broke permanently) under
                                // write: escalate it.
                                died.insert(addr.disk);
                            }
                        }
                    }
                }
            }
            for (addr, _e) in out.unreadable {
                if died.contains(&addr.disk) {
                    continue; // the whole disk escalates instead
                }
                let newly_avoided = avoid.insert(addr);
                let un_repaired = repaired.remove(&addr);
                if newly_avoided {
                    reroutes += 1;
                    obs.heal.reroutes.inc();
                    telemetry::flight_event(
                        telemetry::EventKind::Reroute,
                        addr.disk as u64,
                        addr.offset as u64,
                    );
                }
                progressed |= newly_avoided || un_repaired;
            }
            // Mid-rebuild disk deaths: fold each dead disk into the rebuild
            // targets, void whatever was already credited on it, and bring
            // its (blank) device back online so re-planned writes land.
            for &d in &died {
                let newly_escalated = !target_disks.contains(&d);
                if newly_escalated {
                    escalations += 1;
                    obs.heal.escalations.inc();
                    telemetry::flight_event(
                        telemetry::EventKind::Escalation,
                        d as u64,
                        escalations,
                    );
                    target_disks.push(d);
                    lost.extend((0..chunks_per_disk).map(|o| ChunkAddr::new(d, o)));
                }
                let voided = rebuilt.iter().filter(|a| a.disk == d).count()
                    + repaired.iter().filter(|a| a.disk == d).count();
                rebuilt.retain(|a| a.disk != d);
                repaired.retain(|a| a.disk != d);
                avoid.retain(|a| a.disk != d);
                let grown = if newly_escalated { chunks_per_disk } else { 0 } + voided;
                obs.progress.add_total_chunks(grown as u64);
                // Fold the dead disk into the window (its contents are
                // garbage again) *before* healing brings it back online.
                self.online().escalate(d);
                self.devices()[d].fail();
                if let Err(error) = self.devices()[d].heal() {
                    for &t in &target_disks {
                        self.devices()[t].fail();
                    }
                    self.online().end();
                    return Err(StoreError::Device { disk: d, error });
                }
                progressed = true;
            }
            if escalations > tolerance {
                aborted = Some(target_disks.clone());
                break;
            }
            let mut missing: BTreeSet<ChunkAddr> = lost.difference(&rebuilt).copied().collect();
            missing.extend(avoid.difference(&repaired).copied());
            if missing.is_empty() {
                break;
            }
            // Dirty-skipped writebacks are deferred work, not a stall: the
            // next round recomputes them from the updated parity. Only
            // rounds that neither progressed nor deferred count toward the
            // stall abort (round_cap still bounds a pathological writer).
            if dirty_skips > 0 {
                telemetry::flight_event(
                    telemetry::EventKind::DirtySkip,
                    u64::from(dirty_skips),
                    u64::from(rounds),
                );
            }
            stall = if progressed {
                0
            } else if dirty_skips > 0 {
                stall
            } else {
                telemetry::flight_event(
                    telemetry::EventKind::Stall,
                    u64::from(rounds),
                    u64::from(stall + 1),
                );
                stall + 1
            };
            if stall >= 2 || rounds >= round_cap {
                aborted = Some(target_disks.clone());
                break;
            }
            if let Some(p) = ckpt_policy.as_ref() {
                // Round boundary: persist the position before re-planning,
                // so a crash anywhere in the next round resumes from here.
                credits_since_ckpt = 0;
                self.save_checkpoint_now(p);
            }
            plan = {
                let _s = root.child("plan");
                match self.array().chunk_recovery_plan(&missing) {
                    Ok(p) => p,
                    Err(_) => {
                        aborted = Some(target_disks.clone());
                        break;
                    }
                }
            };
        }
        let wall = start.elapsed();
        retry = retry.merged(&write_stats.snapshot());
        obs.heal.retries.inc_by(retry.retries);
        obs.heal.retries_exhausted.inc_by(retry.exhausted);
        obs.heal.backoff_ns.inc_by(retry.backoff_ns);
        let outcome = match aborted {
            Some(mut failed) => {
                failed.sort_unstable();
                for &d in &failed {
                    self.devices()[d].fail();
                }
                telemetry::flight_event(
                    telemetry::EventKind::Abort,
                    failed.len() as u64,
                    u64::from(rounds),
                );
                // An aborted rebuild is exactly the moment the flight
                // recorder exists for: dump the recent retry / reroute /
                // escalation history before anyone restarts the process.
                let _ = telemetry::flight().dump(std::io::stderr().lock(), "rebuild aborted");
                RebuildOutcome::Aborted { failed }
            }
            None => {
                obs.progress.finish();
                if escalations > 0 {
                    RebuildOutcome::Escalated
                } else if reroutes > 0 {
                    RebuildOutcome::CompletedWithReroutes
                } else {
                    RebuildOutcome::Complete
                }
            }
        };
        if let Some(p) = ckpt_policy.as_ref() {
            // Complete or aborted, the recorded position is obsolete — a
            // leftover checkpoint must not hijack the next rebuild.
            RebuildCheckpoint::remove(&p.path);
        }
        // Close the window only after an abort has re-failed the targets:
        // their half-written contents must never become readable.
        self.online().end();
        drop(root);
        target_disks.sort_unstable();
        let qos = self.qos().counters();
        let chunks_rebuilt = (rebuilt.len() + repaired.len()) as u64;
        let device_io: Vec<CounterSnapshot> = self
            .devices()
            .iter()
            .zip(&before)
            .map(|(d, b)| d.counters().since(b))
            .collect();
        Ok(RebuildReport {
            mode,
            rebuilt_disks: target_disks,
            outcome,
            rounds,
            workers,
            wall,
            chunks_rebuilt,
            bytes_rebuilt: chunks_rebuilt * chunk_size as u64,
            retries: retry.retries,
            retries_exhausted: retry.exhausted,
            retry_backoff: Duration::from_nanos(retry.backoff_ns),
            reroutes,
            escalations,
            latent_repairs: repaired.len() as u64,
            throttle_waits: qos.throttle_waits.saturating_sub(qos_before.throttle_waits),
            throttle_wait: Duration::from_nanos(
                qos.throttle_wait_ns
                    .saturating_sub(qos_before.throttle_wait_ns),
            ),
            injected_faults: device_io.iter().map(|c| c.faults).sum(),
            device_io,
            stages: obs.stages.summaries(),
            worker_busy,
            queue_depth: obs.stages.queue_depth.snapshot(),
            sched: sched_stats,
        })
    }

    /// Best-effort snapshot of the rebuild position (window targets + valid
    /// chunks) to the policy's checkpoint path. Failures are swallowed: a
    /// checkpoint is an optimization; the journal and the parity math own
    /// correctness.
    fn save_checkpoint_now(&self, policy: &CheckpointPolicy) {
        if let Some((targets, valid)) = self.online().valid_snapshot() {
            // The checkpoint file is fsynced, so under a power-loss flush
            // policy it must not vouch for writeback chunks still in a
            // volatile device cache: flush the targets first, and skip
            // this checkpoint if the flush fails (it is an optimization).
            let target_disks: Vec<usize> = targets.iter().copied().collect();
            if self.flush_for_checkpoint(&target_disks).is_err() {
                return;
            }
            let _ = RebuildCheckpoint { targets, valid }.save(&policy.path);
        }
    }

    /// The conservative dirty-dependency footprint of every plan item: the
    /// parity relations of the lost chunk itself plus those of every chunk
    /// its reconstruction (transitively) reads. A writeback is discarded
    /// when a foreground write dirtied any of these since the round began.
    fn plan_regions(&self, plan: &RecoveryPlan) -> Vec<Vec<Region>> {
        let geo = self.array().geometry();
        let items = plan.items();
        let mut out: Vec<Vec<Region>> = Vec::with_capacity(items.len());
        for (idx, it) in items.iter().enumerate() {
            let mut rs: HashSet<Region> = self.regions_for(it.lost).into_iter().collect();
            for &r in &it.reads {
                rs.extend(self.regions_for(r));
            }
            for &d in &it.depends {
                rs.extend(out[d].iter().copied());
            }
            // Co-decoded sibling: its value comes from an earlier same-row
            // decode, so it inherits that provider's footprint (the same
            // linkage rule the combiner and the DAG builder use).
            if let Some(p) = sibling_provider(geo, items, idx) {
                rs.extend(out[p].iter().copied());
            }
            out.push(rs.into_iter().collect());
        }
        out
    }

    /// One serial round: drains every per-disk read queue inline, healing
    /// around faults (never fails — faults land in the [`RoundOutput`]).
    /// Also the execution engine behind the repairing scrub.
    pub(crate) fn execute_serial_round(
        &self,
        plan: &RecoveryPlan,
        obs: &RebuildObserver,
    ) -> RoundOutput {
        let geo = self.array().geometry().clone();
        let code = self.inner_code();
        let chunk_size = self.chunk_size();
        let pool = BufPool::new(chunk_size);
        let mut combiner = Combiner::new(&geo, code.as_ref(), plan, &pool, obs);
        combiner.drain();
        let mut unreadable = Vec::new();
        let mut dead_disks = BTreeSet::new();
        let mut retry = RetryCounters::default();
        let queues = RunQueues::build(plan, obs);
        for qi in 0..queues.len() {
            let disk = queues.disk(qi);
            let reader = RetryReader::new(&self.devices()[disk], self.retry_policy());
            for ri in 0..queues.runs_in(qi) {
                if dead_disks.contains(&disk) {
                    break; // the disk died mid-queue; the rest is moot
                }
                let run = queues.dequeue(self.qos(), qi, ri);
                let began = Instant::now();
                let (batch, failed, died) = read_run_healing(&reader, run, chunk_size, &pool);
                obs.stages.read.record_duration(began.elapsed());
                obs.progress
                    .add_bytes_read((batch.len() * chunk_size) as u64);
                for (idx, addr, bytes) in batch {
                    combiner.deliver_read(idx, addr, bytes);
                }
                combiner.drain();
                unreadable.extend(failed);
                if died {
                    dead_disks.insert(disk);
                }
            }
            retry = retry.merged(&reader.counters());
        }
        debug_assert!(
            combiner.remaining == 0 || !unreadable.is_empty() || !dead_disks.is_empty(),
            "a fault-free round completes every item"
        );
        RoundOutput {
            finished: combiner.finished,
            unreadable,
            dead_disks,
            retry,
            workers: 0,
            worker_busy: Vec::new(),
            writes: None,
            sched: sched::SchedStats::default(),
        }
    }

    /// One parallel round: one retrying reader thread per surviving disk, a
    /// combiner on the calling thread. Never fails — a reader that hits an
    /// unreadable chunk reports it and keeps going; a dead disk stops only
    /// its own thread, the other disks keep draining.
    fn execute_parallel_round(
        &self,
        plan: &RecoveryPlan,
        obs: &RebuildObserver,
        exec_span: &Span<'_>,
    ) -> RoundOutput {
        let geo = self.array().geometry().clone();
        let code = self.inner_code();
        let chunk_size = self.chunk_size();
        let queues = RunQueues::build(plan, obs);
        let workers = queues.len();
        let pool = BufPool::new(chunk_size);
        let mut combiner = Combiner::new(&geo, code.as_ref(), plan, &pool, obs);
        combiner.drain();

        enum ReadMsg {
            Read(usize, ChunkAddr, Vec<u8>),
            Unreadable(ChunkAddr, DeviceError),
            Died(usize),
        }
        // Readers only need `&B` (read_chunk takes `&self`), so lend each
        // surviving device to its reader thread via a shared retry wrapper.
        let devices: &[B] = self.devices();
        let readers: Vec<RetryReader<'_, B>> = (0..workers)
            .map(|qi| RetryReader::new(&devices[queues.disk(qi)], self.retry_policy()))
            .collect();
        let pool_ref = &pool;
        let qos = self.qos();
        // In-flight messages: incremented before send, decremented at
        // receive — the receive-side sample is the combiner's queue depth.
        let depth = AtomicI64::new(0);
        let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let mut unreadable = Vec::new();
        let mut dead_disks = BTreeSet::new();
        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel::<ReadMsg>();
            for w in 0..workers {
                let reader = &readers[w];
                let tx = tx.clone();
                let disk = queues.disk(w);
                let queues = &queues;
                let (depth, busy) = (&depth, &busy[w]);
                s.spawn(move || {
                    let _reader_span = exec_span.child(format!("reader-disk-{disk}"));
                    for ri in 0..queues.runs_in(w) {
                        let run = queues.dequeue(qos, w, ri);
                        let began = Instant::now();
                        let (batch, failed, died) =
                            read_run_healing(reader, run, chunk_size, pool_ref);
                        let took = began.elapsed();
                        obs.stages.read.record_duration(took);
                        busy.fetch_add(
                            took.as_nanos().min(u64::MAX as u128) as u64,
                            Ordering::Relaxed,
                        );
                        obs.progress
                            .add_bytes_read((batch.len() * chunk_size) as u64);
                        for (idx, addr, buf) in batch {
                            depth.fetch_add(1, Ordering::Relaxed);
                            if tx.send(ReadMsg::Read(idx, addr, buf)).is_err() {
                                return; // combiner gone
                            }
                        }
                        for (addr, e) in failed {
                            if tx.send(ReadMsg::Unreadable(addr, e)).is_err() {
                                return;
                            }
                        }
                        if died {
                            let _ = tx.send(ReadMsg::Died(disk));
                            return; // the rest of this queue is moot
                        }
                    }
                });
            }
            drop(tx);
            for msg in rx {
                match msg {
                    ReadMsg::Read(idx, addr, bytes) => {
                        let d = depth.fetch_sub(1, Ordering::Relaxed);
                        obs.stages.queue_depth.record(d.max(0) as u64);
                        combiner.deliver_read(idx, addr, bytes);
                        combiner.drain();
                    }
                    ReadMsg::Unreadable(addr, e) => unreadable.push((addr, e)),
                    ReadMsg::Died(disk) => {
                        dead_disks.insert(disk);
                    }
                }
            }
        });
        debug_assert!(
            combiner.remaining == 0 || !unreadable.is_empty() || !dead_disks.is_empty(),
            "a fault-free round completes every item"
        );
        let retry = readers
            .iter()
            .fold(RetryCounters::default(), |acc, r| acc.merged(&r.counters()));
        let worker_busy = busy
            .iter()
            .map(|b| Duration::from_nanos(b.load(Ordering::Relaxed)))
            .collect();
        RoundOutput {
            finished: combiner.finished,
            unreadable,
            dead_disks,
            retry,
            workers,
            worker_busy,
            writes: None,
            sched: sched::SchedStats::default(),
        }
    }

    /// One DAG round: the plan lowered into read → combine → writeback ops
    /// with explicit dependency edges, executed by a work-stealing pool
    /// over per-device ready queues (see [`sched`]). Nothing here waits
    /// for a phase: a chunk's writeback runs the moment its combine
    /// finishes, while other chunks are still being read — so every
    /// surviving disk's queue stays deep for the whole round.
    ///
    /// Faults follow the same healing contract as the barrier modes: an
    /// unreadable source poisons exactly the items that needed it (their
    /// combine ops fail and the scheduler cancels their dependents), a
    /// dead disk stops only its own remaining reads, and writebacks apply
    /// the dirty-window check under the item's region locks. `regions` is
    /// the per-item dirty footprint from [`Self::plan_regions`].
    fn execute_dag_round(
        &self,
        plan: &RecoveryPlan,
        regions: &[Vec<Region>],
        obs: &RebuildObserver,
        exec_span: &Span<'_>,
    ) -> RoundOutput {
        let geo = self.array().geometry().clone();
        let code = self.inner_code();
        let chunk_size = self.chunk_size();
        let queues = RunQueues::build(plan, obs);
        let pool = BufPool::new(chunk_size);
        let items = plan.items();
        let n = items.len();

        // Dependency shape, identical to the barrier modes' combiner: plan
        // edges plus sibling links, and per-item output use counts (+1 for
        // the write op, which consumes the value like any dependent).
        let mut depends: Vec<Vec<(usize, bool)>> = items
            .iter()
            .map(|it| it.depends.iter().map(|&d| (d, false)).collect())
            .collect();
        for (idx, deps) in depends.iter_mut().enumerate() {
            if let Some(provider) = sibling_provider(&geo, items, idx) {
                deps.push((provider, true));
            }
        }
        let mut uses = vec![1usize; n];
        for deps in &depends {
            for &(d, sibling) in deps {
                if !sibling {
                    uses[d] += 1;
                }
            }
        }

        // Lower the plan into the op graph: one read op per coalesced run
        // (bound to its disk's ready queue), one combine op per item (any
        // worker), one writeback op per item (bound to the rebuilt disk).
        let mut graph: sched::OpGraph<DagOp> = sched::OpGraph::new();
        let mut feeds: Vec<Vec<sched::OpId>> = vec![Vec::new(); n];
        for qi in 0..queues.len() {
            for ri in 0..queues.runs_in(qi) {
                let op = graph.add_node(DagOp::Read { qi, ri }, Some(queues.disk(qi)));
                for &(idx, _) in queues.peek(qi, ri) {
                    feeds[idx].push(op);
                }
            }
        }
        let combine_ops: Vec<sched::OpId> = (0..n)
            .map(|idx| graph.add_node(DagOp::Combine { idx }, None))
            .collect();
        for idx in 0..n {
            for &op in &feeds[idx] {
                graph.add_edge(op, combine_ops[idx]);
            }
            for &(d, _) in &depends[idx] {
                graph.add_edge(combine_ops[d], combine_ops[idx]);
            }
            let write = graph.add_node(DagOp::Write { idx }, Some(items[idx].lost.disk));
            graph.add_edge(combine_ops[idx], write);
        }

        // Shared executor state. Items poisoned by an unreadable source
        // fail their combine op; the scheduler cancels everything
        // downstream, which matches the barrier modes (those items simply
        // never finish the round and the driver re-plans them).
        let readers: Vec<RetryReader<'_, B>> = (0..queues.len())
            .map(|qi| RetryReader::new(&self.devices()[queues.disk(qi)], self.retry_policy()))
            .collect();
        let poisoned: Vec<std::sync::atomic::AtomicBool> = (0..n)
            .map(|_| std::sync::atomic::AtomicBool::new(false))
            .collect();
        let inputs: Vec<Mutex<HashMap<ChunkAddr, Vec<u8>>>> =
            (0..n).map(|_| Mutex::new(HashMap::new())).collect();
        let outputs: Vec<Mutex<(Option<Vec<u8>>, usize)>> =
            uses.iter().map(|&u| Mutex::new((None, u))).collect();
        let decoded: Mutex<HashMap<ChunkAddr, Vec<u8>>> = Mutex::new(HashMap::new());
        let dead: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());
        let unreadable: Mutex<Vec<(ChunkAddr, DeviceError)>> = Mutex::new(Vec::new());
        let written: Mutex<Vec<ChunkAddr>> = Mutex::new(Vec::new());
        let dirty_skips = std::sync::atomic::AtomicU32::new(0);
        let write_stats = RetryStats::default();
        let policy = self.retry_policy();
        let qos = self.qos();
        let workers = self
            .dag_workers()
            .unwrap_or_else(|| (2 * queues.len()).max(1));
        let _pool_span = exec_span.child(format!("dag-pool-{workers}"));

        let report = sched::run(
            workers,
            self.array().disks(),
            &obs.sched,
            &graph,
            |_w, _op, payload| {
                use std::sync::atomic::Ordering;
                match *payload {
                    DagOp::Read { qi, ri } => {
                        let disk = queues.disk(qi);
                        if lock(&dead).contains(&disk) {
                            // The disk died under an earlier run: deliver
                            // nothing, poison the expecting items.
                            for &(idx, _) in queues.peek(qi, ri) {
                                poisoned[idx].store(true, Ordering::Release);
                            }
                            return sched::OpStatus::Done;
                        }
                        let run = queues.dequeue(qos, qi, ri);
                        let began = Instant::now();
                        let (batch, failed, died) =
                            read_run_healing(&readers[qi], run, chunk_size, &pool);
                        obs.stages.read.record_duration(began.elapsed());
                        obs.progress
                            .add_bytes_read((batch.len() * chunk_size) as u64);
                        for (idx, addr, bytes) in batch {
                            lock(&inputs[idx]).insert(addr, bytes);
                        }
                        if !failed.is_empty() {
                            let mut u = lock(&unreadable);
                            for (addr, e) in failed {
                                for &(idx, a) in run {
                                    if a == addr {
                                        poisoned[idx].store(true, Ordering::Release);
                                    }
                                }
                                u.push((addr, e));
                            }
                        }
                        if died {
                            lock(&dead).insert(disk);
                        }
                        sched::OpStatus::Done
                    }
                    DagOp::Combine { idx } => {
                        if poisoned[idx].load(Ordering::Acquire) {
                            return sched::OpStatus::Failed;
                        }
                        let mut my_inputs = std::mem::take(&mut *lock(&inputs[idx]));
                        // Fold dependency outputs in, keyed by the dep's
                        // lost address; the last consumer (use count under
                        // the slot lock) moves instead of cloning.
                        for &(d, sibling) in &depends[idx] {
                            if sibling {
                                continue;
                            }
                            let mut slot = lock(&outputs[d]);
                            slot.1 -= 1;
                            let out = if slot.1 == 0 {
                                slot.0.take()
                            } else {
                                slot.0.clone()
                            };
                            my_inputs.insert(items[d].lost, out.expect("dependency completed"));
                        }
                        let began = Instant::now();
                        let lost = items[idx].lost;
                        let value = {
                            // The decode cache is shared: holding it across
                            // the combine serializes only the (tiny) compute,
                            // never device I/O.
                            let mut dec = lock(&decoded);
                            combine(&geo, code.as_ref(), lost, &mut my_inputs, &mut dec, &pool)
                        };
                        for (_, b) in my_inputs.drain() {
                            pool.put(b);
                        }
                        obs.stages.combine.record_duration(began.elapsed());
                        obs.progress.chunk_combined();
                        lock(&outputs[idx]).0 = Some(value);
                        sched::OpStatus::Done
                    }
                    DagOp::Write { idx } => {
                        let addr = items[idx].lost;
                        let value = {
                            let mut slot = lock(&outputs[idx]);
                            slot.1 -= 1;
                            if slot.1 == 0 {
                                slot.0.take()
                            } else {
                                slot.0.clone()
                            }
                        }
                        .expect("combine completed before write");
                        if lock(&dead).contains(&addr.disk) {
                            return sched::OpStatus::Done;
                        }
                        let began = Instant::now();
                        // Dirty check, write, and validity mark form one
                        // atom under the item's region locks — same
                        // protocol as the barrier modes' writeback, but
                        // only intersecting relations contend.
                        let guard = self.online().lock_regions(&regions[idx]);
                        if self.online().any_dirty(&regions[idx]) {
                            drop(guard);
                            dirty_skips.fetch_add(1, Ordering::Relaxed);
                            return sched::OpStatus::Done;
                        }
                        let wrote = write_chunk_retrying(
                            &self.devices()[addr.disk],
                            &policy,
                            &write_stats,
                            addr.offset,
                            &value,
                        );
                        if wrote.is_ok() {
                            self.online().mark_valid(addr);
                        }
                        drop(guard);
                        match wrote {
                            Ok(()) => {
                                obs.stages.writeback.record_duration(began.elapsed());
                                crash_point("rebuild_writeback");
                                lock(&written).push(addr);
                            }
                            Err(e) if e.is_transient() => {
                                // Retry budget exhausted while transient:
                                // the chunk stays un-rebuilt, next round
                                // retries it.
                            }
                            Err(_) => {
                                lock(&dead).insert(addr.disk);
                            }
                        }
                        sched::OpStatus::Done
                    }
                }
            },
        );
        debug_assert_eq!(
            report.stats.executed + report.stats.cancelled,
            graph.len() as u64,
            "every op finalized exactly once"
        );
        obs.stages.queue_depth.record(report.stats.max_ready_depth);
        let mut retry = readers
            .iter()
            .fold(RetryCounters::default(), |acc, r| acc.merged(&r.counters()));
        retry = retry.merged(&write_stats.snapshot());
        RoundOutput {
            finished: Vec::new(),
            unreadable: unreadable.into_inner().unwrap_or_else(|p| p.into_inner()),
            dead_disks: dead.into_inner().unwrap_or_else(|p| p.into_inner()),
            retry,
            workers,
            worker_busy: report.worker_busy,
            writes: Some(DagWrites {
                written: written.into_inner().unwrap_or_else(|p| p.into_inner()),
                dirty_skips: dirty_skips.into_inner(),
            }),
            sched: report.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OiRaidConfig, OiRaidStore};
    use blockdev::{FaultConfig, FaultInjectingDevice, MemDevice};

    fn filled(chunk_size: usize) -> OiRaidStore {
        let store = OiRaidStore::new(OiRaidConfig::reference(), chunk_size).unwrap();
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..chunk_size)
                .map(|j| (idx * 131 + j * 17 + 3) as u8)
                .collect();
            store.write_data(idx, &chunk).unwrap();
        }
        store
    }

    /// A filled store on fault-injecting devices, with no faults armed yet
    /// (arm per-disk with `set_config` after filling).
    fn filled_faulty(chunk_size: usize) -> OiRaidStore<FaultInjectingDevice<MemDevice>> {
        let cfg = OiRaidConfig::reference();
        let devices: Vec<_> = (0..cfg.disks())
            .map(|_| {
                FaultInjectingDevice::new(
                    MemDevice::new(chunk_size, cfg.chunks_per_disk()),
                    FaultConfig::default(),
                )
            })
            .collect();
        let store = OiRaidStore::with_devices(cfg, chunk_size, devices).unwrap();
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..chunk_size)
                .map(|j| (idx * 131 + j * 17 + 3) as u8)
                .collect();
            store.write_data(idx, &chunk).unwrap();
        }
        store
    }

    fn disk_image<B: BlockDevice>(store: &OiRaidStore<B>, disk: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; store.chunk_size()];
        for o in 0..store.devices()[disk].chunks() {
            store.devices()[disk].read_chunk(o, &mut buf).unwrap();
            out.extend_from_slice(&buf);
        }
        out
    }

    #[test]
    fn serial_rebuild_matches_legacy_for_every_strategy() {
        for strategy in RecoveryStrategy::ALL {
            let reference = filled(16);
            let store = filled(16);
            store.fail_disk(4).unwrap();
            let report = store.rebuild(RebuildMode::Serial, strategy).unwrap();
            assert_eq!(report.rebuilt_disks, vec![4]);
            assert_eq!(report.outcome, RebuildOutcome::Complete);
            assert_eq!(report.rounds, 1);
            assert!(report.chunks_rebuilt > 0);
            assert!(store.check_parity().is_empty(), "{strategy:?}");
            assert_eq!(
                disk_image(&store, 4),
                disk_image(&reference, 4),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn parallel_rebuild_bit_identical_to_serial_single_failure() {
        for strategy in RecoveryStrategy::ALL {
            let serial = filled(16);
            let parallel = filled(16);
            serial.fail_disk(7).unwrap();
            parallel.fail_disk(7).unwrap();
            let rs = serial.rebuild(RebuildMode::Serial, strategy).unwrap();
            let rp = parallel.rebuild(RebuildMode::Parallel, strategy).unwrap();
            assert_eq!(
                disk_image(&serial, 7),
                disk_image(&parallel, 7),
                "{strategy:?}"
            );
            assert!(rp.workers > 0);
            assert_eq!(rs.workers, 0);
            assert_eq!(rs.total_reads(), rp.total_reads(), "same read schedule");
            assert_eq!(rs.chunks_rebuilt, rp.chunks_rebuilt);
        }
    }

    #[test]
    fn dag_rebuild_bit_identical_to_serial_single_failure() {
        for strategy in RecoveryStrategy::ALL {
            let serial = filled(16);
            let dag = filled(16);
            serial.fail_disk(7).unwrap();
            dag.fail_disk(7).unwrap();
            let rs = serial.rebuild(RebuildMode::Serial, strategy).unwrap();
            let rd = dag.rebuild(RebuildMode::Dag, strategy).unwrap();
            assert_eq!(disk_image(&serial, 7), disk_image(&dag, 7), "{strategy:?}");
            assert_eq!(rs.total_reads(), rd.total_reads(), "same read schedule");
            assert_eq!(rs.chunks_rebuilt, rd.chunks_rebuilt);
            // Per-device read counters match run for run, not just in sum.
            for (d, (s, p)) in rs.device_io.iter().zip(&rd.device_io).enumerate() {
                assert_eq!(s.reads, p.reads, "{strategy:?} disk {d} read count");
            }
            // The scheduler actually ran: one executed op per read run,
            // combine, and writeback, none cancelled on a clean rebuild.
            assert!(rd.workers > 0);
            assert!(rd.sched.executed >= 2 * rd.chunks_rebuilt);
            assert_eq!(rd.sched.cancelled, 0);
            assert!(rd.sched.max_inflight >= 1);
            assert_eq!(rs.sched, sched::SchedStats::default());
        }
    }

    #[test]
    fn dag_worker_override_is_honored() {
        let store = filled(8);
        store.set_dag_workers(Some(3));
        store.fail_disk(11).unwrap();
        let report = store
            .rebuild(RebuildMode::Dag, RecoveryStrategy::Hybrid)
            .unwrap();
        assert_eq!(report.workers, 3);
        assert_eq!(report.worker_busy.len(), 3);
        assert_eq!(report.outcome, RebuildOutcome::Complete);
        assert!(store.check_parity().is_empty());
        assert!(report.worker_utilization() > 0.0);
    }

    #[test]
    fn parallel_rebuild_triple_failure() {
        let reference = filled(8);
        let store = filled(8);
        for d in [2, 9, 17] {
            store.fail_disk(d).unwrap();
        }
        let report = store
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .unwrap();
        assert_eq!(report.rebuilt_disks, vec![2, 9, 17]);
        assert!(store.failed_disks().is_empty());
        assert!(store.check_parity().is_empty());
        for d in [2, 9, 17] {
            assert_eq!(disk_image(&store, d), disk_image(&reference, d), "disk {d}");
        }
    }

    #[test]
    fn whole_group_rebuild_all_modes() {
        for mode in [RebuildMode::Serial, RebuildMode::Parallel, RebuildMode::Dag] {
            let reference = filled(8);
            let store = filled(8);
            for d in [6, 7, 8] {
                store.fail_disk(d).unwrap();
            }
            store.rebuild(mode, RecoveryStrategy::Hybrid).unwrap();
            for d in [6, 7, 8] {
                assert_eq!(
                    disk_image(&store, d),
                    disk_image(&reference, d),
                    "{mode} disk {d}"
                );
            }
        }
    }

    #[test]
    fn dual_parity_double_failure_in_group() {
        let cfg = OiRaidConfig::new(bibd::fano(), 5, 1)
            .unwrap()
            .with_inner_parities(2)
            .unwrap();
        for mode in [RebuildMode::Serial, RebuildMode::Parallel, RebuildMode::Dag] {
            let store = OiRaidStore::new(cfg.clone(), 8).unwrap();
            for idx in 0..store.data_chunks() {
                let chunk: Vec<u8> = (0..8).map(|j| (idx * 61 + j * 19 + 7) as u8).collect();
                store.write_data(idx, &chunk).unwrap();
            }
            let reference = store.clone();
            // Two failures inside one group: exercises the RAID6 row decode.
            for d in [5, 6] {
                store.fail_disk(d).unwrap();
            }
            store.rebuild(mode, RecoveryStrategy::Hybrid).unwrap();
            assert!(store.check_parity().is_empty(), "{mode}");
            for d in [5, 6] {
                assert_eq!(
                    disk_image(&store, d),
                    disk_image(&reference, d),
                    "{mode} disk {d}"
                );
            }
        }
    }

    #[test]
    fn unrecoverable_pattern_is_rejected_without_state_change() {
        let store = filled(8);
        for d in [0, 1, 3, 4] {
            store.fail_disk(d).unwrap();
        }
        let err = store
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .unwrap_err();
        assert_eq!(err, StoreError::DataLoss);
        assert_eq!(store.failed_disks(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn rebuild_with_nothing_failed_is_a_no_op() {
        let store = filled(8);
        let report = store
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .unwrap();
        assert_eq!(report.chunks_rebuilt, 0);
        assert_eq!(report.total_reads(), 0);
        assert_eq!(report.outcome, RebuildOutcome::Complete);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn report_counters_reflect_the_plan() {
        let store = filled(16);
        store.fail_disk(4).unwrap();
        let report = store
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .unwrap();
        // The failed disk serves no reads; every read lands elsewhere.
        assert_eq!(report.device_io[4].reads, 0);
        assert_eq!(
            report.device_io[4].writes as usize,
            store.array().geometry().chunks_per_disk
        );
        assert_eq!(
            report.bytes_rebuilt,
            report.chunks_rebuilt * store.chunk_size() as u64
        );
        assert_eq!(report.retries, 0);
        assert_eq!(report.reroutes, 0);
        assert!(report.to_string().contains("parallel"));
    }

    #[test]
    fn report_display_format_is_stable() {
        // Pinned: downstream log scrapers parse this line.
        let report = RebuildReport {
            mode: RebuildMode::Parallel,
            rebuilt_disks: vec![4],
            outcome: RebuildOutcome::CompletedWithReroutes,
            rounds: 2,
            workers: 20,
            wall: Duration::from_millis(12),
            chunks_rebuilt: 30,
            bytes_rebuilt: 480,
            retries: 5,
            retries_exhausted: 1,
            retry_backoff: Duration::from_micros(350),
            reroutes: 1,
            escalations: 0,
            latent_repairs: 1,
            throttle_waits: 0,
            throttle_wait: Duration::ZERO,
            device_io: vec![
                CounterSnapshot {
                    reads: 7,
                    ..CounterSnapshot::default()
                },
                CounterSnapshot {
                    reads: 5,
                    ..CounterSnapshot::default()
                },
            ],
            injected_faults: 2,
            stages: Vec::new(),
            worker_busy: Vec::new(),
            queue_depth: HistogramSnapshot::default(),
            sched: sched::SchedStats::default(),
        };
        assert_eq!(
            report.to_string(),
            "parallel rebuild of [4]: 30 chunks (480 bytes) in 12ms, \
             12 reads (max 7/disk), 20 workers, 2 injected faults; \
             complete-with-reroutes after 2 round(s), 5 retries \
             (1 exhausted), 1 reroutes, 0 escalations, 1 latent repairs"
        );
    }

    #[test]
    fn observed_rebuild_populates_stages_spans_and_progress() {
        telemetry::set_enabled(true);
        let store = filled(16);
        store.fail_disk(4).unwrap();
        let obs = crate::RebuildObserver::default();
        let report = store
            .rebuild_observed(RebuildMode::Parallel, RecoveryStrategy::Hybrid, &obs)
            .unwrap();

        // Stages: every pipeline stage saw work (coalesce runs once per
        // queue, the others once per chunk/run).
        for stage in ["read", "coalesce", "combine", "writeback"] {
            let s = report.stage(stage).unwrap_or_else(|| panic!("{stage}"));
            assert!(s.latency.count > 0, "{stage} recorded");
            assert!(
                s.latency.p50() <= s.latency.p99() && s.latency.p99() <= s.latency.max,
                "{stage} quantiles ordered: {}",
                s.latency.summary_ns()
            );
        }
        assert_eq!(
            report.stage("combine").unwrap().latency.count,
            report.chunks_rebuilt
        );
        assert_eq!(report.worker_busy.len(), report.workers);
        assert!(report.worker_utilization() > 0.0);
        assert!(report.queue_depth.count > 0, "depth sampled at each recv");

        // Progress: complete and internally consistent.
        let p = obs.progress.snapshot();
        assert!(p.finished && p.fraction == 1.0, "{p:?}");
        assert_eq!(p.total_chunks, report.chunks_rebuilt);
        assert_eq!(p.chunks_written, report.chunks_rebuilt);
        assert_eq!(p.bytes_written, report.bytes_rebuilt);

        // Spans: the stage children cover (almost) all of the root span.
        let recs = obs.tracer.records();
        let root = recs.iter().find(|r| r.label == "rebuild").expect("root");
        for label in ["plan", "heal", "execute", "writeback"] {
            assert!(
                recs.iter().any(|r| r.label == label && r.parent == root.id),
                "{label} span under root"
            );
        }
        let exec = recs.iter().find(|r| r.label == "execute").unwrap();
        let readers = recs
            .iter()
            .filter(|r| r.parent == exec.id && r.label.starts_with("reader-disk-"))
            .count();
        assert_eq!(readers, report.workers, "one reader span per worker");
        let cov = telemetry::child_coverage(&recs, root.id);
        assert!(cov >= 0.95, "stage spans cover the rebuild: {cov}");
    }

    #[test]
    fn serial_observed_rebuild_records_stages_without_queue() {
        telemetry::set_enabled(true);
        let store = filled(8);
        store.fail_disk(2).unwrap();
        let obs = crate::RebuildObserver::default();
        let report = store
            .rebuild_observed(RebuildMode::Serial, RecoveryStrategy::Hybrid, &obs)
            .unwrap();
        assert!(report.stage("read").unwrap().latency.count > 0);
        assert_eq!(report.queue_depth.count, 0, "no queue in serial mode");
        assert_eq!(report.worker_utilization(), 0.0);
        assert!(obs.progress.snapshot().finished);
    }

    #[test]
    fn fully_transient_disk_is_rerouted_around() {
        // Under the Inner strategy, rebuilding disk 4 reads its row
        // siblings on disks 3 and 5. Disk 3 faults on *every* read (1000‰
        // transient): retry cannot save it, so the engine must re-route
        // every scheduled disk-3 read through alternate read sets — and
        // still finish bit-identical.
        for mode in [RebuildMode::Serial, RebuildMode::Parallel, RebuildMode::Dag] {
            let reference = filled(8);
            let store = filled_faulty(8);
            store.set_retry_policy(blockdev::RetryPolicy::immediate(3));
            store.devices()[3].set_config(FaultConfig {
                seed: 99,
                transient_read_per_mille: 1000,
                ..FaultConfig::default()
            });
            store.fail_disk(4).unwrap();
            let report = store.rebuild(mode, RecoveryStrategy::Inner).unwrap();
            assert_eq!(
                report.outcome,
                RebuildOutcome::CompletedWithReroutes,
                "{mode}: {report}"
            );
            assert!(report.reroutes > 0, "{mode}");
            assert!(report.retries > 0, "{mode}");
            assert!(report.retries_exhausted > 0, "{mode}");
            assert!(report.rounds > 1, "{mode}");
            assert_eq!(report.escalations, 0, "{mode}");
            assert!(store.failed_disks().is_empty(), "{mode}");
            store.devices()[3].set_config(FaultConfig::default());
            for d in [3, 4] {
                assert_eq!(
                    disk_image(&store, d),
                    disk_image(&reference, d),
                    "{mode} disk {d}"
                );
            }
            assert!(store.check_parity().is_empty(), "{mode}");
        }
    }

    #[test]
    fn latent_sources_are_rerouted_and_repaired_in_place() {
        for mode in [RebuildMode::Serial, RebuildMode::Parallel, RebuildMode::Dag] {
            let reference = filled(8);
            let store = filled_faulty(8);
            // Deterministic latent sector errors on disk 5, a row sibling
            // the Inner strategy must read while rebuilding disk 4.
            store.devices()[5].set_config(FaultConfig {
                seed: 7,
                latent_per_mille: 200,
                ..FaultConfig::default()
            });
            let latent: Vec<usize> = (0..store.array().chunks_per_disk())
                .filter(|&o| store.devices()[5].is_latent_bad(o))
                .collect();
            assert!(!latent.is_empty(), "seed 7 plants at least one latent");
            store.fail_disk(4).unwrap();
            let report = store.rebuild(mode, RecoveryStrategy::Inner).unwrap();
            assert_eq!(
                report.outcome,
                RebuildOutcome::CompletedWithReroutes,
                "{mode}: {report}"
            );
            assert_eq!(report.reroutes, latent.len() as u64, "{mode}");
            assert_eq!(report.latent_repairs, report.reroutes, "{mode}");
            // Latent sectors were repaired by rewrite (remapped): with the
            // fault config still armed, every repaired chunk reads clean.
            for &o in &latent {
                assert!(!store.devices()[5].is_latent_bad(o), "{mode} chunk {o}");
            }
            for d in [4, 5] {
                assert_eq!(
                    disk_image(&store, d),
                    disk_image(&reference, d),
                    "{mode} disk {d}"
                );
            }
            assert!(store.check_parity().is_empty(), "{mode}");
        }
    }

    #[test]
    fn mid_rebuild_disk_death_escalates_and_recovers() {
        for mode in [RebuildMode::Serial, RebuildMode::Parallel, RebuildMode::Dag] {
            let reference = filled(8);
            let store = filled_faulty(8);
            // Disk 3 (a row sibling the Inner strategy reads 9 times) dies
            // after serving 3 rebuild reads.
            store.devices()[3].set_config(FaultConfig {
                fail_after_reads: 3,
                ..FaultConfig::default()
            });
            store.fail_disk(4).unwrap();
            let report = store.rebuild(mode, RecoveryStrategy::Inner).unwrap();
            assert_eq!(
                report.outcome,
                RebuildOutcome::Escalated,
                "{mode}: {report}"
            );
            assert_eq!(report.escalations, 1, "{mode}");
            assert_eq!(report.rebuilt_disks, vec![3, 4], "{mode}");
            assert!(report.rounds > 1, "{mode}");
            assert!(store.failed_disks().is_empty(), "{mode}");
            for d in [3, 4] {
                assert_eq!(
                    disk_image(&store, d),
                    disk_image(&reference, d),
                    "{mode} disk {d}"
                );
            }
            assert!(store.check_parity().is_empty(), "{mode}");
        }
    }

    #[test]
    fn unrecoverable_mid_rebuild_aborts_with_failure_set() {
        // Rebuilding disk 0 under the Inner strategy reads its group
        // siblings 1 and 2, which both die almost immediately; the re-plan
        // then fans out over the outer layer, where disks 3 and 4 die too.
        // Five candidate failures exceed the array's tolerance of three:
        // the engine must abort (not panic, not error) and re-fail every
        // rebuild target so no half-written disk looks healthy.
        for mode in [RebuildMode::Serial, RebuildMode::Parallel, RebuildMode::Dag] {
            let store = filled_faulty(8);
            for d in [1, 2, 3, 4] {
                store.devices()[d].set_config(FaultConfig {
                    fail_after_reads: 1,
                    ..FaultConfig::default()
                });
            }
            store.fail_disk(0).unwrap();
            let report = store.rebuild(mode, RecoveryStrategy::Inner).unwrap();
            match &report.outcome {
                RebuildOutcome::Aborted { failed } => {
                    assert_eq!(failed, &vec![0, 1, 2, 3, 4], "{mode}");
                }
                other => panic!("{mode}: expected abort, got {other:?}"),
            }
            assert_eq!(store.failed_disks(), vec![0, 1, 2, 3, 4], "{mode}");
            assert!(!report.outcome.is_recovered());
        }
    }
}
