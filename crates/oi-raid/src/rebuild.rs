//! Plan-driven rebuild engine: executes a [`layout::RecoveryPlan`] against
//! the store's block devices, serially or with one reader thread per
//! surviving disk, and reports per-device I/O instrumentation.
//!
//! Contrast with [`OiRaidStore::rebuild_disk`], which decodes the *whole
//! array* into memory — correct but oblivious to the plan's read schedule.
//! This engine reads exactly what the planner scheduled, so its counters
//! reproduce the paper's per-disk rebuild-load claims on real bytes, and
//! the parallel mode demonstrates the declustering payoff: every surviving
//! disk drains its read queue concurrently.
//!
//! Both modes share one pure combine function per plan item, so serial and
//! parallel rebuilds are bit-identical by construction (property-tested in
//! `tests/rebuild_engine.rs`).
//!
//! The data path avoids per-chunk allocation: a [`BufPool`] recycles chunk
//! buffers between readers and the combiner, and adjacent same-disk reads in
//! each per-disk queue are coalesced into single [`BlockDevice::read_chunks`]
//! calls. Both modes coalesce from the same [`RecoveryPlan::reads_by_disk`]
//! queues, so their device read counters stay equal.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gf::kernels::xor_acc;

use blockdev::{BlockDevice, CounterSnapshot, DeviceError};
use ecc::ErasureCode;
use layout::{ChunkAddr, Layout, RecoveryPlan, SparePolicy};
use telemetry::{HistogramSnapshot, Span};

use crate::geometry::Geometry;
use crate::observe::{RebuildObserver, StageSummary};
use crate::recovery::single_failure_plan;
use crate::store::{OiRaidStore, StoreError};
use crate::RecoveryStrategy;

/// How the rebuild engine executes a recovery plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildMode {
    /// One item at a time, reads issued inline in plan order.
    Serial,
    /// One reader thread per surviving disk with scheduled reads; a combiner
    /// on the calling thread decodes as inputs arrive.
    Parallel,
}

impl fmt::Display for RebuildMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Serial => write!(f, "serial"),
            Self::Parallel => write!(f, "parallel"),
        }
    }
}

/// Instrumentation from one [`OiRaidStore::rebuild`] run.
#[derive(Debug, Clone)]
pub struct RebuildReport {
    /// Execution mode.
    pub mode: RebuildMode,
    /// Disks that were failed and have been rebuilt.
    pub rebuilt_disks: Vec<usize>,
    /// Reader threads used (0 for serial mode).
    pub workers: usize,
    /// Wall-clock time of plan execution (excludes planning and healing).
    pub wall: Duration,
    /// Lost chunks reconstructed.
    pub chunks_rebuilt: u64,
    /// Bytes written back to the rebuilt disks.
    pub bytes_rebuilt: u64,
    /// Per-device I/O deltas over the run, indexed by disk.
    pub device_io: Vec<CounterSnapshot>,
    /// Injected faults observed across all devices during the run.
    pub injected_faults: u64,
    /// Per-stage latency summaries (`read`/`coalesce`/`combine`/
    /// `writeback`), in pipeline order.
    pub stages: Vec<StageSummary>,
    /// Busy time per reader thread (time inside device reads), in worker
    /// order — compare against [`RebuildReport::wall`] for utilization.
    pub worker_busy: Vec<Duration>,
    /// Combiner input-queue depth distribution (empty for serial mode).
    pub queue_depth: HistogramSnapshot,
}

impl RebuildReport {
    /// Total chunk reads issued across all devices.
    pub fn total_reads(&self) -> u64 {
        self.device_io.iter().map(|c| c.reads).sum()
    }

    /// Largest per-device read count — the rebuild bottleneck under
    /// parallel execution.
    pub fn max_device_reads(&self) -> u64 {
        self.device_io.iter().map(|c| c.reads).max().unwrap_or(0)
    }

    /// The named stage's latency summary, if it was recorded.
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Mean reader-thread utilization: busy time over wall time, in
    /// `0.0..=1.0` (0.0 for serial mode).
    pub fn worker_utilization(&self) -> f64 {
        if self.worker_busy.is_empty() || self.wall.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        (busy / (self.wall.as_secs_f64() * self.worker_busy.len() as f64)).min(1.0)
    }
}

impl fmt::Display for RebuildReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rebuild of {:?}: {} chunks ({} bytes) in {:?}, {} reads \
             (max {}/disk), {} workers, {} injected faults",
            self.mode,
            self.rebuilt_disks,
            self.chunks_rebuilt,
            self.bytes_rebuilt,
            self.wall,
            self.total_reads(),
            self.max_device_reads(),
            self.workers,
            self.injected_faults,
        )
    }
}

/// A shared pool of chunk-sized byte buffers: readers take buffers, the
/// combiner recycles consumed inputs back, so steady-state rebuild performs
/// no per-chunk allocation.
struct BufPool {
    chunk: usize,
    free: Mutex<Vec<Vec<u8>>>,
}

impl BufPool {
    fn new(chunk: usize) -> Self {
        Self {
            chunk,
            free: Mutex::new(Vec::new()),
        }
    }

    /// A zeroed chunk-sized buffer, recycled when one is available.
    fn take(&self) -> Vec<u8> {
        match self.free.lock().expect("pool lock").pop() {
            Some(mut b) => {
                b.fill(0);
                b
            }
            None => vec![0u8; self.chunk],
        }
    }

    fn put(&self, b: Vec<u8>) {
        if b.len() == self.chunk {
            self.free.lock().expect("pool lock").push(b);
        }
    }
}

/// Reconstructs one lost chunk from gathered inputs.
///
/// `inputs` maps every source address (scheduled reads *and* outputs of
/// dependency items) to its bytes; entries may be consumed (moved out), the
/// caller recycles whatever remains. `decoded` caches whole-row decodes so
/// that co-decoded siblings (multi-failure items with no sources of their
/// own) can pick up their value. Pure in its inputs — this is what makes
/// serial and parallel execution bit-identical.
fn combine(
    geo: &Geometry,
    code: &dyn ErasureCode,
    lost: ChunkAddr,
    inputs: &mut HashMap<ChunkAddr, Vec<u8>>,
    decoded: &mut HashMap<ChunkAddr, Vec<u8>>,
    pool: &BufPool,
) -> Vec<u8> {
    if inputs.is_empty() {
        // Sibling of an earlier whole-row decode (multi-failure plans emit
        // one item carrying the row's shared reads, then read-less items
        // for the other chunks co-decoded from them).
        return decoded
            .remove(&lost)
            .expect("sibling item follows its row decode");
    }
    let grp = geo.group_of(lost.disk);
    let row = lost.offset;
    let row_set = geo.row_chunks(grp, row);
    if inputs.keys().all(|a| row_set.contains(a)) {
        // Inner-row decode (handles >1 erasure when p_in = 2).
        let ordered: Vec<ChunkAddr> = geo
            .row_payload(grp, row)
            .into_iter()
            .chain(geo.inner_parities_of_row(grp, row))
            .collect();
        let mut units: Vec<Option<Vec<u8>>> = ordered.iter().map(|a| inputs.remove(a)).collect();
        code.reconstruct(&mut units).expect("within row tolerance");
        for (a, u) in ordered.iter().zip(units) {
            decoded.insert(*a, u.expect("reconstructed"));
        }
        return decoded.remove(&lost).expect("lost chunk is in its row");
    }
    let stripe_xor = |payload: ChunkAddr| -> Vec<u8> {
        let p = geo.payload_pos(payload);
        let mut acc = pool.take();
        for a in geo.stripe_chunks(p.block, p.stripe) {
            if a != payload {
                let v = inputs.get(&a).expect("stripe source gathered");
                xor_acc(&mut acc, v);
            }
        }
        acc
    };
    if !geo.is_inner_parity(lost) {
        // Outer-stripe XOR: the k − 1 other chunks of the lost payload's
        // stripe (sourced from reads and/or dependency outputs).
        return stripe_xor(lost);
    }
    // Remote inner-parity recompute (Outer-All / hybrid strategies): first
    // recover each payload of the row from its *outer* stripe, then
    // re-encode the row and keep the lost parity's role.
    let payloads: Vec<Vec<u8>> = geo
        .row_payload(grp, row)
        .into_iter()
        .map(stripe_xor)
        .collect();
    let parities = code.encode(&payloads).expect("row encodes");
    let role = geo
        .inner_parities_of_row(grp, row)
        .iter()
        .position(|a| *a == lost)
        .expect("lost parity is in its row");
    parities[role].clone()
}

/// Reconstructed chunks in completion order, buffered for write-back.
type Finished = Vec<(ChunkAddr, Vec<u8>)>;

/// Dataflow state for one plan execution: tracks, per item, how many inputs
/// are still outstanding, and cascades computation as they arrive. Finished
/// chunks are buffered (in completion order) and written back by the caller
/// — values are fixed by [`combine`], so write timing cannot change bits.
struct Combiner<'p> {
    geo: &'p Geometry,
    code: &'p dyn ErasureCode,
    plan: &'p RecoveryPlan,
    pool: &'p BufPool,
    obs: &'p RebuildObserver,
    /// Gathered read bytes per item.
    inputs: Vec<HashMap<ChunkAddr, Vec<u8>>>,
    /// Outstanding (reads, dependencies) per item.
    pending: Vec<(usize, usize)>,
    /// Reverse dependency edges (plan `depends` plus sibling links); taken
    /// (consumed) when the item completes.
    dependents: Vec<Vec<usize>>,
    /// Forward dependency edges; sibling links are marked so their output
    /// is not folded into `inputs` (siblings read the decode cache). Taken
    /// when the item starts computing.
    depends: Vec<Vec<(usize, bool)>>,
    /// Reconstructed chunk per completed item, kept only while dependents
    /// still consume it (see `output_uses`).
    outputs: Vec<Option<Vec<u8>>>,
    /// Remaining non-sibling dependents per item: the last consumer moves
    /// the output out instead of cloning.
    output_uses: Vec<usize>,
    /// Whole-row decode cache for sibling items.
    decoded: HashMap<ChunkAddr, Vec<u8>>,
    /// Items whose inputs are all present, not yet computed.
    ready: Vec<usize>,
    /// Reconstructed chunks in completion order.
    finished: Finished,
    remaining: usize,
}

impl<'p> Combiner<'p> {
    fn new(
        geo: &'p Geometry,
        code: &'p dyn ErasureCode,
        plan: &'p RecoveryPlan,
        pool: &'p BufPool,
        obs: &'p RebuildObserver,
    ) -> Self {
        let items = plan.items();
        let n = items.len();
        let mut depends: Vec<Vec<(usize, bool)>> = items
            .iter()
            .map(|it| it.depends.iter().map(|&d| (d, false)).collect())
            .collect();
        // Read-less, dependency-less items are co-decoded siblings: link
        // them to the nearest earlier item of the same inner row that has
        // sources, so they wait for that row decode.
        for idx in 0..n {
            if !items[idx].reads.is_empty() || !items[idx].depends.is_empty() {
                continue;
            }
            let lost = items[idx].lost;
            let (grp, row) = (geo.group_of(lost.disk), lost.offset);
            let provider = (0..idx)
                .rev()
                .find(|&j| {
                    let l = items[j].lost;
                    geo.group_of(l.disk) == grp
                        && l.offset == row
                        && !(items[j].reads.is_empty() && items[j].depends.is_empty())
                })
                .expect("sibling item has a row-decode provider");
            depends[idx].push((provider, true));
        }
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut output_uses = vec![0usize; n];
        let mut pending = Vec::with_capacity(n);
        let mut ready = Vec::new();
        for (idx, it) in items.iter().enumerate() {
            for &(d, sibling) in &depends[idx] {
                dependents[d].push(idx);
                if !sibling {
                    output_uses[d] += 1;
                }
            }
            pending.push((it.reads.len(), depends[idx].len()));
            if pending[idx] == (0, 0) {
                ready.push(idx);
            }
        }
        Self {
            geo,
            code,
            plan,
            pool,
            obs,
            inputs: vec![HashMap::new(); n],
            pending,
            dependents,
            depends,
            outputs: vec![None; n],
            output_uses,
            decoded: HashMap::new(),
            ready,
            finished: Vec::new(),
            remaining: n,
        }
    }

    fn deliver_read(&mut self, idx: usize, addr: ChunkAddr, bytes: Vec<u8>) {
        self.inputs[idx].insert(addr, bytes);
        self.pending[idx].0 -= 1;
        if self.pending[idx] == (0, 0) {
            self.ready.push(idx);
        }
    }

    /// Computes every ready item, cascading through items that become ready
    /// in turn.
    fn drain(&mut self) {
        while let Some(idx) = self.ready.pop() {
            let began = Instant::now();
            // Fold (non-sibling) dependency outputs into the input map,
            // keyed by the dependency's lost address. The last consumer of
            // an output moves it; earlier consumers clone.
            for (d, sibling_link) in std::mem::take(&mut self.depends[idx]) {
                if sibling_link {
                    continue;
                }
                let dep_lost = self.plan.items()[d].lost;
                self.output_uses[d] -= 1;
                let out = if self.output_uses[d] == 0 {
                    self.outputs[d].take().expect("dependency completed")
                } else {
                    self.outputs[d].clone().expect("dependency completed")
                };
                self.inputs[idx].insert(dep_lost, out);
            }
            let lost = self.plan.items()[idx].lost;
            let value = combine(
                self.geo,
                self.code,
                lost,
                &mut self.inputs[idx],
                &mut self.decoded,
                self.pool,
            );
            // Consumed inputs are gone; recycle what combine left behind.
            for (_, b) in self.inputs[idx].drain() {
                self.pool.put(b);
            }
            for dep in std::mem::take(&mut self.dependents[idx]) {
                self.pending[dep].1 -= 1;
                if self.pending[dep] == (0, 0) {
                    self.ready.push(dep);
                }
            }
            if self.output_uses[idx] > 0 {
                self.outputs[idx] = Some(value.clone());
            }
            self.finished.push((lost, value));
            self.remaining -= 1;
            self.obs.stages.combine.record_duration(began.elapsed());
            self.obs.progress.chunk_combined();
        }
    }
}

/// Splits a per-disk read queue into maximal runs of consecutive chunk
/// offsets, preserving queue order; each run becomes one
/// [`BlockDevice::read_chunks`] call. Serial and parallel execution coalesce
/// the same queues, so their device read counts stay equal.
fn coalesce_runs(queue: &[(usize, ChunkAddr)]) -> Vec<&[(usize, ChunkAddr)]> {
    let mut runs = Vec::new();
    let mut start = 0;
    for i in 1..=queue.len() {
        if i == queue.len() || queue[i].1.offset != queue[i - 1].1.offset + 1 {
            runs.push(&queue[start..i]);
            start = i;
        }
    }
    runs
}

/// Serves one coalesced run, returning a pooled chunk buffer per scheduled
/// read.
fn read_run<B: BlockDevice>(
    dev: &B,
    run: &[(usize, ChunkAddr)],
    chunk_size: usize,
    pool: &BufPool,
) -> Result<Vec<(usize, ChunkAddr, Vec<u8>)>, DeviceError> {
    if let [(idx, addr)] = run {
        let mut buf = pool.take();
        dev.read_chunk(addr.offset, &mut buf)?;
        return Ok(vec![(*idx, *addr, buf)]);
    }
    let mut batch = vec![0u8; run.len() * chunk_size];
    dev.read_chunks(run[0].1.offset, run.len(), &mut batch)?;
    Ok(run
        .iter()
        .zip(batch.chunks_exact(chunk_size))
        .map(|(&(idx, addr), bytes)| {
            let mut buf = pool.take();
            buf.copy_from_slice(bytes);
            (idx, addr, buf)
        })
        .collect())
}

impl<B: BlockDevice> OiRaidStore<B> {
    /// Rebuilds *all* currently-failed disks by executing a recovery plan
    /// against the block devices, and reports per-device instrumentation.
    ///
    /// Single failures use the strategy-specific planner (`strategy` picks
    /// local-row / outer-stripe / declustered / hybrid reads); larger
    /// patterns use the multi-failure cascade planner. Serial and parallel
    /// modes produce bit-identical disks.
    ///
    /// # Errors
    ///
    /// [`StoreError::DataLoss`] for unrecoverable patterns (no state is
    /// changed); [`StoreError::Device`] if a backend errors mid-rebuild —
    /// the disks under rebuild are re-failed so the store stays consistent
    /// (retry after clearing the fault).
    pub fn rebuild(
        &mut self,
        mode: RebuildMode,
        strategy: RecoveryStrategy,
    ) -> Result<RebuildReport, StoreError> {
        self.rebuild_observed(mode, strategy, &RebuildObserver::default())
    }

    /// [`OiRaidStore::rebuild`] with caller-provided telemetry sinks: the
    /// observer's [`Progress`](telemetry::Progress) can be polled from
    /// another thread while this runs, its tracer captures per-stage and
    /// per-reader spans, and its stage histograms accumulate latencies
    /// (they are *not* reset per call — hand in a fresh observer to scope
    /// them to one run).
    ///
    /// # Errors
    ///
    /// As for [`OiRaidStore::rebuild`].
    pub fn rebuild_observed(
        &mut self,
        mode: RebuildMode,
        strategy: RecoveryStrategy,
        obs: &RebuildObserver,
    ) -> Result<RebuildReport, StoreError> {
        let failed = self.failed_disks();
        let before: Vec<CounterSnapshot> = self.devices().iter().map(|d| d.counters()).collect();
        if failed.is_empty() {
            return Ok(RebuildReport {
                mode,
                rebuilt_disks: failed,
                workers: 0,
                wall: Duration::ZERO,
                chunks_rebuilt: 0,
                bytes_rebuilt: 0,
                device_io: vec![CounterSnapshot::default(); before.len()],
                injected_faults: 0,
                stages: Vec::new(),
                worker_busy: Vec::new(),
                queue_depth: HistogramSnapshot::default(),
            });
        }
        let root = obs.tracer.span("rebuild");
        let plan = {
            let _s = root.child("plan");
            if failed.len() == 1 {
                single_failure_plan(self.array(), failed[0], SparePolicy::Distributed, strategy)
            } else {
                Layout::recovery_plan(self.array(), &failed, SparePolicy::Distributed)
            }
            .map_err(|_| StoreError::DataLoss)?
        };
        obs.progress.begin(plan.items().len() as u64);

        {
            let _s = root.child("heal");
            for &d in &failed {
                self.devices_mut()[d]
                    .heal()
                    .map_err(|error| StoreError::Device { disk: d, error })?;
            }
        }
        let start = Instant::now();
        let result = {
            let exec = root.child("execute");
            match mode {
                RebuildMode::Serial => self.execute_serial(&plan, obs).map(|f| (f, 0, Vec::new())),
                RebuildMode::Parallel => self.execute_parallel(&plan, obs, &exec),
            }
        };
        let chunk_size = self.chunk_size() as u64;
        let write_back = result.and_then(|(finished, workers, busy)| {
            let _s = root.child("writeback");
            for (addr, value) in finished {
                let began = Instant::now();
                self.write_chunk(addr, &value)?;
                obs.stages.writeback.record_duration(began.elapsed());
                obs.progress.chunk_written(chunk_size);
            }
            Ok((workers, busy))
        });
        let wall = start.elapsed();
        let (workers, worker_busy) = match write_back {
            Ok(w) => w,
            Err(e) => {
                // Keep the failure visible: a half-written disk must not
                // masquerade as healthy.
                for &d in &failed {
                    self.devices_mut()[d].fail();
                }
                return Err(e);
            }
        };
        obs.progress.finish();
        drop(root);
        let device_io: Vec<CounterSnapshot> = self
            .devices()
            .iter()
            .zip(&before)
            .map(|(d, b)| d.counters().since(b))
            .collect();
        Ok(RebuildReport {
            mode,
            rebuilt_disks: failed,
            workers,
            wall,
            chunks_rebuilt: plan.items().len() as u64,
            bytes_rebuilt: plan.items().len() as u64 * chunk_size,
            injected_faults: device_io.iter().map(|c| c.faults).sum(),
            device_io,
            stages: obs.stages.summaries(),
            worker_busy,
            queue_depth: obs.stages.queue_depth.snapshot(),
        })
    }

    fn execute_serial(
        &mut self,
        plan: &RecoveryPlan,
        obs: &RebuildObserver,
    ) -> Result<Finished, StoreError> {
        let geo = self.array().geometry().clone();
        let code = self.inner_code();
        let chunk_size = self.chunk_size();
        let pool = BufPool::new(chunk_size);
        let mut combiner = Combiner::new(&geo, code.as_ref(), plan, &pool, obs);
        combiner.drain();
        for (disk, queue) in plan.reads_by_disk() {
            let dev = &self.devices()[disk];
            let began = Instant::now();
            let runs = coalesce_runs(&queue);
            obs.stages.coalesce.record_duration(began.elapsed());
            for run in runs {
                let began = Instant::now();
                let batch = read_run(dev, run, chunk_size, &pool).map_err(|error| match error {
                    DeviceError::Failed => StoreError::DiskFailed { disk },
                    error => StoreError::Device { disk, error },
                })?;
                obs.stages.read.record_duration(began.elapsed());
                obs.progress.add_bytes_read((run.len() * chunk_size) as u64);
                for (idx, addr, bytes) in batch {
                    combiner.deliver_read(idx, addr, bytes);
                }
                combiner.drain();
            }
        }
        debug_assert_eq!(combiner.remaining, 0, "plan execution closed");
        Ok(combiner.finished)
    }

    /// Returns the finished chunks, the number of reader threads used, and
    /// each reader's busy time (time spent inside device reads).
    fn execute_parallel(
        &mut self,
        plan: &RecoveryPlan,
        obs: &RebuildObserver,
        exec_span: &Span<'_>,
    ) -> Result<(Finished, usize, Vec<Duration>), StoreError> {
        let geo = self.array().geometry().clone();
        let code = self.inner_code();
        let chunk_size = self.chunk_size();
        let queues = plan.reads_by_disk();
        let workers = queues.len();
        let pool = BufPool::new(chunk_size);
        let mut combiner = Combiner::new(&geo, code.as_ref(), plan, &pool, obs);
        combiner.drain();

        // Readers only need `&B` (read_chunk takes `&self`), so lend each
        // surviving device to its reader thread by shared reference.
        type ReadMsg = Result<(usize, ChunkAddr, Vec<u8>), (usize, DeviceError)>;
        let devices: &[B] = self.devices();
        let pool_ref = &pool;
        // In-flight messages: incremented before send, decremented at
        // receive — the receive-side sample is the combiner's queue depth.
        let depth = AtomicI64::new(0);
        let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let mut error: Option<StoreError> = None;
        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel::<ReadMsg>();
            for (w, (disk, queue)) in queues.iter().enumerate() {
                let dev: &B = &devices[*disk];
                let tx = tx.clone();
                let disk = *disk;
                let (depth, busy) = (&depth, &busy[w]);
                s.spawn(move || {
                    let _reader = exec_span.child(format!("reader-disk-{disk}"));
                    let began = Instant::now();
                    let runs = coalesce_runs(queue);
                    obs.stages.coalesce.record_duration(began.elapsed());
                    for run in runs {
                        let began = Instant::now();
                        match read_run(dev, run, chunk_size, pool_ref) {
                            Ok(batch) => {
                                let took = began.elapsed();
                                obs.stages.read.record_duration(took);
                                busy.fetch_add(
                                    took.as_nanos().min(u64::MAX as u128) as u64,
                                    Ordering::Relaxed,
                                );
                                obs.progress.add_bytes_read((run.len() * chunk_size) as u64);
                                for (idx, addr, buf) in batch {
                                    depth.fetch_add(1, Ordering::Relaxed);
                                    if tx.send(Ok((idx, addr, buf))).is_err() {
                                        return; // combiner gone
                                    }
                                }
                            }
                            Err(e) => {
                                let _ = tx.send(Err((disk, e)));
                                return;
                            }
                        }
                    }
                });
            }
            drop(tx);
            for msg in rx {
                match msg {
                    Ok((idx, addr, bytes)) => {
                        let d = depth.fetch_sub(1, Ordering::Relaxed);
                        obs.stages.queue_depth.record(d.max(0) as u64);
                        combiner.deliver_read(idx, addr, bytes);
                        combiner.drain();
                    }
                    Err((disk, e)) => {
                        error = Some(StoreError::Device { disk, error: e });
                        break;
                    }
                }
            }
            // Leaving the scope drops `rx`, which unblocks any reader still
            // sending; the scope join waits for them.
        });
        if let Some(e) = error {
            return Err(e);
        }
        debug_assert_eq!(combiner.remaining, 0, "plan execution closed");
        let worker_busy = busy
            .iter()
            .map(|b| Duration::from_nanos(b.load(Ordering::Relaxed)))
            .collect();
        Ok((combiner.finished, workers, worker_busy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OiRaidConfig, OiRaidStore};
    use blockdev::{FaultConfig, FaultInjectingDevice, MemDevice};

    fn filled(chunk_size: usize) -> OiRaidStore {
        let mut store = OiRaidStore::new(OiRaidConfig::reference(), chunk_size).unwrap();
        for idx in 0..store.data_chunks() {
            let chunk: Vec<u8> = (0..chunk_size)
                .map(|j| (idx * 131 + j * 17 + 3) as u8)
                .collect();
            store.write_data(idx, &chunk).unwrap();
        }
        store
    }

    fn disk_image<B: BlockDevice>(store: &OiRaidStore<B>, disk: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; store.chunk_size()];
        for o in 0..store.devices()[disk].chunks() {
            store.devices()[disk].read_chunk(o, &mut buf).unwrap();
            out.extend_from_slice(&buf);
        }
        out
    }

    #[test]
    fn serial_rebuild_matches_legacy_for_every_strategy() {
        for strategy in RecoveryStrategy::ALL {
            let reference = filled(16);
            let mut store = filled(16);
            store.fail_disk(4).unwrap();
            let report = store.rebuild(RebuildMode::Serial, strategy).unwrap();
            assert_eq!(report.rebuilt_disks, vec![4]);
            assert!(report.chunks_rebuilt > 0);
            assert!(store.check_parity().is_empty(), "{strategy:?}");
            assert_eq!(
                disk_image(&store, 4),
                disk_image(&reference, 4),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn parallel_rebuild_bit_identical_to_serial_single_failure() {
        for strategy in RecoveryStrategy::ALL {
            let mut serial = filled(16);
            let mut parallel = filled(16);
            serial.fail_disk(7).unwrap();
            parallel.fail_disk(7).unwrap();
            let rs = serial.rebuild(RebuildMode::Serial, strategy).unwrap();
            let rp = parallel.rebuild(RebuildMode::Parallel, strategy).unwrap();
            assert_eq!(
                disk_image(&serial, 7),
                disk_image(&parallel, 7),
                "{strategy:?}"
            );
            assert!(rp.workers > 0);
            assert_eq!(rs.workers, 0);
            assert_eq!(rs.total_reads(), rp.total_reads(), "same read schedule");
            assert_eq!(rs.chunks_rebuilt, rp.chunks_rebuilt);
        }
    }

    #[test]
    fn parallel_rebuild_triple_failure() {
        let reference = filled(8);
        let mut store = filled(8);
        for d in [2, 9, 17] {
            store.fail_disk(d).unwrap();
        }
        let report = store
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .unwrap();
        assert_eq!(report.rebuilt_disks, vec![2, 9, 17]);
        assert!(store.failed_disks().is_empty());
        assert!(store.check_parity().is_empty());
        for d in [2, 9, 17] {
            assert_eq!(disk_image(&store, d), disk_image(&reference, d), "disk {d}");
        }
    }

    #[test]
    fn whole_group_rebuild_both_modes() {
        for mode in [RebuildMode::Serial, RebuildMode::Parallel] {
            let reference = filled(8);
            let mut store = filled(8);
            for d in [6, 7, 8] {
                store.fail_disk(d).unwrap();
            }
            store.rebuild(mode, RecoveryStrategy::Hybrid).unwrap();
            for d in [6, 7, 8] {
                assert_eq!(
                    disk_image(&store, d),
                    disk_image(&reference, d),
                    "{mode} disk {d}"
                );
            }
        }
    }

    #[test]
    fn dual_parity_double_failure_in_group() {
        let cfg = OiRaidConfig::new(bibd::fano(), 5, 1)
            .unwrap()
            .with_inner_parities(2)
            .unwrap();
        for mode in [RebuildMode::Serial, RebuildMode::Parallel] {
            let mut store = OiRaidStore::new(cfg.clone(), 8).unwrap();
            for idx in 0..store.data_chunks() {
                let chunk: Vec<u8> = (0..8).map(|j| (idx * 61 + j * 19 + 7) as u8).collect();
                store.write_data(idx, &chunk).unwrap();
            }
            let reference = store.clone();
            // Two failures inside one group: exercises the RAID6 row decode.
            for d in [5, 6] {
                store.fail_disk(d).unwrap();
            }
            store.rebuild(mode, RecoveryStrategy::Hybrid).unwrap();
            assert!(store.check_parity().is_empty(), "{mode}");
            for d in [5, 6] {
                assert_eq!(
                    disk_image(&store, d),
                    disk_image(&reference, d),
                    "{mode} disk {d}"
                );
            }
        }
    }

    #[test]
    fn unrecoverable_pattern_is_rejected_without_state_change() {
        let mut store = filled(8);
        for d in [0, 1, 3, 4] {
            store.fail_disk(d).unwrap();
        }
        let err = store
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .unwrap_err();
        assert_eq!(err, StoreError::DataLoss);
        assert_eq!(store.failed_disks(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn rebuild_with_nothing_failed_is_a_no_op() {
        let mut store = filled(8);
        let report = store
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .unwrap();
        assert_eq!(report.chunks_rebuilt, 0);
        assert_eq!(report.total_reads(), 0);
    }

    #[test]
    fn report_counters_reflect_the_plan() {
        let mut store = filled(16);
        store.fail_disk(4).unwrap();
        let report = store
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .unwrap();
        // The failed disk serves no reads; every read lands elsewhere.
        assert_eq!(report.device_io[4].reads, 0);
        assert_eq!(
            report.device_io[4].writes as usize,
            store.array().geometry().chunks_per_disk
        );
        assert_eq!(
            report.bytes_rebuilt,
            report.chunks_rebuilt * store.chunk_size() as u64
        );
        assert!(report.to_string().contains("parallel"));
    }

    #[test]
    fn report_display_format_is_stable() {
        // Pinned: downstream log scrapers parse this line.
        let report = RebuildReport {
            mode: RebuildMode::Parallel,
            rebuilt_disks: vec![4],
            workers: 20,
            wall: Duration::from_millis(12),
            chunks_rebuilt: 30,
            bytes_rebuilt: 480,
            device_io: vec![
                CounterSnapshot {
                    reads: 7,
                    ..CounterSnapshot::default()
                },
                CounterSnapshot {
                    reads: 5,
                    ..CounterSnapshot::default()
                },
            ],
            injected_faults: 2,
            stages: Vec::new(),
            worker_busy: Vec::new(),
            queue_depth: HistogramSnapshot::default(),
        };
        assert_eq!(
            report.to_string(),
            "parallel rebuild of [4]: 30 chunks (480 bytes) in 12ms, \
             12 reads (max 7/disk), 20 workers, 2 injected faults"
        );
    }

    #[test]
    fn observed_rebuild_populates_stages_spans_and_progress() {
        telemetry::set_enabled(true);
        let mut store = filled(16);
        store.fail_disk(4).unwrap();
        let obs = crate::RebuildObserver::default();
        let report = store
            .rebuild_observed(RebuildMode::Parallel, RecoveryStrategy::Hybrid, &obs)
            .unwrap();

        // Stages: every pipeline stage saw work (coalesce runs once per
        // queue, the others once per chunk/run).
        for stage in ["read", "coalesce", "combine", "writeback"] {
            let s = report.stage(stage).unwrap_or_else(|| panic!("{stage}"));
            assert!(s.latency.count > 0, "{stage} recorded");
            assert!(
                s.latency.p50() <= s.latency.p99() && s.latency.p99() <= s.latency.max,
                "{stage} quantiles ordered: {}",
                s.latency.summary_ns()
            );
        }
        assert_eq!(
            report.stage("combine").unwrap().latency.count,
            report.chunks_rebuilt
        );
        assert_eq!(report.worker_busy.len(), report.workers);
        assert!(report.worker_utilization() > 0.0);
        assert!(report.queue_depth.count > 0, "depth sampled at each recv");

        // Progress: complete and internally consistent.
        let p = obs.progress.snapshot();
        assert!(p.finished && p.fraction == 1.0, "{p:?}");
        assert_eq!(p.total_chunks, report.chunks_rebuilt);
        assert_eq!(p.chunks_written, report.chunks_rebuilt);
        assert_eq!(p.bytes_written, report.bytes_rebuilt);

        // Spans: the stage children cover (almost) all of the root span.
        let recs = obs.tracer.records();
        let root = recs.iter().find(|r| r.label == "rebuild").expect("root");
        for label in ["plan", "heal", "execute", "writeback"] {
            assert!(
                recs.iter().any(|r| r.label == label && r.parent == root.id),
                "{label} span under root"
            );
        }
        let exec = recs.iter().find(|r| r.label == "execute").unwrap();
        let readers = recs
            .iter()
            .filter(|r| r.parent == exec.id && r.label.starts_with("reader-disk-"))
            .count();
        assert_eq!(readers, report.workers, "one reader span per worker");
        let cov = telemetry::child_coverage(&recs, root.id);
        assert!(cov >= 0.95, "stage spans cover the rebuild: {cov}");
    }

    #[test]
    fn serial_observed_rebuild_records_stages_without_queue() {
        telemetry::set_enabled(true);
        let mut store = filled(8);
        store.fail_disk(2).unwrap();
        let obs = crate::RebuildObserver::default();
        let report = store
            .rebuild_observed(RebuildMode::Serial, RecoveryStrategy::Hybrid, &obs)
            .unwrap();
        assert!(report.stage("read").unwrap().latency.count > 0);
        assert_eq!(report.queue_depth.count, 0, "no queue in serial mode");
        assert_eq!(report.worker_utilization(), 0.0);
        assert!(obs.progress.snapshot().finished);
    }

    #[test]
    fn injected_read_fault_aborts_and_refails_disks() {
        let cfg = OiRaidConfig::reference();
        let probe = OiRaidStore::new(cfg.clone(), 8).unwrap();
        let geo_chunks = probe.devices()[0].chunks();
        let devices: Vec<_> = (0..21)
            .map(|d| {
                let mem = MemDevice::new(8, geo_chunks);
                let fault = if d == 3 {
                    FaultConfig {
                        seed: 99,
                        transient_read_per_mille: 1000,
                        ..FaultConfig::default()
                    }
                } else {
                    FaultConfig::default()
                };
                FaultInjectingDevice::new(mem, fault)
            })
            .collect();
        let mut store = OiRaidStore::with_devices(cfg, 8, devices).unwrap();
        store.fail_disk(4).unwrap();
        let err = store
            .rebuild(RebuildMode::Parallel, RecoveryStrategy::Hybrid)
            .unwrap_err();
        assert!(matches!(err, StoreError::Device { .. }), "{err:?}");
        assert_eq!(store.failed_disks(), vec![4], "rebuilt disk re-failed");
    }
}
